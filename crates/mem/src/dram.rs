//! Off-chip memory models: DDR (CPU socket) and HBM (FPGA card).
//!
//! These are analytic accumulators, not DRAM timing simulators: each access
//! contributes a latency term and a bandwidth term, and the model reports
//! the larger of "total latency / memory-level parallelism" and
//! "total bytes / peak bandwidth" as the memory time. That captures the two
//! regimes the paper's analysis rests on — ART traversals on CPUs are
//! *latency-bound* (dependent pointer chases, one line at a time), while a
//! well-designed accelerator streams batched requests and is
//! *bandwidth-bound*.

use dcart_engine::faults::{FaultInjector, FaultPlan, FaultSite, RecoveryStats, RetryOutcome};
use serde::{Deserialize, Serialize};

/// Configuration of an off-chip memory system.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Latency of one access in nanoseconds (row activation + transfer).
    pub latency_ns: f64,
    /// Peak bandwidth in bytes per nanosecond (= GB/s).
    pub peak_bw_gbps: f64,
    /// Sustainable memory-level parallelism: how many independent accesses
    /// overlap on average (channels × banks the access stream can keep busy).
    pub parallelism: f64,
    /// Per-channel service occupancy of one request, ns: pipelined
    /// independent requests cost this, not the full latency (validated
    /// against the event-driven [`HbmSim`](crate::HbmSim)).
    pub service_ns: f64,
}

impl MemoryConfig {
    /// DDR4-3200 behind a dual-socket Xeon: ~87 ns loaded latency,
    /// ~200 GB/s per socket pair combined, moderate MLP for pointer chases.
    pub fn ddr_xeon() -> Self {
        MemoryConfig { latency_ns: 87.0, peak_bw_gbps: 200.0, parallelism: 10.0, service_ns: 25.0 }
    }

    /// HBM2 on the Alveo U280: 8 GB over 32 pseudo-channels, ~460 GB/s,
    /// ~106 ns latency, high MLP for independent channel streams.
    pub fn hbm_u280() -> Self {
        MemoryConfig { latency_ns: 106.0, peak_bw_gbps: 460.0, parallelism: 32.0, service_ns: 4.5 }
    }

    /// HBM2e on an A100: ~1555 GB/s, ~200 ns effective latency under load.
    pub fn hbm_a100() -> Self {
        MemoryConfig { latency_ns: 200.0, peak_bw_gbps: 1555.0, parallelism: 64.0, service_ns: 2.5 }
    }
}

/// Accumulates off-chip traffic and converts it to time.
#[derive(Clone, Debug)]
pub struct MemoryModel {
    config: MemoryConfig,
    accesses: u64,
    bytes: u64,
    /// Accesses on the *critical path* (serially dependent, e.g. pointer
    /// chases down a tree); these cannot be overlapped at all.
    dependent_accesses: u64,
    /// Extra latency accumulated from injected transient errors (retry +
    /// backoff + failover), ns. Overlaps across streams like dependent
    /// latency does.
    fault_ns: f64,
    faults: Option<(FaultPlan, FaultInjector, RecoveryStats)>,
}

impl MemoryModel {
    /// Creates an empty accumulator over `config`.
    pub fn new(config: MemoryConfig) -> Self {
        MemoryModel {
            config,
            accesses: 0,
            bytes: 0,
            dependent_accesses: 0,
            fault_ns: 0.0,
            faults: None,
        }
    }

    /// Creates an accumulator that injects transient read errors per
    /// `plan.hbm_transient_rate`, recovering each with bounded
    /// retry-with-backoff (retry time folds into [`MemoryModel::time_ns`]).
    /// An inactive plan behaves exactly like [`MemoryModel::new`].
    pub fn with_faults(config: MemoryConfig, plan: FaultPlan) -> Self {
        let mut m = MemoryModel::new(config);
        if plan.is_active() {
            m.faults = Some((plan, FaultInjector::for_plan(&plan), RecoveryStats::default()));
        }
        m
    }

    /// Recovery counters accumulated so far (zeros when no plan is active).
    pub fn recovery(&self) -> RecoveryStats {
        self.faults.as_ref().map(|(_, _, r)| *r).unwrap_or_default()
    }

    fn maybe_inject_transient(&mut self) {
        if let Some((plan, inj, rec)) = &mut self.faults {
            if inj.fire(FaultSite::HbmRead, plan.hbm_transient_rate) {
                rec.hbm_transient_errors += 1;
                let base = self.config.latency_ns.ceil() as u64;
                let mut extra = 0u64;
                match inj.retry_transient(
                    FaultSite::HbmRead,
                    plan.hbm_transient_rate,
                    &plan.retry,
                    base,
                    &mut extra,
                ) {
                    RetryOutcome::Recovered { retries } => rec.hbm_retries += u64::from(retries),
                    RetryOutcome::FailedOver => {
                        rec.hbm_retries += u64::from(plan.retry.max_retries);
                        rec.hbm_failovers += 1;
                    }
                }
                rec.hbm_retry_cycles += extra;
                self.fault_ns += extra as f64;
            }
        }
    }

    /// Records an independent access of `bytes` (batched/streamed traffic).
    pub fn access(&mut self, bytes: u64) {
        self.accesses += 1;
        self.bytes += bytes;
        self.maybe_inject_transient();
    }

    /// Records a serially dependent access (the next address is only known
    /// after this one returns — a tree-traversal hop).
    pub fn dependent_access(&mut self, bytes: u64) {
        self.accesses += 1;
        self.dependent_accesses += 1;
        self.bytes += bytes;
        self.maybe_inject_transient();
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Memory time in nanoseconds for the recorded traffic, assuming
    /// `streams` independent request streams (threads, SOUs, warps).
    ///
    /// Three lower bounds are combined:
    /// * dependent accesses serialize within a stream — each pays the full
    ///   latency, overlapped only across streams;
    /// * independent accesses pipeline through the channels: they cost
    ///   service occupancy (not latency) once enough streams keep the
    ///   channels fed, plus one trailing latency;
    /// * all bytes must cross the pins: `bytes / peak_bw`.
    ///
    /// The formula is validated against the event-driven
    /// [`HbmSim`](crate::HbmSim) in both regimes.
    pub fn time_ns(&self, streams: f64) -> f64 {
        assert!(streams >= 1.0, "at least one stream required");
        let independent = (self.accesses - self.dependent_accesses) as f64;
        let channels = self.config.parallelism.min(streams.max(1.0));
        let dep_time = self.dependent_accesses as f64 * self.config.latency_ns / streams.max(1.0);
        let indep_time = if independent > 0.0 {
            independent * self.config.service_ns / channels + self.config.latency_ns
        } else {
            0.0
        };
        let bw_time = self.bytes as f64 / self.config.peak_bw_gbps;
        // Retry latency from injected transients serializes within a
        // stream, overlapping only across streams (like dependent hops).
        let fault_time = self.fault_ns / streams.max(1.0);
        bw_time.max(dep_time + indep_time) + fault_time
    }

    /// The configuration in use.
    pub fn config(&self) -> MemoryConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependent_chases_are_latency_bound() {
        let mut m = MemoryModel::new(MemoryConfig::ddr_xeon());
        for _ in 0..1000 {
            m.dependent_access(64);
        }
        // Single stream: 1000 × 87 ns, far above the bandwidth bound.
        let t = m.time_ns(1.0);
        assert!((t - 87_000.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn streams_divide_dependent_time() {
        let mut m = MemoryModel::new(MemoryConfig::ddr_xeon());
        for _ in 0..1000 {
            m.dependent_access(64);
        }
        assert!(m.time_ns(10.0) < m.time_ns(1.0) / 9.0);
    }

    #[test]
    fn bulk_streams_are_bandwidth_bound() {
        let mut m = MemoryModel::new(MemoryConfig::hbm_u280());
        // 1 GB in large independent bursts from many streams.
        for _ in 0..1000 {
            m.access(1 << 20);
        }
        let t = m.time_ns(64.0);
        let bw_bound = (1u64 << 30) as f64 / 460.0;
        assert!((t - bw_bound).abs() / bw_bound < 0.05, "{t} vs {bw_bound}");
    }

    #[test]
    fn mlp_caps_independent_overlap() {
        let cfg = MemoryConfig {
            latency_ns: 100.0,
            peak_bw_gbps: 1e9,
            parallelism: 4.0,
            service_ns: 50.0,
        };
        let mut m = MemoryModel::new(cfg);
        for _ in 0..100 {
            m.access(64);
        }
        // 1000 streams offered, but channel count caps pipelined overlap at
        // 4; one trailing latency for the last request.
        assert!((m.time_ns(1000.0) - (100.0 * 50.0 / 4.0 + 100.0)).abs() < 1.0);
    }

    #[test]
    fn inactive_plan_leaves_time_unchanged() {
        let mut clean = MemoryModel::new(MemoryConfig::hbm_u280());
        let mut faulty = MemoryModel::with_faults(MemoryConfig::hbm_u280(), FaultPlan::none());
        for _ in 0..1000 {
            clean.dependent_access(64);
            faulty.dependent_access(64);
        }
        assert_eq!(clean.time_ns(8.0), faulty.time_ns(8.0));
        assert_eq!(faulty.recovery(), RecoveryStats::default());
    }

    #[test]
    fn transient_errors_add_bounded_retry_time() {
        let plan = FaultPlan { seed: 9, hbm_transient_rate: 0.05, ..FaultPlan::none() };
        let mut clean = MemoryModel::new(MemoryConfig::hbm_u280());
        let mut faulty = MemoryModel::with_faults(MemoryConfig::hbm_u280(), plan);
        for _ in 0..10_000 {
            clean.dependent_access(64);
            faulty.dependent_access(64);
        }
        let r = faulty.recovery();
        assert!(r.hbm_transient_errors > 0);
        assert!(r.hbm_retries >= r.hbm_transient_errors);
        let clean_t = clean.time_ns(1.0);
        let faulty_t = faulty.time_ns(1.0);
        assert!(faulty_t > clean_t, "{faulty_t} vs {clean_t}");
        // Bounded recovery: even at 5% error rate the overhead stays small
        // relative to the clean run (retries are per-error, not unbounded).
        assert!(faulty_t < clean_t * 2.0, "{faulty_t} vs {clean_t}");
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MemoryModel::new(MemoryConfig::hbm_a100());
        m.access(128);
        m.dependent_access(64);
        assert_eq!(m.accesses(), 2);
        assert_eq!(m.bytes(), 192);
    }
}
