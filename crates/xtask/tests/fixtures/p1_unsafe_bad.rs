//! Known-bad: the `unsafe` keyword outside the sanctioned kernel files.
//! Unlike every other P1 site, neither allow markers nor `#[cfg(test)]`
//! regions may silence it — the only exit is the UNSAFE_SANCTIONED table.

// dcart_lint::allow_file(P1) -- deliberately ineffective for `unsafe`
pub fn deref(p: *const u8) -> u8 {
    // dcart_lint::allow(P1) -- deliberately ineffective for `unsafe`
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    pub fn deref_in_tests(p: *const u8) -> u8 {
        unsafe { *p }
    }
}
