//! The data-centric Combine–Traverse–Trigger execution model (paper §II-C,
//! §III).
//!
//! This is the functional heart of DCART, shared by the software engine
//! (DCART-C) and the accelerator model (DCART):
//!
//! 1. **Combine** — each batch of concurrent operations is partitioned into
//!    disjoint prefix buckets by the [PCU](crate::pcu);
//! 2. **Traverse** — each bucket's operations resolve their target nodes,
//!    through the [shortcut table](crate::ShortcutTable) when possible and
//!    by (coalesced) tree traversal otherwise;
//! 3. **Trigger** — operations targeting the same node execute together
//!    under a single lock: the per-bucket *lock group* replaces per-op
//!    locking, which is where the Fig. 7 contention reduction comes from.
//!
//! # Parallel execution
//!
//! Buckets are prefix-disjoint, so each SOU owns a disjoint key range.
//! The executor mirrors that ownership on the host: every bucket gets its
//! own *shard* — subtree, shortcut-table shard, fault stream, and scratch
//! arenas — and a batch's shards run concurrently on a scoped worker pool
//! ([`dcart_engine::par_for_each_mut`], sized by [`set_sou_threads`]).
//! Workers record per-operation outcomes instead of talking to the
//! consumer directly; after the pool joins, a serial *replay* walks the
//! records in the canonical round-robin bucket order and emits the exact
//! event stream a single-threaded run produces. Shards share nothing, so
//! stats, digests, and report JSON are byte-identical at any thread count.
//!
//! Range scans are the one cross-bucket operation: they are deferred to the
//! end of their batch and answered by a k-way merge over every shard's
//! subtree (weakly consistent: a scan observes the end-of-batch state).
//!
//! # Adaptive sub-sharding & work stealing
//!
//! Fig. 3's node skew cuts both ways: under zipfian keys one *bucket* can
//! receive most of a batch, serializing the pool. Two mechanisms keep the
//! executor load-balanced without giving up determinism:
//!
//! * **Sub-sharding** — when a bucket's per-batch op count exceeds
//!   `split_threshold × batch_size` (see
//!   [`DcartConfig::split_threshold`] and [`set_split_threshold`]), the
//!   bucket splits on the *next* prefix byte into [`SPLIT_FANOUT`]
//!   sub-shards, each owning a disjoint subtree, a fresh shortcut shard, a
//!   derived-seed fault stream, and its own scratch arenas. Namespaced
//!   node ids carry the sub-shard index (the `sub == 0` layout is
//!   bit-identical to the unsplit one). Once the bucket cools — its op
//!   count stays at or below half the split threshold for
//!   [`MERGE_PATIENCE`] consecutive batches — the sub-shards re-merge
//!   through the same validating k-way merge that produces the final
//!   tree. Split and merge decisions depend only on per-batch op counts,
//!   never on timing or thread identity, so the split schedule (and with
//!   it every observable) is reproducible.
//! * **Work stealing** — with stealing enabled ([`set_work_stealing`], or
//!   [`ExecOpts::steal`]), shards are dealt heaviest-first over per-worker
//!   [`dcart_engine::StealQueue`] deques
//!   ([`dcart_engine::par_for_each_mut_balanced`]); a worker that drains
//!   its own deque steals the front half of the longest sibling's instead
//!   of parking. Shards share nothing, so a stolen shard computes exactly
//!   what it would have on its owner — stealing changes wall-clock and
//!   the (intentionally non-deterministic, [`LoadReport`]-only) steal
//!   counters, nothing else.
//!
//! # Level-wise Traverse
//!
//! By default ([`TraverseMode::LevelWise`]) each shard advances its reads
//! level-synchronously: read traversals are deferred into a *pending
//! group*, and when the group flushes, one wave walk
//! ([`Art::locate_leaves_level_wise`]) advances every deferred read one
//! tree level at a time — loading each distinct node once per wave instead
//! of once per op (the hot upper levels dominate: Fig. 3 measures ≥96.65 %
//! of traversals hitting ≤5 % of nodes). The group flushes whenever
//! per-op execution could observe the deferral — before any write (or any
//! op whose key is already pending) executes, and at batch end — and
//! commits its reads in arrival order, so the event stream, stats, and
//! digests stay byte-identical to [`TraverseMode::PerOp`] at every worker
//! count. Only the [`ShortcutStats::nodes_visited`] counter (actual node
//! loads) reflects the wave sharing.
//!
//! Consumers receive every resolved operation (with its *effective* node
//! visits — one direct fetch on a shortcut hit, the full path otherwise)
//! and every lock group, and attach platform-specific costs.

use std::collections::hash_map::Entry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use dcart_art::{Art, Key, LevelWiseScratch, NodeId, NodeVisit, NoopTracer, RecordingTracer};
use dcart_engine::{
    par_for_each_mut, par_for_each_mut_balanced, DegradationController, FaultInjector, FaultPlan,
    FaultSite, PoolStats,
};
use dcart_workloads::{KeySet, Op, OpKind};
use serde::{Deserialize, Serialize};

use crate::config::DcartConfig;
use crate::error::DcartError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::pcu::{combine_batch_into, CombinedBatch};
use crate::shortcut::{hash_bucket as hash_bucket_of, ShortcutStats, ShortcutTable};

/// FNV-1a offset basis, the seed of every digest in this module.
const DIGEST_BASE: u64 = 0xcbf2_9ce4_8422_2325;

/// Worker threads the SOU bucket executor fans a batch's shards over.
///
/// Defaults to 1 (not host parallelism): the harness already fans whole
/// experiments over `--jobs` workers, and nesting both at full width would
/// oversubscribe the host. Binaries raise it via `--sou-threads`.
static SOU_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-global SOU worker-thread count (clamped to at least 1).
///
/// Results are byte-identical at any setting; only wall-clock speed
/// changes. Tests that need a specific count without racing on the global
/// should call [`execute_ctt_threaded`] instead.
pub fn set_sou_threads(n: usize) {
    // dcart_lint::atomic(config knob set before workers spawn; read once per execution)
    SOU_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current SOU worker-thread count.
pub fn sou_threads() -> usize {
    // dcart_lint::atomic(config knob; any torn-free read is fine, result is thread-count independent)
    SOU_THREADS.load(Ordering::Relaxed)
}

/// How a shard's Traverse stage resolves the operations that miss the
/// shortcut table.
///
/// Both modes produce byte-identical event streams, stats, digests, and
/// trees (pinned by tests); they differ only in how many node *loads* the
/// traversals cost, reported by [`ShortcutStats::nodes_visited`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraverseMode {
    /// Defer read traversals into per-shard pending groups and advance
    /// each group level-synchronously, loading every distinct node once
    /// per wave. The default.
    LevelWise,
    /// Traverse each operation root-to-leaf independently (the pre-wave
    /// behavior; also the reference the level-wise path is tested
    /// against).
    PerOp,
}

/// Process-global traverse mode (0 = level-wise, 1 = per-op), read once at
/// the start of each execution.
static TRAVERSE_MODE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-global [`TraverseMode`] used by executions that do not
/// pass one explicitly. Results are byte-identical in either mode; only
/// traversal node loads (and wall-clock) change. Tests that need a
/// specific mode without racing on the global should call
/// [`execute_ctt_with`] instead.
pub fn set_traverse_mode(mode: TraverseMode) {
    // dcart_lint::atomic(config knob; both modes are byte-identical, no ordering with data needed)
    TRAVERSE_MODE.store(matches!(mode, TraverseMode::PerOp) as usize, Ordering::Relaxed);
}

/// The current process-global [`TraverseMode`].
pub fn traverse_mode() -> TraverseMode {
    // dcart_lint::atomic(config knob read once at execution start; no data depends on it)
    if TRAVERSE_MODE.load(Ordering::Relaxed) == 0 {
        TraverseMode::LevelWise
    } else {
        TraverseMode::PerOp
    }
}

/// Process-global work-stealing switch (0 = off), read once per execution.
static WORK_STEALING: AtomicUsize = AtomicUsize::new(0);

/// Enables or disables work stealing in the SOU worker pool for executions
/// that do not pass an explicit [`ExecOpts`]. Off by default; the binaries
/// raise it via `--steal`.
///
/// Stealing only changes *where* a shard runs, never what it computes:
/// results are byte-identical with stealing on or off (pinned by
/// `tests/parallel_determinism.rs`). Tests that need a specific setting
/// without racing on the global should call [`try_execute_ctt_profiled`]
/// with explicit [`ExecOpts`] instead.
pub fn set_work_stealing(on: bool) {
    // dcart_lint::atomic(config knob; stealing changes placement only, results byte-identical)
    WORK_STEALING.store(usize::from(on), Ordering::Relaxed);
}

/// The current process-global work-stealing setting.
pub fn work_stealing() -> bool {
    // dcart_lint::atomic(config knob read once per execution; no ordering with shard data)
    WORK_STEALING.load(Ordering::Relaxed) != 0
}

/// Process-global split threshold in millionths of the batch size
/// (1_000_000 = 1.0 = never split), read once per execution by configs
/// whose [`DcartConfig::split_threshold`] is `None`.
static SPLIT_THRESHOLD_MILLIONTHS: AtomicU64 = AtomicU64::new(1_000_000);

/// Sets the process-global hot-bucket split threshold (clamped to
/// `[0, 1]`; resolution 1e-6) used by executions whose config leaves
/// [`DcartConfig::split_threshold`] unset. `1.0` (the default) never
/// splits; the binaries lower it via `--split-threshold`.
///
/// The threshold changes the split schedule and with it the event stream
/// and stats — but never answers or the final tree — and the schedule is
/// a pure function of the op stream, so any fixed threshold stays
/// byte-identical across thread counts and steal settings.
pub fn set_split_threshold(fraction: f64) {
    let clamped = if fraction.is_finite() { fraction.clamp(0.0, 1.0) } else { 1.0 };
    // dcart_lint::atomic(config knob; split schedule is a pure function of the op stream)
    SPLIT_THRESHOLD_MILLIONTHS.store((clamped * 1e6).round() as u64, Ordering::Relaxed);
}

/// The current process-global split threshold as a fraction of the batch
/// size.
pub fn split_threshold() -> f64 {
    // dcart_lint::atomic(config knob read once per execution start; racy reads see old or new value)
    SPLIT_THRESHOLD_MILLIONTHS.load(Ordering::Relaxed) as f64 / 1e6
}

/// FNV-1a over the key bytes: the hardware's Key_ID.
pub fn key_id(key: &Key) -> u64 {
    let mut h: u64 = DIGEST_BASE;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One FNV-1a folding step, used for the differential answer digests.
pub fn fold_digest(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x1000_0000_01b3)
}

/// Digest of a tree's full contents: one FNV-1a fold over every
/// `(Key_ID, value)` pair in key order, starting from 0. This is the
/// end-state fingerprint the chaos and crash experiments compare — two
/// equal digests mean (with overwhelming probability) identical contents.
pub fn tree_digest(art: &Art<u64>) -> u64 {
    let mut h = 0u64;
    for (k, &v) in art.iter() {
        h = fold_digest(fold_digest(h, key_id(k)), v);
    }
    h
}

/// Digest of an optional value (read/update/insert/remove results).
fn digest_option(v: Option<u64>) -> u64 {
    match v {
        None => fold_digest(DIGEST_BASE, 0),
        Some(x) => fold_digest(fold_digest(DIGEST_BASE, 1), x),
    }
}

/// Bits of a namespaced node id that address the node within its shard;
/// the bits above carry the shard's namespace (bucket + sub-shard index).
/// 24 bits ≈ 16.7 M nodes per shard.
const SHARD_NODE_BITS: u32 = 24;

/// Sub-shards a hot bucket splits into: one per value of the next prefix
/// byte modulo this fanout. A power of two so the namespace packing below
/// stays exact.
pub const SPLIT_FANOUT: usize = 8;

/// Consecutive cool batches (op count at or below half the split
/// threshold) before a split bucket re-merges — hysteresis so a load
/// flickering around the threshold does not split/merge every batch.
pub const MERGE_PATIENCE: u32 = 2;

/// Largest bucket count the sub-shard namespace can address (5 bits of
/// bucket + 3 bits of sub-shard above the 24 node bits). Splitting is
/// disabled — never wrong, just static — for wider configurations; `sous`
/// tops out at 32 in the ablations anyway.
const MAX_SPLIT_BUCKETS: usize = 32;

/// Namespaces a shard-local node id with its bucket and sub-shard, so
/// visits and lock groups from different shards never alias in
/// consumer-side maps (the accelerator's tree buffer and contention
/// windows key on `NodeId`).
///
/// Layout: `sub (3 bits) | bucket (5 bits) | local (24 bits)`. An unsplit
/// shard has `sub == 0`, which makes this bit-identical to the pre-split
/// `bucket << 24` layout — default (never-split) runs keep their exact
/// historical node ids. Only when `sub > 0` does the bucket narrow to the
/// [`MAX_SPLIT_BUCKETS`] range the split gate enforces.
fn namespaced(bucket: usize, sub: usize, node: NodeId) -> NodeId {
    let local = node.index();
    debug_assert!(local < (1 << SHARD_NODE_BITS), "shard node index overflow: {local}");
    debug_assert!(
        if sub == 0 {
            bucket < (1 << (32 - SHARD_NODE_BITS))
        } else {
            sub < SPLIT_FANOUT && bucket < MAX_SPLIT_BUCKETS
        },
        "shard namespace overflow: bucket {bucket} sub {sub}"
    );
    let space = ((sub as u32) * MAX_SPLIT_BUCKETS as u32) | (bucket as u32);
    NodeId::from_index((space << SHARD_NODE_BITS) | (local & ((1 << SHARD_NODE_BITS) - 1)))
}

/// One resolved operation, as seen by a CTT consumer.
#[derive(Debug)]
pub struct CttOpEvent<'a> {
    /// Batch index.
    pub batch: usize,
    /// Index of the operation within its batch slice. Events arrive in
    /// canonical round-robin *bucket* order, not submission order — this
    /// is how a consumer that owes each submitter an answer (the serving
    /// layer) maps an event back to its request.
    pub op_index: u32,
    /// Bucket (= SOU) index within the batch.
    pub bucket: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// A stable hash of the operation's key (the hardware's Key_ID), used
    /// by the accelerator model to index the shortcut buffer.
    pub key_id: u64,
    /// Whether the target was resolved through the shortcut table.
    pub shortcut_hit: bool,
    /// The node fetches this operation actually performs: a single direct
    /// fetch on a shortcut hit, the traversal path otherwise.
    pub visits: &'a [NodeVisit],
    /// Partial-key comparisons performed (1 validation compare on a
    /// shortcut hit).
    pub matches: u64,
    /// Total operations of this bucket in this batch — the *value* of the
    /// bucket's nodes for the value-aware Tree buffer (§III-E).
    pub bucket_ops: u32,
    /// Whether a shortcut entry was generated/updated after a traversal.
    pub generated_shortcut: bool,
    /// Digest of the operation's functional answer (value read, previous
    /// value written over, scan result set). Faults may change *how* an
    /// operation resolves (shortcut vs. traversal) but never this digest —
    /// the chaos experiment's differential invariant.
    pub answer: u64,
    /// The operation's concrete result, for consumers that serve answers
    /// back to a caller (the online serving layer) rather than just
    /// auditing digests: the value read (`None` on a miss), the previous
    /// value displaced by an update/insert/remove, or the number of items
    /// a scan returned. Folding this through [`digest_option`] (scans:
    /// always `Some`) is *not* required to reproduce [`answer`] — `answer`
    /// also folds scan contents — so treat it as payload, not provenance.
    pub value: Option<u64>,
}

/// A coalesced lock: `size` operations of one bucket targeting one node
/// acquire a single lock and trigger together.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LockGroup {
    /// Batch index.
    pub batch: usize,
    /// Bucket index.
    pub bucket: usize,
    /// The locked node.
    pub node: NodeId,
    /// Operations sharing the lock.
    pub size: u32,
}

/// Per-batch combining summary. Borrows the executor's per-batch bucket
/// size table — consumers that need it past `batch_start` copy what they
/// use (they all reduce it to sums/maxima anyway).
#[derive(Clone, Copy, Debug)]
pub struct BatchEvent<'a> {
    /// Batch index.
    pub index: usize,
    /// Operations per bucket.
    pub bucket_sizes: &'a [u32],
}

/// Observer of a CTT execution. All methods default to no-ops.
pub trait CttConsumer {
    /// A batch was combined and is about to be operated on.
    fn batch_start(&mut self, ev: &BatchEvent<'_>) {
        let _ = ev;
    }

    /// One operation resolved and triggered.
    fn op(&mut self, ev: &CttOpEvent<'_>) {
        let _ = ev;
    }

    /// One coalesced lock acquired by a bucket.
    fn lock_group(&mut self, group: &LockGroup) {
        let _ = group;
    }

    /// All buckets of batch `index` finished.
    fn batch_end(&mut self, index: usize) {
        let _ = index;
    }

    /// Whether execution should stop before combining the next batch
    /// (polled once per batch, after [`batch_end`](CttConsumer::batch_end)).
    /// A durability consumer whose log died (injected crash, I/O failure)
    /// returns `true` here so the executor does not run batches it can no
    /// longer make durable.
    fn abort(&mut self) -> bool {
        false
    }
}

/// Aggregate statistics of a CTT execution.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct CttStats {
    /// Operations executed.
    pub ops: u64,
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Batches processed.
    pub batches: u64,
    /// Shortcut-table statistics (summed over the per-bucket shards).
    pub shortcut: ShortcutStats,
    /// Coalesced locks acquired.
    pub lock_groups: u64,
    /// Locks an operation-centric protocol would have acquired instead
    /// (the saving is `per_op_locks − lock_groups`).
    pub per_op_locks: u64,
    /// Cross-SOU collisions on the shared Shortcut_Table's hash buckets:
    /// two SOUs generating entries into the same bucket within a batch must
    /// synchronize. This is DCART's residual contention source — the paper
    /// still reports 3.2–19.7 % of the baselines' contentions (Fig. 7).
    pub shortcut_hash_collisions: u64,
    /// Times a degradation controller disabled a shortcut shard for the
    /// rest of the run (sticky per-shard latches; at most one per shard,
    /// and sub-shards inherit their parent's latch state on split).
    pub shortcut_disables: u64,
    /// Hot buckets split into sub-shards (whole run). Zero under the
    /// default never-split threshold; deterministic for any fixed
    /// threshold — the split schedule depends only on per-batch op counts.
    #[serde(default)]
    pub shard_splits: u64,
    /// Split buckets re-merged after cooling (whole run).
    #[serde(default)]
    pub shard_merges: u64,
    /// Digest folded over every operation's answer in execution order;
    /// bit-identical across fault-free and faulted runs of the same
    /// workload (the differential correctness invariant).
    pub answer_digest: u64,
}

/// What one worker recorded about one operation, replayed serially in
/// round-robin bucket order to reconstruct the canonical event stream.
struct OpRecord {
    /// Index into the batch slice.
    op_index: u32,
    /// Cached Key_ID (saves re-hashing the key during replay).
    key_id: u64,
    /// Answer digest (see [`CttOpEvent::answer`]).
    answer: u64,
    /// Concrete result (see [`CttOpEvent::value`]).
    value: Option<u64>,
    /// Partial-key comparisons charged to this op.
    matches: u64,
    /// Fresh-visit range into the shard's visit arena.
    visits_start: u32,
    /// Length of the fresh-visit range.
    visits_len: u32,
    /// Per-op locks an operation-centric protocol would have taken.
    locks: u32,
    /// Shortcut hash bucket written on generation (`u32::MAX` = none).
    hash_bucket: u32,
    /// Whether the shortcut table resolved the target.
    shortcut_hit: bool,
    /// Whether a shortcut entry was generated after a traversal.
    generated: bool,
}

/// A deferred range scan: its position within the bucket and the record
/// (already holding a placeholder) to fill in at batch end.
struct ScanRef {
    pos: u32,
    record: u32,
}

/// How a deferred read will resolve when its pending group flushes.
#[derive(Clone, Copy)]
enum PendingKind {
    /// Its probe hit: a direct target fetch at flush (the tree is frozen
    /// between mutating ops, so the target is still live then).
    Hit { target: NodeId },
    /// Its probe missed (or shortcuts were inactive): resolved by the
    /// flush's level-wise wave walk. `gen_allowed` snapshots
    /// `shortcuts_active` right after the op's own probe — the instant
    /// per-op execution would have generated its shortcut entry.
    Miss { gen_allowed: bool },
}

/// One read deferred into the shard's pending group, committed at flush in
/// arrival order. `record` indexes the placeholder pushed at arrival (so
/// record index still equals bucket position for the serial replay).
struct PendingRead {
    record: u32,
    kind: PendingKind,
}

/// Everything one (sub-)shard owns: its subtree, shortcut shard, fault
/// stream, and reusable per-batch scratch. Shards share nothing, which is
/// what makes the worker pool deterministic (and lock-free) by
/// construction. An unsplit bucket is one shard with `sub == 0`; a split
/// bucket fans over [`SPLIT_FANOUT`] of these, each owning the disjoint
/// slice of the bucket's key range its sub-routing byte selects.
struct BucketShard {
    bucket: usize,
    /// Sub-shard index within the bucket (0 while unsplit).
    sub: usize,
    /// This shard's `(bucket position, op index)` slice of the current
    /// batch, filled by the routing pass before the pool runs.
    ops: Vec<(u32, u32)>,
    art: Art<u64>,
    shortcuts: ShortcutTable,
    injector: FaultInjector,
    degrade: DegradationController,
    shortcuts_active: bool,
    disables: u64,
    // Whole-run Traverse counters (never reset per batch): op-level
    // advancement steps (sum of traversal path lengths, mode-independent)
    // and actual node loads (falls below `ops_advanced` under level-wise
    // wave sharing).
    ops_advanced: u64,
    nodes_visited: u64,
    // Per-batch scratch: cleared (capacity retained) at batch start.
    visited: FxHashSet<NodeId>,
    write_target_index: FxHashMap<NodeId, usize>,
    write_targets: Vec<(NodeId, u32)>,
    visit_arena: Vec<NodeVisit>,
    records: Vec<OpRecord>,
    scans: Vec<ScanRef>,
    tracer: RecordingTracer,
    // Level-wise pending group: deferred reads, their key ids (flush
    // triggers), the wave-walk scratch, and the miss-key gather buffer.
    pending: Vec<PendingRead>,
    pending_keys: FxHashSet<u64>,
    lw_scratch: LevelWiseScratch,
    miss_keys: Vec<Key>,
    error: Option<(u32, DcartError)>,
}

/// Derives a per-bucket fault seed: each shard draws an independent,
/// deterministic stream whose per-site counters advance only with the
/// shard's own operations — thread-schedule-independent by construction.
fn shard_seed(seed: u64, bucket: usize) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(bucket as u64 + 1)
}

/// Derives a sub-shard fault seed from the bucket seed: distinct per
/// `(bucket, sub)` and distinct from the unsplit shard's own seed, so a
/// shard born from a split (or a re-merge, which uses `sub == 0`) draws a
/// fresh deterministic stream rather than replaying its parent's.
fn sub_shard_seed(seed: u64, bucket: usize, sub: usize) -> u64 {
    shard_seed(seed, bucket).rotate_left(17) ^ 0xd1b5_4a32_d192_ed03u64.wrapping_mul(sub as u64 + 1)
}

/// Counts `node` into the shard's insertion-ordered lock-group table.
fn note_write_target(
    index: &mut FxHashMap<NodeId, usize>,
    targets: &mut Vec<(NodeId, u32)>,
    node: NodeId,
) {
    match index.entry(node) {
        Entry::Occupied(e) => targets[*e.get()].1 += 1,
        Entry::Vacant(e) => {
            e.insert(targets.len());
            targets.push((node, 1));
        }
    }
}

impl BucketShard {
    fn new(bucket: usize, config: &DcartConfig) -> Self {
        BucketShard {
            bucket,
            sub: 0,
            ops: Vec::new(),
            art: Art::new(),
            shortcuts: ShortcutTable::new(),
            injector: FaultInjector::new(shard_seed(config.faults.seed, bucket)),
            degrade: DegradationController::new(
                if config.degrade.enabled { config.degrade.shortcut_stale_threshold } else { 0.0 },
                config.degrade.window,
            ),
            shortcuts_active: config.shortcuts_enabled,
            disables: 0,
            ops_advanced: 0,
            nodes_visited: 0,
            visited: FxHashSet::default(),
            write_target_index: FxHashMap::default(),
            write_targets: Vec::new(),
            visit_arena: Vec::new(),
            records: Vec::new(),
            scans: Vec::new(),
            tracer: RecordingTracer::new(),
            pending: Vec::new(),
            pending_keys: FxHashSet::default(),
            lw_scratch: LevelWiseScratch::new(),
            miss_keys: Vec::new(),
            error: None,
        }
    }

    /// Builds a sub-shard (or the merged `sub == 0` successor of one) over
    /// an already-constructed subtree. The fault stream reseeds from
    /// [`sub_shard_seed`] and the shortcut shard starts empty — both are
    /// pure functions of `(config, bucket, sub)`, so the shard's behavior
    /// is the same whichever worker runs it. The degradation latch state is
    /// inherited from the predecessor via `shortcuts_active` (a tripped
    /// latch stays tripped across splits and merges).
    fn new_sub(
        bucket: usize,
        sub: usize,
        config: &DcartConfig,
        art: Art<u64>,
        shortcuts_active: bool,
    ) -> Self {
        let mut shard = BucketShard::new(bucket, config);
        shard.sub = sub;
        shard.art = art;
        shard.injector = FaultInjector::new(sub_shard_seed(config.faults.seed, bucket, sub));
        shard.shortcuts_active = shortcuts_active && config.shortcuts_enabled;
        shard
    }

    fn begin_batch(&mut self) {
        self.visited.clear();
        self.write_target_index.clear();
        self.write_targets.clear();
        self.visit_arena.clear();
        self.records.clear();
        self.scans.clear();
        // The pending group is flushed before `run_batch` returns (and on
        // the error path the failing write flushed it first), but clear
        // defensively so one batch can never leak reads into the next.
        self.pending.clear();
        self.pending_keys.clear();
    }

    /// Runs this shard's slice of a batch (`self.ops`, filled by the
    /// routing pass): Traverse + Trigger against the shard's own subtree,
    /// recording outcomes for the serial replay. Each `(pos, op_i)` pair
    /// carries the op's *bucket* position, which the replay uses to
    /// interleave sub-shards back into the canonical bucket order.
    fn run_batch(&mut self, batch: &[Op], plan: &FaultPlan, mode: TraverseMode) {
        self.begin_batch();
        // Detach the op slice so the loop can call `&mut self` helpers.
        let ops = std::mem::take(&mut self.ops);
        'ops: for &(pos, op_i) in &ops {
            let op = &batch[op_i as usize];
            let kid = key_id(&op.key);

            if matches!(op.kind, OpKind::Scan) {
                // Scans cross bucket boundaries; defer to the batch-end
                // merge (the placeholder is completed there). They never
                // flush the pending group: they read nothing until after
                // the batch's final flush.
                self.scans.push(ScanRef { pos, record: self.records.len() as u32 });
                self.records.push(OpRecord {
                    op_index: op_i,
                    key_id: kid,
                    answer: 0,
                    value: None,
                    matches: 0,
                    visits_start: 0,
                    visits_len: 0,
                    locks: 0,
                    hash_bucket: u32::MAX,
                    shortcut_hit: false,
                    generated: false,
                });
                continue;
            }

            // Level-wise mode defers every read (hit or miss) into the
            // pending group. Anything that could observe the deferral
            // flushes the group first, *before* its own probe: writes
            // mutate the tree and the shortcut table, and a read that will
            // probe a key already pending must see that key's deferred
            // shortcut generation exactly as per-op execution would. When
            // this shard's shortcuts are inactive the arriving read probes
            // nothing, so deferral is unobservable and the group keeps
            // growing through hot-key repeats. (Key ids can collide across
            // keys; a spurious flush is harmless — flush timing is
            // unobservable, only commit order matters.)
            let defer = matches!(mode, TraverseMode::LevelWise) && matches!(op.kind, OpKind::Read);
            if !defer || (self.shortcuts_active && self.pending_keys.contains(&kid)) {
                self.flush_pending(batch);
            }

            // Index_Shortcut: probe for reads/updates (unless this shard's
            // degradation controller has disabled its table).
            let entry = if self.shortcuts_active && matches!(op.kind, OpKind::Read | OpKind::Update)
            {
                // Injected corruption: poison the key's entry just before
                // the probe, so validation catches it and falls back to
                // the root traversal.
                if self.injector.fire(FaultSite::ShortcutEntry, plan.shortcut_corrupt_rate) {
                    self.shortcuts.corrupt(&op.key);
                }
                let stale_before = self.shortcuts.stats().stale_invalidations;
                let e = self.shortcuts.probe(&op.key, &self.art);
                let went_stale = self.shortcuts.stats().stale_invalidations > stale_before;
                if self.degrade.record(went_stale) {
                    // Error rate over the window crossed the threshold:
                    // run the rest of the workload without this shard's
                    // shortcuts (slower, never wrong).
                    self.shortcuts_active = false;
                    self.disables += 1;
                }
                e
            } else {
                None
            };

            if defer {
                // Push the placeholder now (record index must equal bucket
                // position for the serial replay) and commit at flush.
                let kind = match entry {
                    Some(e) => PendingKind::Hit { target: e.target },
                    // Snapshot `shortcuts_active` *after* the probe: this
                    // op's own probe may just have tripped the degradation
                    // latch, and per-op execution would generate (or not)
                    // based on the post-probe state.
                    None => PendingKind::Miss { gen_allowed: self.shortcuts_active },
                };
                self.pending.push(PendingRead { record: self.records.len() as u32, kind });
                self.pending_keys.insert(kid);
                self.records.push(OpRecord {
                    op_index: op_i,
                    key_id: kid,
                    answer: 0,
                    value: None,
                    matches: 0,
                    visits_start: 0,
                    visits_len: 0,
                    locks: 0,
                    hash_bucket: u32::MAX,
                    shortcut_hit: false,
                    generated: false,
                });
                continue;
            }

            let visits_start = self.visit_arena.len() as u32;
            let record = if let Some(entry) = entry {
                // Shortcut hit: direct target fetch, one validation
                // compare, no traversal. If a combined operation of this
                // bucket already fetched the target this batch, the access
                // is free (it is triggered together).
                let target = namespaced(self.bucket, self.sub, entry.target);
                if self.visited.insert(target) {
                    let v = self
                        .art
                        .visit_for(entry.target)
                        .expect("probe validated the target as live");
                    self.visit_arena.push(NodeVisit { node: target, ..v });
                }
                let mut locks = 0u32;
                let value = match op.kind {
                    OpKind::Read => self.art.read_leaf(entry.target, &op.key).copied(),
                    OpKind::Update => {
                        let prev = self
                            .art
                            .update_leaf(entry.target, &op.key, op.value)
                            .expect("probe validated the target key");
                        note_write_target(
                            &mut self.write_target_index,
                            &mut self.write_targets,
                            target,
                        );
                        locks = 1;
                        Some(prev)
                    }
                    _ => unreachable!("shortcuts only serve reads/updates"),
                };
                let visits_len = self.visit_arena.len() as u32 - visits_start;
                OpRecord {
                    op_index: op_i,
                    key_id: kid,
                    answer: digest_option(value),
                    value,
                    matches: u64::from(visits_len),
                    visits_start,
                    visits_len,
                    locks,
                    hash_bucket: u32::MAX,
                    shortcut_hit: true,
                    generated: false,
                }
            } else {
                // Traverse_Tree: full (but coalesced-by-bucket) search of
                // the shard's subtree.
                self.tracer.clear();
                let value = match op.kind {
                    OpKind::Read => self.art.get_traced(&op.key, &mut self.tracer).copied(),
                    OpKind::Update | OpKind::Insert => {
                        match self.art.insert_traced(op.key.clone(), op.value, &mut self.tracer) {
                            Ok(prev) => prev,
                            Err(e) => {
                                self.error = Some((pos, DcartError::from(e)));
                                break 'ops;
                            }
                        }
                    }
                    OpKind::Remove => {
                        let prev = self.art.remove_traced(&op.key, &mut self.tracer);
                        self.shortcuts.invalidate(&op.key);
                        prev
                    }
                    OpKind::Scan => unreachable!("scans are deferred above"),
                };
                let mut generated = false;
                let mut hash_bucket = u32::MAX;
                if self.shortcuts_active && !matches!(op.kind, OpKind::Remove | OpKind::Scan) {
                    if let Some(target) = self.tracer.trace.target {
                        // Generate_Shortcut: only leaves are reusable
                        // point-op targets.
                        if self.art.read_leaf(target, &op.key).is_some() {
                            self.shortcuts.generate(
                                op.key.clone(),
                                target,
                                self.tracer.trace.parent,
                            );
                            generated = true;
                            hash_bucket = hash_bucket_of(kid);
                        }
                    }
                }
                let mut locks = 0u32;
                if op.kind.is_write() {
                    // Every node the write locks joins a coalesced group —
                    // including structural locks on upper nodes of the
                    // shard's subtree.
                    let Self { tracer, write_target_index, write_targets, bucket, sub, .. } = self;
                    if tracer.trace.locks.is_empty() {
                        if let Some(target) = tracer.trace.target {
                            note_write_target(
                                write_target_index,
                                write_targets,
                                namespaced(*bucket, *sub, target),
                            );
                        }
                    } else {
                        for &node in &tracer.trace.locks {
                            note_write_target(
                                write_target_index,
                                write_targets,
                                namespaced(*bucket, *sub, node),
                            );
                        }
                    }
                    locks = tracer.trace.locks.len().max(1) as u32;
                }
                // Whole-run Traverse counters: a per-op traversal loads
                // every node on its path, so advancement steps and node
                // loads coincide here.
                let path_len = self.tracer.trace.visits.len() as u64;
                self.ops_advanced += path_len;
                self.nodes_visited += path_len;
                // Coalesce the traversal: only first-touch nodes cost a
                // fetch and their share of the partial-key matching; path
                // segments another combined op already walked are shared
                // (paper: "each node ... traversed only once").
                let Self { tracer, visited, visit_arena, bucket, sub, .. } = self;
                for v in &tracer.trace.visits {
                    let node = namespaced(*bucket, *sub, v.node);
                    if visited.insert(node) {
                        visit_arena.push(NodeVisit { node, ..*v });
                    }
                }
                let visits_len = self.visit_arena.len() as u32 - visits_start;
                let total_visits = self.tracer.trace.visits.len().max(1) as u64;
                let matches =
                    self.tracer.trace.partial_key_matches * u64::from(visits_len) / total_visits;
                OpRecord {
                    op_index: op_i,
                    key_id: kid,
                    answer: digest_option(value),
                    value,
                    matches,
                    visits_start,
                    visits_len,
                    locks,
                    hash_bucket,
                    shortcut_hit: false,
                    generated,
                }
            };
            self.records.push(record);
        }
        // Hand the (reusable) op slice back to the routing pass.
        self.ops = ops;
        if self.error.is_some() {
            // The failing write flushed the pending group before its own
            // probe; the batch aborts, so nothing else needs committing.
            return;
        }
        // Batch end: commit the last pending group before the executor
        // resolves scans against the shard's visited set.
        self.flush_pending(batch);
    }

    /// Commits every deferred read of the pending group, in arrival order,
    /// with per-op-identical observables.
    ///
    /// The tree is frozen while reads pend (writes flush before they
    /// execute), so each read resolves against exactly the tree state it
    /// saw at arrival: probe hits fetch their validated target directly,
    /// and one level-wise wave walk answers all the misses at once —
    /// loading each distinct `(node, wave)` pair a single time, which is
    /// where the batch win comes from. Committing in arrival order keeps
    /// the visit arena, the visited-set dedup, and every record field
    /// byte-identical to per-op execution.
    fn flush_pending(&mut self, batch: &[Op]) {
        if self.pending.is_empty() {
            return;
        }
        // Gather the miss keys (cheap `Arc` clones) in arrival order; one
        // wave walk resolves them all.
        self.miss_keys.clear();
        for p in &self.pending {
            if matches!(p.kind, PendingKind::Miss { .. }) {
                let op_index = self.records[p.record as usize].op_index;
                self.miss_keys.push(batch[op_index as usize].key.clone());
            }
        }
        self.art.locate_leaves_level_wise(&self.miss_keys, &mut self.lw_scratch);
        self.ops_advanced += self.lw_scratch.ops_advanced();
        self.nodes_visited += self.lw_scratch.nodes_loaded();

        let mut miss_i = 0usize;
        for pi in 0..self.pending.len() {
            let PendingRead { record, kind } = self.pending[pi];
            let rec_idx = record as usize;
            let op = &batch[self.records[rec_idx].op_index as usize];
            let visits_start = self.visit_arena.len() as u32;
            match kind {
                PendingKind::Hit { target } => {
                    // Identical to the immediate hit path: direct target
                    // fetch (free if a combined op already fetched it),
                    // one validation compare.
                    let namespaced_target = namespaced(self.bucket, self.sub, target);
                    if self.visited.insert(namespaced_target) {
                        let v =
                            self.art.visit_for(target).expect("probe validated the target as live");
                        self.visit_arena.push(NodeVisit { node: namespaced_target, ..v });
                    }
                    let value = self.art.read_leaf(target, &op.key).copied();
                    let visits_len = self.visit_arena.len() as u32 - visits_start;
                    let rec = &mut self.records[rec_idx];
                    rec.answer = digest_option(value);
                    rec.value = value;
                    rec.matches = u64::from(visits_len);
                    rec.visits_start = visits_start;
                    rec.visits_len = visits_len;
                    rec.shortcut_hit = true;
                }
                PendingKind::Miss { gen_allowed } => {
                    let w = miss_i;
                    miss_i += 1;
                    let target = self.lw_scratch.target(w);
                    let value = target.and_then(|(t, _)| self.art.read_leaf(t, &op.key).copied());
                    let mut generated = false;
                    let mut hash_bucket = u32::MAX;
                    if gen_allowed {
                        if let Some((t, parent)) = target {
                            // Generate_Shortcut: only leaves are reusable
                            // point-op targets.
                            if self.art.read_leaf(t, &op.key).is_some() {
                                self.shortcuts.generate(op.key.clone(), t, parent);
                                generated = true;
                                hash_bucket = hash_bucket_of(self.records[rec_idx].key_id);
                            }
                        }
                    }
                    // Same first-touch coalescing as the per-op path, over
                    // the identical full traversal path.
                    let Self { lw_scratch, visited, visit_arena, bucket, sub, .. } = self;
                    let path = lw_scratch.visits(w);
                    for v in path {
                        let node = namespaced(*bucket, *sub, v.node);
                        if visited.insert(node) {
                            visit_arena.push(NodeVisit { node, ..*v });
                        }
                    }
                    let visits_len = self.visit_arena.len() as u32 - visits_start;
                    let total_visits = path.len().max(1) as u64;
                    let rec = &mut self.records[rec_idx];
                    rec.answer = digest_option(value);
                    rec.value = value;
                    rec.matches = self.lw_scratch.pkm(w) * u64::from(visits_len) / total_visits;
                    rec.visits_start = visits_start;
                    rec.visits_len = visits_len;
                    rec.generated = generated;
                    rec.hash_bucket = hash_bucket;
                }
            }
        }
        self.pending.clear();
        self.pending_keys.clear();
    }
}

/// Reusable buffers for the batch-end scan merge.
#[derive(Default)]
struct ScanScratch {
    /// `(pos, bucket, leaf index, record)` of every deferred scan, sorted
    /// into the canonical round-robin order (bucket position first, then
    /// bucket — a bucket has at most one op per position, so sub-shards
    /// never tie).
    order: Vec<(u32, u32, u32, u32)>,
    /// Merged `(key_id, value)` items of the scan under resolution.
    items: Vec<(u64, u64)>,
    cursors: Vec<usize>,
    consumed: Vec<u32>,
    /// Namespaced visits of every resolved scan, flat; per-scan ranges are
    /// carried by `resolved`, per-shard sub-ranges by `segments`.
    visit_buf: Vec<NodeVisit>,
    /// `(visit count, partial-key matches)` per contributing shard.
    segments: Vec<(usize, u64)>,
    /// Per-scan merge outcome awaiting commit:
    /// `(answer, items returned, segments range start, segments range len)`.
    resolved: Vec<(u64, u64, u32, u32)>,
    tracer: RecordingTracer,
}

/// Resolves every scan deferred during the worker phase: answers come from
/// a k-way merge over all shard subtrees (end-of-batch state), visit costs
/// from re-walking exactly the shards the merge consumed from.
///
/// Runs in two passes — merge every scan against the (now immutable)
/// shard subtrees, then commit every outcome — so the per-shard scan
/// buffers can be reused across scans instead of reallocated per scan.
fn resolve_scans(shards: &mut [BucketShard], batch: &[Op], scratch: &mut ScanScratch) {
    scratch.order.clear();
    for (leaf, shard) in shards.iter().enumerate() {
        for s in &shard.scans {
            scratch.order.push((s.pos, shard.bucket as u32, leaf as u32, s.record));
        }
    }
    if scratch.order.is_empty() {
        return;
    }
    scratch.order.sort_unstable();
    scratch.cursors.resize(shards.len(), 0);
    scratch.consumed.resize(shards.len(), 0);
    scratch.visit_buf.clear();
    scratch.segments.clear();
    scratch.resolved.clear();

    // Pass 1 — merge: shards are only read, so the scan buffers (which
    // borrow the shard trees) persist across the whole pass.
    let mut parts: Vec<Vec<(&Key, &u64)>> = vec![Vec::new(); shards.len()];
    for &(_, _, leaf32, rec) in &scratch.order {
        let b = leaf32 as usize;
        let op = &batch[shards[b].records[rec as usize].op_index as usize];
        let start = op.key.as_bytes();
        let limit = op.value as usize;

        // Phase A — answer: merge the per-shard scans by key and keep the
        // first `limit` items, counting how many each shard contributed.
        scratch.items.clear();
        scratch.cursors.iter_mut().for_each(|c| *c = 0);
        scratch.consumed.iter_mut().for_each(|c| *c = 0);
        for (s, part) in shards.iter().zip(parts.iter_mut()) {
            s.art.scan_traced_into(start, limit, &mut NoopTracer, part);
        }
        while scratch.items.len() < limit {
            let mut best: Option<(usize, &[u8])> = None;
            for (i, part) in parts.iter().enumerate() {
                if let Some(&(k, _)) = part.get(scratch.cursors[i]) {
                    let kb = k.as_bytes();
                    if best.is_none_or(|(_, bb)| kb < bb) {
                        best = Some((i, kb));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let (k, &v) = parts[i][scratch.cursors[i]];
            scratch.items.push((key_id(k), v));
            scratch.cursors[i] += 1;
            scratch.consumed[i] += 1;
        }
        // Same digest formula as a single-tree scan: length first, then
        // every (key id, value) pair in key order.
        let mut answer = fold_digest(DIGEST_BASE, scratch.items.len() as u64);
        for &(kid, v) in &scratch.items {
            answer = fold_digest(answer, kid);
            answer = fold_digest(answer, v);
        }

        // Phase B — cost: re-walk the shards the merge consumed from (and
        // always the scan's own shard, which at minimum descends to the
        // start position), collecting namespaced visits.
        let seg_start = scratch.segments.len() as u32;
        for (i, src) in shards.iter().enumerate() {
            let consumed = scratch.consumed[i];
            if consumed == 0 && i != b {
                continue;
            }
            scratch.tracer.clear();
            let _ = src.art.scan_traced(start, (consumed as usize).max(1), &mut scratch.tracer);
            let before = scratch.visit_buf.len();
            for v in &scratch.tracer.trace.visits {
                scratch
                    .visit_buf
                    .push(NodeVisit { node: namespaced(src.bucket, src.sub, v.node), ..*v });
            }
            scratch
                .segments
                .push((scratch.visit_buf.len() - before, scratch.tracer.trace.partial_key_matches));
        }
        scratch.resolved.push((
            answer,
            scratch.items.len() as u64,
            seg_start,
            scratch.segments.len() as u32 - seg_start,
        ));
    }

    // Pass 2 — commit, in the same scan order: dedup each scan's visits
    // against the owning shard's batch-local visited set (coalescing
    // applies to scans too) and complete the placeholder records.
    let mut off = 0usize;
    for (&(_, _, leaf32, rec), &(answer, count, seg_start, seg_len)) in
        scratch.order.iter().zip(&scratch.resolved)
    {
        let shard = &mut shards[leaf32 as usize];
        let visits_start = shard.visit_arena.len() as u32;
        let mut matches = 0u64;
        for &(len, pkm) in &scratch.segments[seg_start as usize..(seg_start + seg_len) as usize] {
            let seg = &scratch.visit_buf[off..off + len];
            off += len;
            let mut fresh = 0u64;
            for v in seg {
                if shard.visited.insert(v.node) {
                    shard.visit_arena.push(*v);
                    fresh += 1;
                }
            }
            matches += pkm * fresh / (len.max(1) as u64);
        }
        let record = &mut shard.records[rec as usize];
        record.answer = answer;
        record.value = Some(count);
        record.matches = matches;
        record.visits_start = visits_start;
        record.visits_len = shard.visit_arena.len() as u32 - visits_start;
    }
}

/// Merges a set of disjoint subtrees into one: a k-way merge by key
/// (shard key ranges interleave modulo the bucket count) bulk-loaded
/// through the validating sorted constructor, which also enforces the
/// *global* prefix-free invariant that per-shard inserts cannot see. Used
/// both by the end-of-run merge over every leaf shard and by the re-merge
/// of a cooled bucket's sub-shards.
fn merge_art_trees<'a>(trees: impl Iterator<Item = &'a Art<u64>>) -> Result<Art<u64>, DcartError> {
    let trees: Vec<&Art<u64>> = trees.collect();
    let total: usize = trees.iter().map(|t| t.len()).sum();
    let mut pairs: Vec<(Key, u64)> = Vec::with_capacity(total);
    let mut iters: Vec<_> = trees.iter().map(|t| t.iter()).collect();
    let mut heads: Vec<Option<(&Key, &u64)>> = iters.iter_mut().map(Iterator::next).collect();
    loop {
        let mut best: Option<(usize, &[u8])> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some((k, _)) = head {
                let kb = k.as_bytes();
                if best.is_none_or(|(_, bb)| kb < bb) {
                    best = Some((i, kb));
                }
            }
        }
        let Some((i, _)) = best else { break };
        if let Some((k, &v)) = heads[i] {
            pairs.push((k.clone(), v));
        }
        heads[i] = iters[i].next();
    }
    Ok(Art::from_sorted(pairs)?)
}

/// Merges the leaf-shard subtrees back into the one logical tree the run
/// produces.
fn merge_shard_trees(shards: &[BucketShard]) -> Result<Art<u64>, DcartError> {
    merge_art_trees(shards.iter().map(|s| &s.art))
}

/// Per-bucket adaptive-sharding state. The executor's shard vector holds
/// *leaves* (one per unsplit bucket, [`SPLIT_FANOUT`] per split bucket, in
/// bucket order); each group tracks where its bucket's leaves start and
/// how a split bucket's positions map onto them.
struct BucketGroup {
    bucket: usize,
    /// Index of this bucket's first leaf in the executor's shard vector
    /// (recomputed by every routing pass).
    start: usize,
    /// Leaves this bucket currently fans over (1 while unsplit).
    subs: usize,
    /// Consecutive cool batches, for the merge hysteresis.
    cool: u32,
    /// Bucket position → `(sub, record index)` of the current batch; empty
    /// while unsplit (record index then equals the position).
    route: Vec<(u8, u32)>,
    splits: u64,
    merges: u64,
    /// Ops routed through this bucket over the whole run.
    ops_routed: u64,
    /// Stats of leaves retired by past splits/merges, folded here so the
    /// run totals survive the shard turnover.
    retired: ShortcutStats,
    retired_disables: u64,
}

impl BucketGroup {
    fn new(bucket: usize) -> Self {
        BucketGroup {
            bucket,
            start: bucket,
            subs: 1,
            cool: 0,
            route: Vec::new(),
            splits: 0,
            merges: 0,
            ops_routed: 0,
            retired: ShortcutStats::default(),
            retired_disables: 0,
        }
    }
}

/// The split policy fixed for a whole run: a pure function of the config
/// and batch size, so the split schedule depends only on the op stream.
struct SplitPolicy {
    /// Splitting entirely off (threshold 1.0, or too many buckets for the
    /// sub-shard namespace).
    enabled: bool,
    /// Per-batch op count above which a bucket splits; a split bucket is
    /// *cool* at or below half this.
    split_above: usize,
    /// Key byte the sub-shards route on: the first byte past the combining
    /// prefix.
    next_byte: usize,
}

impl SplitPolicy {
    fn resolve(config: &DcartConfig, batch_size: usize) -> Self {
        let frac = config.split_threshold.unwrap_or_else(split_threshold);
        let frac = if frac.is_finite() { frac.clamp(0.0, 1.0) } else { 1.0 };
        SplitPolicy {
            enabled: frac < 1.0 && config.buckets() <= MAX_SPLIT_BUCKETS,
            split_above: (batch_size as f64 * frac).ceil() as usize,
            next_byte: config.prefix_skip_bytes + (config.prefix_bits as usize).div_ceil(8),
        }
    }
}

/// Sub-shard a key routes to within its (split) bucket: the key byte just
/// past the combining prefix, folded onto the fanout. Keys too short to
/// have that byte share sub 0.
fn sub_of(key: &Key, next_byte: usize) -> usize {
    key.as_bytes().get(next_byte).copied().unwrap_or(0) as usize % SPLIT_FANOUT
}

/// Folds a retiring leaf's whole-run counters into its group's
/// accumulator, so splits and merges never lose statistics.
fn retire_shard(shard: &BucketShard, retired: &mut ShortcutStats, disables: &mut u64) {
    let mut s = shard.shortcuts.stats();
    s.nodes_visited = shard.nodes_visited;
    s.ops_advanced = shard.ops_advanced;
    retired.accumulate(&s);
    *disables += shard.disables;
}

/// Splits a hot bucket's single leaf into [`SPLIT_FANOUT`] sub-shards:
/// the subtree partitions by the routing byte (each partition is a
/// subsequence of the sorted iteration, so the validating bulk loader
/// accepts it), the shortcut shard restarts empty (its arena node ids die
/// with the old tree), and each sub-shard draws a derived-seed fault
/// stream. The degradation latch is inherited.
fn split_bucket(
    g: &mut BucketGroup,
    leaves: &mut Vec<BucketShard>,
    config: &DcartConfig,
    policy: &SplitPolicy,
) -> Result<(), DcartError> {
    let old = leaves.remove(g.start);
    let shortcuts_active = old.shortcuts_active;
    retire_shard(&old, &mut g.retired, &mut g.retired_disables);
    let mut parts: Vec<Vec<(Key, u64)>> = (0..SPLIT_FANOUT).map(|_| Vec::new()).collect();
    for (k, &v) in old.art.iter() {
        parts[sub_of(k, policy.next_byte)].push((k.clone(), v));
    }
    for (sub, part) in parts.into_iter().enumerate().rev() {
        let art = Art::from_sorted(part)?;
        leaves.insert(g.start, BucketShard::new_sub(g.bucket, sub, config, art, shortcuts_active));
    }
    g.subs = SPLIT_FANOUT;
    g.splits += 1;
    g.cool = 0;
    Ok(())
}

/// Re-merges a cooled bucket's sub-shards into one leaf through the same
/// validating k-way merge that produces the final tree. The merged shard's
/// shortcut table restarts empty; its latch stays tripped if *any*
/// sub-shard's was (sticky degradation never un-trips on merge).
fn merge_bucket(
    g: &mut BucketGroup,
    leaves: &mut Vec<BucketShard>,
    config: &DcartConfig,
) -> Result<(), DcartError> {
    let subs: Vec<BucketShard> = leaves.drain(g.start..g.start + g.subs).collect();
    let active = subs.iter().all(|s| s.shortcuts_active);
    for s in &subs {
        retire_shard(s, &mut g.retired, &mut g.retired_disables);
    }
    let art = merge_art_trees(subs.iter().map(|s| &s.art))?;
    leaves.insert(g.start, BucketShard::new_sub(g.bucket, 0, config, art, active));
    g.subs = 1;
    g.merges += 1;
    g.cool = 0;
    Ok(())
}

/// The per-batch adaptation + routing pass: walks the groups in bucket
/// order, splits newly hot buckets and re-merges cooled ones (decisions
/// read only the per-batch op counts), then deals every bucket op into its
/// leaf's `(bucket position, op index)` slice for the worker pool.
fn adapt_and_route(
    groups: &mut [BucketGroup],
    leaves: &mut Vec<BucketShard>,
    combined: &CombinedBatch,
    batch: &[Op],
    config: &DcartConfig,
    policy: &SplitPolicy,
) -> Result<(), DcartError> {
    let mut start = 0usize;
    for g in groups.iter_mut() {
        g.start = start;
        let bucket_ops = &combined.buckets[g.bucket];
        let load = bucket_ops.len();
        g.ops_routed += load as u64;
        if policy.enabled {
            if g.subs == 1 && load > policy.split_above {
                split_bucket(g, leaves, config, policy)?;
            } else if g.subs > 1 {
                if load <= policy.split_above / 2 {
                    g.cool += 1;
                    if g.cool >= MERGE_PATIENCE {
                        merge_bucket(g, leaves, config)?;
                    }
                } else {
                    g.cool = 0;
                }
            }
        }
        for leaf in &mut leaves[g.start..g.start + g.subs] {
            leaf.ops.clear();
        }
        g.route.clear();
        if g.subs == 1 {
            let leaf = &mut leaves[g.start];
            for (pos, &op_i) in bucket_ops.iter().enumerate() {
                leaf.ops.push((pos as u32, op_i));
            }
        } else {
            for &op_i in bucket_ops {
                let sub = sub_of(&batch[op_i as usize].key, policy.next_byte);
                let pos = g.route.len() as u32;
                let leaf = &mut leaves[g.start + sub];
                g.route.push((sub as u8, leaf.ops.len() as u32));
                leaf.ops.push((pos, op_i));
            }
        }
        start += g.subs;
    }
    Ok(())
}

/// Executes `ops` over a tree loaded with `keys` under the CTT model,
/// streaming events to `consumer`. Buckets run on [`sou_threads`] workers.
///
/// Returns the final tree and the aggregate statistics.
///
/// Shortcuts accelerate reads and updates (the operations of the paper's
/// workloads); inserts and removes always traverse, and removes invalidate
/// their key's shortcut.
///
/// # Examples
///
/// ```
/// use dcart::{execute_ctt, CttConsumer, DcartConfig};
/// use dcart_workloads::{generate_ops, synth, OpStreamConfig};
///
/// struct Sink;
/// impl CttConsumer for Sink {}
///
/// let keys = synth::dense(500, 1);
/// let ops = generate_ops(&keys, &OpStreamConfig { count: 2_000, ..Default::default() });
/// let cfg = DcartConfig::default().with_auto_prefix_skip(&keys);
/// let (tree, stats) = execute_ctt(&keys, &ops, &cfg, 512, &mut Sink);
/// assert_eq!(stats.ops, 2_000);
/// assert!(stats.lock_groups < stats.per_op_locks, "coalescing saves locks");
/// assert!(tree.len() >= 500);
/// ```
///
/// # Panics
///
/// Panics on a zero `batch_size` or keys the tree rejects; use
/// [`try_execute_ctt`] for a `Result`-returning variant.
// The one sanctioned panic in this crate: a convenience wrapper whose
// panicking contract is documented above; all other callers go through
// `try_execute_ctt`.
#[allow(clippy::panic)]
pub fn execute_ctt<C: CttConsumer>(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    consumer: &mut C,
) -> (Art<u64>, CttStats) {
    assert!(batch_size > 0, "batch size must be positive");
    match try_execute_ctt(keys, ops, config, batch_size, consumer) {
        Ok(r) => r,
        // Documented infallible wrapper: the `try_` variant is the library
        // surface, and this panic is the advertised contract (`# Panics`).
        // dcart_lint::allow(P1) -- panic documented in the wrapper contract
        Err(e) => panic!("CTT execution failed: {e}"),
    }
}

/// [`execute_ctt`] with an explicit worker-thread count, bypassing the
/// process-global [`sou_threads`] knob (useful for tests that must not
/// race on global state).
///
/// # Panics
///
/// Panics on a zero `batch_size` or keys the tree rejects.
#[allow(clippy::panic)]
pub fn execute_ctt_threaded<C: CttConsumer>(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    threads: usize,
    consumer: &mut C,
) -> (Art<u64>, CttStats) {
    assert!(batch_size > 0, "batch size must be positive");
    match try_execute_ctt_threaded(keys, ops, config, batch_size, threads, consumer) {
        Ok(r) => r,
        // Documented infallible wrapper: the `try_` variant is the library
        // surface, and this panic is the advertised contract (`# Panics`).
        // dcart_lint::allow(P1) -- panic documented in the wrapper contract
        Err(e) => panic!("CTT execution failed: {e}"),
    }
}

/// [`execute_ctt`] with an explicit worker-thread count *and*
/// [`TraverseMode`], bypassing both process-global knobs (useful for tests
/// that pin the two modes against each other without racing on globals).
///
/// # Panics
///
/// Panics on a zero `batch_size` or keys the tree rejects.
#[allow(clippy::panic)]
pub fn execute_ctt_with<C: CttConsumer>(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    threads: usize,
    mode: TraverseMode,
    consumer: &mut C,
) -> (Art<u64>, CttStats) {
    assert!(batch_size > 0, "batch size must be positive");
    match try_execute_ctt_with(keys, ops, config, batch_size, threads, mode, consumer) {
        Ok(r) => r,
        // Documented infallible wrapper: the `try_` variant is the library
        // surface, and this panic is the advertised contract (`# Panics`).
        // dcart_lint::allow(P1) -- panic documented in the wrapper contract
        Err(e) => panic!("CTT execution failed: {e}"),
    }
}

/// Fallible variant of [`execute_ctt`]: returns [`DcartError`] instead of
/// panicking on a zero batch size or keys the tree rejects
/// (prefix-violating or unsorted bulk loads).
///
/// # Errors
///
/// * [`DcartError::InvalidBatchSize`] when `batch_size == 0`;
/// * [`DcartError::Art`] when the key set or an insert violates the
///   tree's prefix-free requirement.
pub fn try_execute_ctt<C: CttConsumer>(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    consumer: &mut C,
) -> Result<(Art<u64>, CttStats), DcartError> {
    try_execute_ctt_threaded(keys, ops, config, batch_size, sou_threads(), consumer)
}

/// Fallible variant of [`execute_ctt_threaded`].
///
/// Single-threaded (`threads <= 1`) runs execute the identical sharded
/// code inline, so any two thread counts produce byte-identical stats,
/// digests, and event streams.
///
/// # Errors
///
/// * [`DcartError::InvalidBatchSize`] when `batch_size == 0`;
/// * [`DcartError::Art`] when the key set or an insert violates the
///   tree's prefix-free requirement.
pub fn try_execute_ctt_threaded<C: CttConsumer>(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    threads: usize,
    consumer: &mut C,
) -> Result<(Art<u64>, CttStats), DcartError> {
    try_execute_ctt_with(keys, ops, config, batch_size, threads, traverse_mode(), consumer)
}

/// Fallible variant of [`execute_ctt_with`]: explicit worker-thread count
/// and [`TraverseMode`]. The mode is fixed for the whole execution (the
/// process-global knob is read once by the callers that use it).
///
/// # Errors
///
/// * [`DcartError::InvalidBatchSize`] when `batch_size == 0`;
/// * [`DcartError::Art`] when the key set or an insert violates the
///   tree's prefix-free requirement.
pub fn try_execute_ctt_with<C: CttConsumer>(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    threads: usize,
    mode: TraverseMode,
    consumer: &mut C,
) -> Result<(Art<u64>, CttStats), DcartError> {
    let opts = ExecOpts { threads, mode, steal: work_stealing() };
    try_execute_ctt_profiled(keys, ops, config, batch_size, &opts, consumer)
        .map(|(art, stats, _)| (art, stats))
}

/// The fully-explicit entry point: every knob comes from `opts` (no
/// process-global reads), and the result carries the [`LoadReport`] the
/// bench harness turns into per-bucket skew histograms.
///
/// # Errors
///
/// * [`DcartError::InvalidBatchSize`] when `batch_size == 0`;
/// * [`DcartError::Art`] when the key set or an insert violates the
///   tree's prefix-free requirement.
pub fn try_execute_ctt_profiled<C: CttConsumer>(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    opts: &ExecOpts,
    consumer: &mut C,
) -> Result<(Art<u64>, CttStats, LoadReport), DcartError> {
    if batch_size == 0 {
        return Err(DcartError::InvalidBatchSize);
    }
    // Partitioned bulk load: every key goes to the shard its combining
    // prefix selects (the same routing the PCU applies to operations), with
    // its *global* load index as the value — identical values to a
    // single-tree `load_indexed`.
    let shards = load_shards(config, keys.keys.iter().enumerate().map(|(i, k)| (k, i as u64)))?;
    let knobs = RunKnobs { batch_size, threads: opts.threads, mode: opts.mode, steal: opts.steal };
    run_batches(shards, ops, config, knobs, 0, consumer)
}

/// Resumes a CTT execution from a known tree state instead of a fresh key
/// set: the shards are seeded with `pairs` (routed by the same combining
/// prefixes as a bulk load) and the answer digest continues folding from
/// `initial_digest`.
///
/// This is the durability layer's replay entry point: running a prefix of
/// an op stream, capturing the merged tree and digest, and resuming over
/// the suffix produces the *same final tree and cumulative answer digest*
/// as one uninterrupted run — answers depend only on tree contents, never
/// on shortcut-table, fault-stream, or degradation state (which reset at
/// the seam; timing and hit-rate stats therefore differ, answers cannot).
///
/// # Errors
///
/// * [`DcartError::InvalidBatchSize`] when `batch_size == 0`;
/// * [`DcartError::Art`] when `pairs` or an insert violates the tree's
///   prefix-free requirement.
pub fn try_execute_ctt_resumed<C: CttConsumer>(
    pairs: &[(Key, u64)],
    ops: &[Op],
    config: &DcartConfig,
    batch_size: usize,
    threads: usize,
    initial_digest: u64,
    consumer: &mut C,
) -> Result<(Art<u64>, CttStats), DcartError> {
    if batch_size == 0 {
        return Err(DcartError::InvalidBatchSize);
    }
    let shards = load_shards(config, pairs.iter().map(|(k, v)| (k, *v)))?;
    let knobs = RunKnobs { batch_size, threads, mode: traverse_mode(), steal: work_stealing() };
    run_batches(shards, ops, config, knobs, initial_digest, consumer)
        .map(|(art, stats, _)| (art, stats))
}

/// Builds the per-bucket shards and routes every `(key, value)` entry to
/// the shard its combining prefix selects.
fn load_shards<'a>(
    config: &DcartConfig,
    entries: impl Iterator<Item = (&'a Key, u64)>,
) -> Result<Vec<BucketShard>, DcartError> {
    let buckets = config.buckets();
    let mut shards: Vec<BucketShard> = (0..buckets).map(|b| BucketShard::new(b, config)).collect();
    for (key, value) in entries {
        let prefix = key.prefix_bits_at(config.prefix_skip_bytes, config.prefix_bits);
        shards[config.bucket_of(prefix)].art.insert(key.clone(), value)?;
    }
    Ok(shards)
}

/// The execution knobs fixed for a whole run, bundled so the batch loop's
/// signature stays readable as knobs accrete.
struct RunKnobs {
    batch_size: usize,
    threads: usize,
    mode: TraverseMode,
    steal: bool,
}

/// Explicit execution options for [`try_execute_ctt_profiled`], bypassing
/// every process-global knob (useful for tests and benches that must not
/// race on globals). [`ExecOpts::default`] snapshots the globals.
#[derive(Clone, Copy, Debug)]
pub struct ExecOpts {
    /// Worker threads the shard pool fans over ([`sou_threads`]).
    pub threads: usize,
    /// Traverse mode ([`traverse_mode`]).
    pub mode: TraverseMode,
    /// Whether the pool's work-stealing deques are active
    /// ([`work_stealing`]).
    pub steal: bool,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts { threads: sou_threads(), mode: traverse_mode(), steal: work_stealing() }
    }
}

/// Per-bucket load observed over a whole run, for the skew histograms in
/// the bench report. Every field is deterministic for a fixed config; the
/// two intentionally schedule-dependent counters live on [`LoadReport`]
/// instead.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BucketLoad {
    /// Bucket index.
    pub bucket: usize,
    /// Operations routed through the bucket over the run.
    pub ops: u64,
    /// Tree nodes its shards loaded (retired + live leaves).
    pub nodes_visited: u64,
    /// Times the bucket split into sub-shards.
    pub splits: u64,
    /// Times its sub-shards re-merged.
    pub merges: u64,
    /// Leaves the bucket ended the run with (1 unless still split).
    pub subs_at_end: usize,
}

/// Load-balance observability for one execution: the per-bucket skew
/// histogram plus the pool's steal counters.
///
/// The per-bucket entries are deterministic (split schedules depend only
/// on op counts). The steal counters are the one *intentionally*
/// schedule-dependent observable in the executor — which is exactly why
/// they live here and not in [`CttStats`], whose byte-identity across
/// thread counts and steal settings is pinned by tests.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Per-bucket load, in bucket order.
    pub buckets: Vec<BucketLoad>,
    /// Steal operations the pool performed (0 with stealing off; varies
    /// run-to-run with it on).
    pub steal_events: u64,
    /// Shards that ran on a thief instead of their owner.
    pub shards_stolen: u64,
}

/// The batch loop shared by the fresh and resumed entry points: Combine,
/// adapt + route, Traverse + Trigger on the worker pool, serial replay,
/// batch-end merge. A thin driver over [`CttSession`] — one
/// `execute_batch` per fixed-size chunk, then `finish`.
fn run_batches<C: CttConsumer>(
    shards: Vec<BucketShard>,
    ops: &[Op],
    config: &DcartConfig,
    knobs: RunKnobs,
    initial_digest: u64,
    consumer: &mut C,
) -> Result<(Art<u64>, CttStats, LoadReport), DcartError> {
    let batch_size = knobs.batch_size;
    let mut session = CttSession::from_shards(shards, config, knobs, initial_digest);
    for batch in ops.chunks(batch_size) {
        session.execute_batch(batch, consumer)?;
        if consumer.abort() {
            // The consumer can no longer make further batches durable
            // (crash, dead log): stop here rather than execute work whose
            // effects would be lost. Everything up to and including this
            // batch is already reflected in the shards and stats.
            break;
        }
    }
    session.finish()
}

/// A resumable, incrementally-driven CTT execution: the seam the online
/// serving layer coalesces requests onto.
///
/// The one-shot entry points ([`try_execute_ctt_profiled`] and friends)
/// chunk a known op slice into fixed-size batches and drive this struct to
/// completion. A server cannot do that — its batches materialize one at a
/// time (flushed on size or linger deadline) and vary in size — so the
/// session exposes the loop body directly: construct once over the
/// recovered tree state, call [`execute_batch`](CttSession::execute_batch)
/// per coalesced batch, snapshot [`tree`](CttSession::tree) /
/// [`answer_digest`](CttSession::answer_digest) for checkpoints whenever
/// convenient, and [`finish`](CttSession::finish) at drain.
///
/// Determinism contract: driving a session with the same sequence of
/// batch slices produces byte-identical events, digests, and stats as the
/// one-shot entry points fed the concatenated ops at the same batch
/// boundaries — `run_batches` *is* this struct. (The split policy is
/// resolved once from the construction-time `batch_size`, so a server's
/// variable-size flushes keep a stable split schedule input.)
pub struct CttSession {
    config: DcartConfig,
    policy: SplitPolicy,
    threads: usize,
    mode: TraverseMode,
    steal: bool,
    stats: CttStats,
    /// The leaf vector starts as one shard per bucket; splits and merges
    /// reshape it between batches. `groups` tracks each bucket's slice.
    leaves: Vec<BucketShard>,
    groups: Vec<BucketGroup>,
    pool_stats: PoolStats,
    // Whole-run scratch, reused across batches.
    combined: CombinedBatch,
    bucket_sizes: Vec<u32>,
    leaf_weights: Vec<u64>,
    shortcut_writers: FxHashMap<u64, usize>,
    scan_scratch: ScanScratch,
    batch_idx: usize,
}

impl CttSession {
    /// Opens a session over an explicit tree state (`pairs`, routed by the
    /// same combining prefixes as a bulk load), continuing the answer
    /// digest from `initial_digest` — the serving layer's recovery seam,
    /// mirroring [`try_execute_ctt_resumed`].
    ///
    /// `batch_size` is the *nominal* batch size: it only seeds the split
    /// policy (and must be positive); actual batches are whatever slices
    /// are passed to [`execute_batch`](CttSession::execute_batch).
    ///
    /// # Errors
    ///
    /// * [`DcartError::InvalidBatchSize`] when `batch_size == 0`;
    /// * [`DcartError::Art`] when `pairs` violates the tree's prefix-free
    ///   requirement.
    pub fn from_pairs(
        pairs: &[(Key, u64)],
        config: &DcartConfig,
        opts: &ExecOpts,
        batch_size: usize,
        initial_digest: u64,
    ) -> Result<Self, DcartError> {
        if batch_size == 0 {
            return Err(DcartError::InvalidBatchSize);
        }
        let shards = load_shards(config, pairs.iter().map(|(k, v)| (k, *v)))?;
        let knobs =
            RunKnobs { batch_size, threads: opts.threads, mode: opts.mode, steal: opts.steal };
        Ok(Self::from_shards(shards, config, knobs, initial_digest))
    }

    fn from_shards(
        shards: Vec<BucketShard>,
        config: &DcartConfig,
        knobs: RunKnobs,
        initial_digest: u64,
    ) -> Self {
        let RunKnobs { batch_size, threads, mode, steal } = knobs;
        CttSession {
            config: *config,
            policy: SplitPolicy::resolve(config, batch_size),
            threads,
            mode,
            steal,
            stats: CttStats { answer_digest: initial_digest, ..CttStats::default() },
            leaves: shards,
            groups: (0..config.buckets()).map(BucketGroup::new).collect(),
            pool_stats: PoolStats::default(),
            combined: CombinedBatch { buckets: Vec::new(), scanned: 0 },
            bucket_sizes: Vec::new(),
            leaf_weights: Vec::new(),
            shortcut_writers: FxHashMap::default(),
            scan_scratch: ScanScratch::default(),
            batch_idx: 0,
        }
    }

    /// Executes one coalesced batch end to end: Combine, adapt + route,
    /// Traverse + Trigger on the worker pool, scan resolution, serial
    /// replay into `consumer`. The one-shot loop body, verbatim.
    ///
    /// # Errors
    ///
    /// [`DcartError::Art`] when an insert violates the tree's prefix-free
    /// requirement (deterministically the first failure a serial sweep
    /// would hit). An erring session holds a partially-executed batch —
    /// discard it and rebuild from durable state; further calls are not
    /// meaningful.
    pub fn execute_batch<C: CttConsumer>(
        &mut self,
        batch: &[Op],
        consumer: &mut C,
    ) -> Result<(), DcartError> {
        let batch_idx = self.batch_idx;
        self.batch_idx += 1;
        let config = &self.config;
        let plan = config.faults;
        combine_batch_into(config, batch, &mut self.combined);
        self.bucket_sizes.clear();
        self.bucket_sizes.extend(self.combined.buckets.iter().map(|b| b.len() as u32));

        // Adapt + route: split hot buckets / re-merge cooled ones (from op
        // counts alone), then deal every op into its leaf's slice.
        adapt_and_route(
            &mut self.groups,
            &mut self.leaves,
            &self.combined,
            batch,
            config,
            &self.policy,
        )?;

        // Traverse + Trigger: the key-disjoint leaves run concurrently;
        // outcomes land in per-shard records, not in shared state. With
        // stealing on, leaves deal heaviest-first over per-worker deques
        // and idle workers steal — which moves work, never results.
        let mode = self.mode;
        if self.steal {
            self.leaf_weights.clear();
            self.leaf_weights.extend(self.leaves.iter().map(|l| l.ops.len() as u64));
            par_for_each_mut_balanced(
                &mut self.leaves,
                self.threads,
                &self.leaf_weights,
                Some(&self.pool_stats),
                |_, shard| shard.run_batch(batch, &plan, mode),
            );
        } else {
            par_for_each_mut(&mut self.leaves, self.threads, |_, shard| {
                shard.run_batch(batch, &plan, mode);
            });
        }

        // A failed insert aborts the run; pick the failure a serial
        // round-robin sweep would have hit first so the error (like every
        // other observable) is thread-count-independent. No events are
        // emitted for the aborted batch.
        let mut first_error: Option<(u32, u32, DcartError)> = None;
        for shard in self.leaves.iter_mut() {
            if let Some((pos, e)) = shard.error.take() {
                let b = shard.bucket as u32;
                if first_error.as_ref().is_none_or(|(p, fb, _)| (pos, b) < (*p, *fb)) {
                    first_error = Some((pos, b, e));
                }
            }
        }
        if let Some((_, _, e)) = first_error {
            return Err(e);
        }

        resolve_scans(&mut self.leaves, batch, &mut self.scan_scratch);

        // Serial replay: walk the records in the canonical round-robin
        // bucket order, so shared consumer-side resources (the Tree buffer
        // above all) see the same mixed access stream the hardware does —
        // and the stream is identical at any worker count. A split
        // bucket's route table maps each bucket position back to the
        // sub-shard that recorded it.
        consumer.batch_start(&BatchEvent { index: batch_idx, bucket_sizes: &self.bucket_sizes });
        self.stats.batches += 1;
        self.shortcut_writers.clear();
        for round in 0..self.combined.max_bucket_len() {
            for g in &self.groups {
                let (leaf, rec_idx) = if g.subs == 1 {
                    (g.start, round)
                } else {
                    match g.route.get(round) {
                        Some(&(sub, idx)) => (g.start + sub as usize, idx as usize),
                        None => continue,
                    }
                };
                let shard = &self.leaves[leaf];
                let Some(record) = shard.records.get(rec_idx) else { continue };
                let op = &batch[record.op_index as usize];
                self.stats.ops += 1;
                if op.kind.is_write() {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                self.stats.per_op_locks += u64::from(record.locks);
                if record.generated {
                    // Cross-SOU hash-bucket collisions on the shared
                    // off-chip Shortcut_Table, counted over the canonical
                    // interleaved order. Sub-shards of one bucket share an
                    // SOU, so they never collide with each other.
                    let hb = u64::from(record.hash_bucket);
                    if let Some(&writer) = self.shortcut_writers.get(&hb) {
                        if writer != g.bucket {
                            self.stats.shortcut_hash_collisions += 1;
                        }
                    }
                    self.shortcut_writers.insert(hb, g.bucket);
                }
                self.stats.answer_digest = fold_digest(self.stats.answer_digest, record.answer);
                let visits = &shard.visit_arena[record.visits_start as usize
                    ..(record.visits_start + record.visits_len) as usize];
                consumer.op(&CttOpEvent {
                    batch: batch_idx,
                    op_index: record.op_index,
                    bucket: g.bucket,
                    kind: op.kind,
                    key_id: record.key_id,
                    shortcut_hit: record.shortcut_hit,
                    visits,
                    matches: record.matches,
                    bucket_ops: self.bucket_sizes[g.bucket],
                    generated_shortcut: record.generated,
                    answer: record.answer,
                    value: record.value,
                });
            }
        }

        // Trigger_Operation: one lock per (bucket, target) group, emitted
        // in bucket order (sub-shards in sub order within their bucket)
        // and first-write order within a leaf.
        for g in &self.groups {
            for shard in &self.leaves[g.start..g.start + g.subs] {
                for &(node, size) in &shard.write_targets {
                    self.stats.lock_groups += 1;
                    consumer.lock_group(&LockGroup {
                        batch: batch_idx,
                        bucket: g.bucket,
                        node,
                        size,
                    });
                }
            }
        }
        consumer.batch_end(batch_idx);
        Ok(())
    }

    /// The cumulative answer digest after every batch executed so far —
    /// what a checkpoint written *now* must record.
    pub fn answer_digest(&self) -> u64 {
        self.stats.answer_digest
    }

    /// Batches executed so far.
    pub fn batches_executed(&self) -> u64 {
        self.stats.batches
    }

    /// The running stats. Per-batch counters (ops, locks, digest) are
    /// current; the shortcut/traverse totals folded in from live shards at
    /// [`finish`](CttSession::finish) are *not* yet included.
    pub fn stats_so_far(&self) -> &CttStats {
        &self.stats
    }

    /// Merges the live shard subtrees into one logical tree *without*
    /// ending the session — the checkpoint path: snapshot the tree, keep
    /// serving.
    ///
    /// # Errors
    ///
    /// [`DcartError::Art`] if the merged key set violates the prefix-free
    /// invariant (cannot happen for key sets the shards accepted).
    pub fn tree(&self) -> Result<Art<u64>, DcartError> {
        merge_shard_trees(&self.leaves)
    }

    /// Ends the session: folds the per-shard traverse/shortcut counters
    /// into the stats, builds the per-bucket load report, and merges the
    /// final tree.
    ///
    /// # Errors
    ///
    /// [`DcartError::Art`] if the final merge fails (cannot happen for key
    /// sets the shards accepted).
    pub fn finish(self) -> Result<(Art<u64>, CttStats, LoadReport), DcartError> {
        let CttSession { mut stats, leaves, groups, pool_stats, .. } = self;
        let mut load = LoadReport {
            buckets: Vec::with_capacity(groups.len()),
            steal_events: pool_stats.steal_events(),
            shards_stolen: pool_stats.items_stolen(),
        };
        for g in &groups {
            // The Traverse counters live on the shard (the shortcut table
            // never sees traversals); splice them into each live leaf's
            // stats, then add what past splits/merges already retired, so
            // the run-level sum survives the shard turnover.
            let mut live_visited = 0u64;
            for shard in &leaves[g.start..g.start + g.subs] {
                let mut shard_stats = shard.shortcuts.stats();
                shard_stats.nodes_visited = shard.nodes_visited;
                shard_stats.ops_advanced = shard.ops_advanced;
                stats.shortcut.accumulate(&shard_stats);
                stats.shortcut_disables += shard.disables;
                live_visited += shard.nodes_visited;
            }
            stats.shortcut.accumulate(&g.retired);
            stats.shortcut_disables += g.retired_disables;
            stats.shard_splits += g.splits;
            stats.shard_merges += g.merges;
            load.buckets.push(BucketLoad {
                bucket: g.bucket,
                ops: g.ops_routed,
                nodes_visited: g.retired.nodes_visited + live_visited,
                splits: g.splits,
                merges: g.merges,
                subs_at_end: g.subs,
            });
        }
        let art = merge_shard_trees(&leaves)?;
        Ok((art, stats, load))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

    #[derive(Default)]
    struct Collector {
        ops: u64,
        hits: u64,
        visits: u64,
        groups: u64,
        group_ops: u64,
        batches: Vec<usize>,
    }

    impl CttConsumer for Collector {
        fn op(&mut self, ev: &CttOpEvent<'_>) {
            self.ops += 1;
            self.visits += ev.visits.len() as u64;
            if ev.shortcut_hit {
                self.hits += 1;
                assert!(
                    ev.visits.len() <= 1,
                    "shortcut hit fetches at most the target (0 if a combined op already did)"
                );
                assert_eq!(ev.matches, ev.visits.len() as u64);
            }
        }

        fn lock_group(&mut self, group: &LockGroup) {
            self.groups += 1;
            self.group_ops += u64::from(group.size);
        }

        fn batch_end(&mut self, index: usize) {
            self.batches.push(index);
        }
    }

    fn run(mix: Mix, shortcuts: bool) -> (CttStats, Collector) {
        let keys = Workload::Ipgeo.generate(5_000, 1);
        let ops = generate_ops(&keys, &OpStreamConfig { count: 20_000, mix, ..Default::default() });
        let cfg = DcartConfig { shortcuts_enabled: shortcuts, ..Default::default() };
        let mut c = Collector::default();
        let (_, stats) = execute_ctt(&keys, &ops, &cfg, 4096, &mut c);
        (stats, c)
    }

    #[test]
    fn empty_op_stream_loads_keys_and_emits_no_events() {
        // `ops.chunks(batch_size)` over an empty slice yields zero batches;
        // the executor must still bulk-load the key set and report clean
        // zeroed stats rather than tripping over the missing batches.
        let keys = Workload::Ipgeo.generate(500, 9);
        let cfg = DcartConfig::default();
        let mut c = Collector::default();
        let (art, stats) = execute_ctt(&keys, &[], &cfg, 4096, &mut c);
        assert_eq!(art.len(), 500, "bulk load runs even with no operations");
        assert_eq!(stats.ops, 0);
        assert_eq!(stats.lock_groups, 0);
        assert_eq!(stats.shortcut.hits, 0);
        assert_eq!(c.ops, 0);
        assert!(c.batches.is_empty(), "no batches for an empty stream");
    }

    #[test]
    fn single_op_stream_forms_one_batch() {
        let keys = Workload::Ipgeo.generate(500, 9);
        let op = Op { kind: OpKind::Read, key: keys.keys[0].clone(), value: 0 };
        let cfg = DcartConfig::default();
        let mut c = Collector::default();
        let (_, stats) = execute_ctt(&keys, std::slice::from_ref(&op), &cfg, 4096, &mut c);
        assert_eq!(stats.ops, 1);
        assert_eq!(c.ops, 1);
        assert_eq!(c.batches, vec![0], "one partial batch, index 0");
        assert!(c.visits >= 1, "the read fetches at least one node");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let keys = Workload::Ipgeo.generate(100, 9);
        let cfg = DcartConfig::default();
        let _ = execute_ctt(&keys, &[], &cfg, 0, &mut Collector::default());
    }

    #[test]
    fn shortcuts_absorb_hot_reads() {
        let (stats, c) = run(Mix::A, true);
        assert_eq!(stats.ops, 20_000);
        let hit_ratio = stats.shortcut.hits as f64 / stats.ops as f64;
        assert!(hit_ratio > 0.5, "hot Zipfian reads should mostly hit: {hit_ratio}");
        assert_eq!(c.hits, stats.shortcut.hits);
    }

    #[test]
    fn disabling_shortcuts_forces_traversals() {
        let (with, cw) = run(Mix::C, true);
        let (without, co) = run(Mix::C, false);
        assert_eq!(without.shortcut.hits, 0);
        assert!(with.shortcut.hits > 0);
        assert!(cw.visits < co.visits, "shortcuts must cut node fetches");
    }

    #[test]
    fn coalescing_reduces_lock_count() {
        let (stats, c) = run(Mix::E, true);
        assert!(
            stats.lock_groups < stats.per_op_locks,
            "groups {} must be fewer than per-op locks {}",
            stats.lock_groups,
            stats.per_op_locks
        );
        // Every write is covered by at least one group membership (writes
        // with structural locks join one group per locked node).
        assert!(c.group_ops >= stats.writes);
    }

    #[test]
    fn results_match_operation_centric_execution() {
        // The CTT-executed tree must end in the same state as a plain
        // sequential execution (coalescing is an execution strategy, not a
        // semantic change).
        let keys = Workload::DenseInt.generate(2_000, 2);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 10_000, mix: Mix::C, ..Default::default() },
        );
        let mut c = Collector::default();
        let (ctt_tree, _) = execute_ctt(&keys, &ops, &DcartConfig::default(), 1024, &mut c);
        let plain = dcart_baselines::execute_with_traces(&keys, &ops, |_| {});
        assert_eq!(ctt_tree.len(), plain.len());
        let a: Vec<_> = ctt_tree.iter().map(|(k, _)| k.clone()).collect();
        let b: Vec<_> = plain.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(a, b, "same keys in same order");
    }

    #[test]
    fn batches_are_sequential() {
        let (_, c) = run(Mix::C, true);
        assert_eq!(c.batches, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn try_variant_returns_typed_errors() {
        use crate::error::DcartError;
        let keys = Workload::Ipgeo.generate(100, 9);
        let cfg = DcartConfig::default();
        let err = try_execute_ctt(&keys, &[], &cfg, 0, &mut Collector::default()).unwrap_err();
        assert!(matches!(err, DcartError::InvalidBatchSize), "{err}");
    }

    /// Folds every observable of the event stream into one digest, so two
    /// runs can be compared event-for-event without storing the streams.
    #[derive(Default)]
    struct StreamDigest {
        h: u64,
    }

    impl CttConsumer for StreamDigest {
        fn batch_start(&mut self, ev: &BatchEvent<'_>) {
            self.h = fold_digest(self.h, ev.index as u64);
            for &s in ev.bucket_sizes {
                self.h = fold_digest(self.h, u64::from(s));
            }
        }

        fn op(&mut self, ev: &CttOpEvent<'_>) {
            self.h = fold_digest(self.h, ev.bucket as u64);
            self.h = fold_digest(self.h, ev.key_id);
            self.h = fold_digest(self.h, u64::from(ev.shortcut_hit));
            self.h = fold_digest(self.h, ev.matches);
            self.h = fold_digest(self.h, ev.answer);
            for v in ev.visits {
                self.h = fold_digest(self.h, u64::from(v.node.index()));
                self.h = fold_digest(self.h, u64::from(v.footprint));
            }
        }

        fn lock_group(&mut self, group: &LockGroup) {
            self.h = fold_digest(self.h, u64::from(group.node.index()));
            self.h = fold_digest(self.h, u64::from(group.size));
        }

        fn batch_end(&mut self, index: usize) {
            self.h = fold_digest(self.h, !(index as u64));
        }
    }

    #[test]
    fn thread_counts_are_observationally_identical() {
        // The tentpole invariant: stats, tree, and the full event stream
        // must not depend on the worker count. Mix E exercises scans and
        // writes, the two paths with the most cross-bucket machinery.
        let keys = Workload::Ipgeo.generate(3_000, 5);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 12_000, mix: Mix::E, ..Default::default() },
        );
        let cfg = DcartConfig::default().with_auto_prefix_skip(&keys);
        let mut runs = [1usize, 2, 8].map(|threads| {
            let mut d = StreamDigest::default();
            let (tree, stats) = execute_ctt_threaded(&keys, &ops, &cfg, 1024, threads, &mut d);
            let pairs: Vec<(Key, u64)> = tree.iter().map(|(k, &v)| (k.clone(), v)).collect();
            (format!("{stats:?}"), d.h, pairs)
        });
        let (base_stats, base_digest, base_pairs) = runs[0].clone();
        assert!(base_digest != 0, "stream digest actually folded events");
        for (stats, digest, pairs) in runs.iter_mut().skip(1) {
            assert_eq!(*stats, base_stats, "stats identical across thread counts");
            assert_eq!(*digest, base_digest, "event stream identical across thread counts");
            assert_eq!(*pairs, base_pairs, "final tree identical across thread counts");
        }
    }

    /// The tentpole equivalence: level-wise and per-op Traverse must be
    /// observationally identical — full event stream, stats (modulo the
    /// node-load counter that is *supposed* to drop), final tree — across
    /// workload shapes, fault plans, and worker counts.
    #[test]
    fn traverse_modes_are_observationally_identical() {
        let chaos = FaultPlan { seed: 42, shortcut_corrupt_rate: 0.05, ..FaultPlan::none() };
        for workload in [Workload::Ipgeo, Workload::Dict, Workload::DenseInt] {
            let keys = workload.generate(2_000, 5);
            let ops = generate_ops(
                &keys,
                &OpStreamConfig { count: 8_000, mix: Mix::E, ..Default::default() },
            );
            for faults in [FaultPlan::none(), chaos] {
                let cfg =
                    DcartConfig { faults, ..DcartConfig::default() }.with_auto_prefix_skip(&keys);
                for threads in [1usize, 2, 8] {
                    let mut results = [TraverseMode::LevelWise, TraverseMode::PerOp].map(|mode| {
                        let mut d = StreamDigest::default();
                        let (tree, mut stats) =
                            execute_ctt_with(&keys, &ops, &cfg, 1024, threads, mode, &mut d);
                        let loads = stats.shortcut.nodes_visited;
                        // The node-load counter is the one sanctioned
                        // difference; everything else must match exactly.
                        stats.shortcut.nodes_visited = 0;
                        let pairs: Vec<(Key, u64)> =
                            tree.iter().map(|(k, &v)| (k.clone(), v)).collect();
                        (format!("{stats:?}"), d.h, pairs, loads)
                    });
                    let (per_op_stats, per_op_digest, per_op_pairs, per_op_loads) =
                        std::mem::take(&mut results[1]);
                    let (lw_stats, lw_digest, lw_pairs, lw_loads) = std::mem::take(&mut results[0]);
                    let ctx = format!("workload={workload:?} threads={threads}");
                    assert_eq!(lw_stats, per_op_stats, "stats identical: {ctx}");
                    assert_eq!(lw_digest, per_op_digest, "event stream identical: {ctx}");
                    assert_eq!(lw_pairs, per_op_pairs, "final tree identical: {ctx}");
                    assert!(
                        lw_loads <= per_op_loads,
                        "wave grouping never loads more: {lw_loads} > {per_op_loads} ({ctx})"
                    );
                }
            }
        }
    }

    /// The counters the level-wise win is reported through: per-op mode
    /// loads once per advancement step; level-wise strictly fewer on a
    /// read-heavy skewed workload.
    #[test]
    fn level_wise_reduces_node_loads_on_skewed_reads() {
        let keys = Workload::Ipgeo.generate(5_000, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 20_000, mix: Mix::A, ..Default::default() },
        );
        // Shortcuts off so every read traverses (isolates the Traverse
        // stage, as the bench cells do).
        let cfg = DcartConfig { shortcuts_enabled: false, ..DcartConfig::default() };
        let run = |mode| {
            let (_, stats) =
                execute_ctt_with(&keys, &ops, &cfg, 4096, 1, mode, &mut Collector::default());
            stats.shortcut
        };
        let per_op = run(TraverseMode::PerOp);
        let lw = run(TraverseMode::LevelWise);
        assert_eq!(per_op.nodes_visited, per_op.ops_advanced, "per-op: loads == steps");
        assert_eq!(lw.ops_advanced, per_op.ops_advanced, "advancement is mode-independent");
        assert!(
            lw.nodes_visited * 2 < lw.ops_advanced,
            "Zipfian reads must share most wave loads: {} loads for {} steps",
            lw.nodes_visited,
            lw.ops_advanced
        );
    }

    fn digests(mix: Mix, cfg: DcartConfig) -> (CttStats, Vec<(Key, u64)>) {
        let keys = Workload::Ipgeo.generate(5_000, 1);
        let ops = generate_ops(&keys, &OpStreamConfig { count: 20_000, mix, ..Default::default() });
        let (tree, stats) = execute_ctt(&keys, &ops, &cfg, 4096, &mut Collector::default());
        (stats, tree.iter().map(|(k, &v)| (k.clone(), v)).collect())
    }

    #[test]
    fn corruption_faults_never_change_answers() {
        use dcart_engine::FaultPlan;
        let clean_cfg = DcartConfig::default();
        let mut faulty_cfg = clean_cfg;
        faulty_cfg.faults =
            FaultPlan { seed: 42, shortcut_corrupt_rate: 0.05, ..FaultPlan::none() };
        let (clean, clean_tree) = digests(Mix::E, clean_cfg);
        let (faulty, faulty_tree) = digests(Mix::E, faulty_cfg);
        assert_eq!(clean.answer_digest, faulty.answer_digest, "answers bit-identical");
        assert_eq!(clean_tree, faulty_tree, "final tree contents identical");
        assert_eq!(clean.shortcut.corruptions_injected, 0);
        assert!(faulty.shortcut.corruptions_injected > 0, "{:?}", faulty.shortcut);
        assert!(faulty.shortcut.corruption_fallbacks > 0, "validate-then-fallback fired");
        assert!(faulty.shortcut.hits < clean.shortcut.hits, "corruption costs hits, never answers");
    }

    #[test]
    fn heavy_corruption_trips_the_degradation_controller() {
        use dcart_engine::FaultPlan;
        let clean_cfg = DcartConfig::default();
        let mut faulty_cfg = clean_cfg;
        faulty_cfg.faults = FaultPlan { seed: 7, shortcut_corrupt_rate: 0.6, ..FaultPlan::none() };
        faulty_cfg.degrade.shortcut_stale_threshold = 0.3;
        faulty_cfg.degrade.window = 128;
        let (clean, clean_tree) = digests(Mix::C, clean_cfg);
        let (faulty, faulty_tree) = digests(Mix::C, faulty_cfg);
        // Sticky per-bucket latches: at least one shard trips, none more
        // than once.
        assert!(faulty.shortcut_disables >= 1, "at least one shard latches");
        assert!(
            faulty.shortcut_disables <= DcartConfig::default().buckets() as u64,
            "at most one latch per bucket: {}",
            faulty.shortcut_disables
        );
        assert_eq!(clean.answer_digest, faulty.answer_digest, "degraded mode stays correct");
        assert_eq!(clean_tree, faulty_tree);
        assert_eq!(clean.shortcut_disables, 0);
    }

    #[test]
    fn fault_free_runs_never_degrade() {
        let (stats, _) = digests(Mix::E, DcartConfig::default());
        assert_eq!(stats.shortcut_disables, 0);
        assert_eq!(stats.shortcut.corruptions_injected, 0);
        assert_eq!(stats.shortcut.corruption_fallbacks, 0);
    }

    #[test]
    fn sub_zero_namespace_matches_the_unsplit_layout() {
        // Default (never-split) runs must keep their exact historical node
        // ids: sub 0 reproduces the pre-split `bucket << 24` packing.
        let node = NodeId::from_index(12_345);
        assert_eq!(namespaced(9, 0, node).index(), (9 << SHARD_NODE_BITS) | 12_345);
        // And the full (bucket, sub) grid never aliases.
        let mut seen = std::collections::HashSet::new();
        for sub in 0..SPLIT_FANOUT {
            for bucket in 0..MAX_SPLIT_BUCKETS {
                assert!(seen.insert(namespaced(bucket, sub, node).index()), "{bucket}/{sub}");
            }
        }
    }

    #[test]
    fn aggressive_splitting_preserves_answers_and_tree() {
        // Sub-shards partition each bucket's key space, so splitting is an
        // execution strategy: answers and the final tree must match the
        // never-split run exactly, for any threshold.
        let keys = Workload::Ipgeo.generate(3_000, 5);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 12_000, mix: Mix::E, ..Default::default() },
        );
        let base = DcartConfig::default().with_auto_prefix_skip(&keys);
        let run = |threshold: f64| {
            let cfg = DcartConfig { split_threshold: Some(threshold), ..base };
            let opts = ExecOpts { threads: 1, mode: TraverseMode::LevelWise, steal: false };
            let (tree, stats, load) =
                try_execute_ctt_profiled(&keys, &ops, &cfg, 1024, &opts, &mut Collector::default())
                    .expect("runs clean");
            (tree_digest(&tree), stats, load)
        };
        let (never_tree, never_stats, never_load) = run(1.0);
        let (split_tree, split_stats, split_load) = run(0.02);
        assert_eq!(never_stats.shard_splits, 0, "threshold 1.0 never splits");
        assert!(split_stats.shard_splits > 0, "aggressive threshold splits: {split_load:?}");
        assert_eq!(split_tree, never_tree, "final tree split-invariant");
        assert_eq!(split_stats.answer_digest, never_stats.answer_digest, "answers split-invariant");
        assert_eq!(split_stats.ops, never_stats.ops);
        // The deterministic half of the load report is threshold-independent.
        let ops_of = |load: &LoadReport| load.buckets.iter().map(|b| b.ops).collect::<Vec<_>>();
        assert_eq!(ops_of(&split_load), ops_of(&never_load), "routing histogram identical");
    }

    #[test]
    fn hot_buckets_split_then_remerge_after_cooling() {
        let keys = Workload::Ipgeo.generate(2_000, 3);
        let hot = keys.keys[0].clone();
        // Two all-hot batches (one bucket takes everything), then four
        // spread batches that let the bucket cool past MERGE_PATIENCE.
        let mut ops: Vec<Op> = Vec::new();
        for _ in 0..512 {
            ops.push(Op { kind: OpKind::Read, key: hot.clone(), value: 0 });
        }
        for i in 0..1024 {
            let key = keys.keys[i % keys.keys.len()].clone();
            ops.push(Op { kind: OpKind::Read, key, value: 0 });
        }
        let cfg = DcartConfig { split_threshold: Some(0.5), ..DcartConfig::default() }
            .with_auto_prefix_skip(&keys);
        let opts = ExecOpts { threads: 2, mode: TraverseMode::LevelWise, steal: true };
        let (_, stats, load) =
            try_execute_ctt_profiled(&keys, &ops, &cfg, 256, &opts, &mut Collector::default())
                .expect("runs clean");
        assert!(stats.shard_splits >= 1, "hot bucket split: {load:?}");
        assert!(stats.shard_merges >= 1, "cooled bucket re-merged: {load:?}");
        let hottest = load.buckets.iter().max_by_key(|b| b.ops).expect("non-empty");
        assert!(hottest.splits >= 1, "the hottest bucket is the one that split");
        assert_eq!(hottest.subs_at_end, 1, "merged back to one leaf by run end");
    }

    #[test]
    fn splitting_runs_are_identical_across_threads_and_stealing() {
        // The tentpole invariant at full strength: with an aggressive split
        // threshold, stats, the event stream, and the final tree must be
        // byte-identical across worker counts and steal settings — the
        // split schedule reads op counts, never the schedule.
        let keys = Workload::Ipgeo.generate(3_000, 5);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 12_000, mix: Mix::E, ..Default::default() },
        );
        let cfg = DcartConfig { split_threshold: Some(0.05), ..DcartConfig::default() }
            .with_auto_prefix_skip(&keys);
        let mut runs =
            [(1usize, false), (2, false), (2, true), (8, true)].map(|(threads, steal)| {
                let mut d = StreamDigest::default();
                let opts = ExecOpts { threads, mode: TraverseMode::LevelWise, steal };
                let (tree, stats, load) =
                    try_execute_ctt_profiled(&keys, &ops, &cfg, 1024, &opts, &mut d)
                        .expect("runs clean");
                assert!(stats.shard_splits > 0, "the aggressive threshold actually splits");
                if !steal {
                    assert_eq!(load.steal_events, 0, "no steals with stealing off");
                }
                (format!("{stats:?}"), d.h, tree_digest(&tree))
            });
        let (base_stats, base_digest, base_tree) = std::mem::take(&mut runs[0]);
        assert!(base_digest != 0, "stream digest actually folded events");
        for (stats, digest, tree) in runs.iter().skip(1) {
            assert_eq!(*stats, base_stats, "stats identical across threads × stealing");
            assert_eq!(*digest, base_digest, "event stream identical across threads × stealing");
            assert_eq!(*tree, base_tree, "final tree identical across threads × stealing");
        }
    }
}
