//! Platform energy models (paper Fig. 11).
//!
//! The paper measures energy with platform power meters (CPU Energy Meter,
//! `nvidia-smi`, `xbutil`), i.e. *power × runtime* plus whatever dynamic
//! activity the meter integrates. This module mirrors that: each platform
//! has an average active power draw, plus small dynamic per-access terms for
//! off-chip and on-chip traffic.
//!
//! The default power figures are calibrated so the *ratios* between
//! platforms sit where the paper's reported energy-saving-to-speedup ratios
//! put them (CPU/FPGA ≈ 2.5–3.4×, GPU/FPGA ≈ 3.4–4.0×): package power of a
//! busy dual-Xeon on a memory-bound index workload, an A100 under partial
//! load, and an Alveo U280 board.

use serde::{Deserialize, Serialize};

/// Energy-model parameters for one platform.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Average active power draw while the workload runs, in watts.
    pub active_power_w: f64,
    /// Dynamic energy per off-chip byte transferred, in nanojoules.
    pub offchip_nj_per_byte: f64,
    /// Dynamic energy per on-chip buffer/cache access, in nanojoules.
    pub onchip_nj_per_access: f64,
}

impl EnergyModel {
    /// Dual-socket Xeon Platinum 8468 running a memory-bound index
    /// workload (package + DRAM power integrated by CPU Energy Meter).
    pub fn cpu_xeon() -> Self {
        EnergyModel { active_power_w: 180.0, offchip_nj_per_byte: 0.15, onchip_nj_per_access: 0.5 }
    }

    /// NVIDIA A100 under the partial utilization a pointer-chasing index
    /// workload achieves (`nvidia-smi` board power).
    pub fn gpu_a100() -> Self {
        EnergyModel { active_power_w: 205.0, offchip_nj_per_byte: 0.06, onchip_nj_per_access: 0.2 }
    }

    /// Xilinx Alveo U280 board power as reported by `xbutil`.
    pub fn fpga_u280() -> Self {
        EnergyModel { active_power_w: 55.0, offchip_nj_per_byte: 0.04, onchip_nj_per_access: 0.05 }
    }

    /// Energy in joules for a run of `time_s` seconds that moved
    /// `offchip_bytes` across the memory pins and made `onchip_accesses`
    /// buffer/cache accesses.
    pub fn energy_joules(&self, time_s: f64, offchip_bytes: u64, onchip_accesses: u64) -> f64 {
        self.active_power_w * time_s
            + self.offchip_nj_per_byte * offchip_bytes as f64 * 1e-9
            + self.onchip_nj_per_access * onchip_accesses as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_term_dominates_for_long_runs() {
        let m = EnergyModel::cpu_xeon();
        let e = m.energy_joules(10.0, 1 << 30, 1 << 20);
        assert!((e - 1800.0).abs() / 1800.0 < 0.15, "{e}");
    }

    #[test]
    fn platform_power_ordering_matches_paper_ratios() {
        let cpu = EnergyModel::cpu_xeon().active_power_w;
        let gpu = EnergyModel::gpu_a100().active_power_w;
        let fpga = EnergyModel::fpga_u280().active_power_w;
        let cpu_ratio = cpu / fpga;
        let gpu_ratio = gpu / fpga;
        // Paper: energy-saving / speedup ratios fall in these bands.
        assert!((2.5..=3.4).contains(&cpu_ratio), "{cpu_ratio}");
        assert!((3.4..=4.1).contains(&gpu_ratio), "{gpu_ratio}");
    }

    #[test]
    fn dynamic_terms_scale_with_traffic() {
        let m = EnergyModel::fpga_u280();
        let quiet = m.energy_joules(1.0, 0, 0);
        let busy = m.energy_joules(1.0, 10 << 30, 0);
        assert!(busy > quiet);
        assert!((busy - quiet - 0.04 * (10u64 << 30) as f64 * 1e-9).abs() < 1e-9);
    }
}
