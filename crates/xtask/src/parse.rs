//! An item-level parser for the flow-aware analysis pass.
//!
//! Builds on the three-channel [`crate::lexer`]: the tokenizer runs over
//! the *code* channel only (comments and literal contents are already
//! blanked), so every token has a real source span and no token ever comes
//! from a comment or string. The parser recovers just enough structure for
//! the flow rules:
//!
//! * **items** — `fn` definitions (free, `impl`, `trait`, nested), the
//!   surrounding `impl`/`trait` type so method calls can be resolved, and
//!   `use` declarations;
//! * **flow trees** — each function body becomes a tree of [`FlowNode`]s:
//!   statements (the call expressions they evaluate, in source order),
//!   alternatives (`if`/`else if`/`else` chains and `match` arms), scoped
//!   blocks, and loops;
//! * **call expressions** — callee name, `::`-path qualifier, dotted
//!   receiver chain (`self.shared.inbox.lock()` → receiver
//!   `[self, shared, inbox]`, with `[..]` index expressions elided), plus
//!   the single-identifier first argument (for `drop(guard)`).
//!
//! This is deliberately *not* a Rust grammar. Everything the flow rules do
//! with it is conservative name matching; where the parser cannot tell
//! (struct literal vs. block, closure body, macro arguments) it degrades to
//! scanning the region linearly for calls so nothing is silently skipped.

use crate::lexer::LineView;

/// One token from the code channel.
#[derive(Clone, Debug, PartialEq)]
pub struct Tok {
    /// Token text (identifier name, or punctuation like `::`).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Identifier (or keyword) vs. punctuation/number.
    pub is_ident: bool,
}

/// Multi-byte punctuation emitted as single tokens. `::`, `=>` and `->`
/// carry structure; the rest are listed so their component bytes never get
/// mistaken for structural punctuation (`|=` is not a closure pipe, `>>`
/// in an expression is not two generic closers, ...).
const PUNCT2: [&str; 18] = [
    "::", "=>", "->", "||", "&&", "..", "<<", ">>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "^=",
];

/// Tokenizes the code channel of lexed lines.
pub fn tokenize(lines: &[LineView]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (li, l) in lines.iter().enumerate() {
        let b = l.code.as_bytes();
        let mut i = 0usize;
        while i < b.len() {
            let c = b[i];
            if c.is_ascii_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok {
                    text: l.code[start..i].to_string(),
                    line: li + 1,
                    col: start + 1,
                    is_ident: true,
                });
            } else if c.is_ascii_digit() {
                // Numbers are opaque; consume the alphanumeric run so
                // suffixes (`1u64`) and hex (`0xFF`) don't emit idents.
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `0..n` — stop before a range so `..` stays punct.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Tok {
                    text: l.code[start..i].to_string(),
                    line: li + 1,
                    col: start + 1,
                    is_ident: false,
                });
            } else if c == b'\'' {
                // Lifetime tick: swallow the tick and its label.
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            } else {
                let two = if i + 1 < b.len() { &l.code[i..i + 2] } else { "" };
                if PUNCT2.contains(&two) {
                    out.push(Tok {
                        text: two.to_string(),
                        line: li + 1,
                        col: i + 1,
                        is_ident: false,
                    });
                    i += 2;
                } else {
                    out.push(Tok {
                        text: l.code[i..i + 1].to_string(),
                        line: li + 1,
                        col: i + 1,
                        is_ident: false,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

/// A call expression found in a function body.
#[derive(Clone, Debug)]
pub struct CallExpr {
    /// The called name (`lock`, `append_batch`, `ok`, ...).
    pub callee: String,
    /// `::`-path segments before the callee (`Response::ok` → `["Response"]`).
    pub path: Vec<String>,
    /// Dotted receiver chain before a method call
    /// (`self.shared.inbox.lock()` → `["self", "shared", "inbox"]`;
    /// index expressions are elided: `cells[i].lock()` → `["cells"]`).
    pub recv: Vec<String>,
    /// The receiver is the result of an earlier call (`x.lock().unwrap()`:
    /// for `unwrap`, `chained` is true and `recv` is empty).
    pub chained: bool,
    /// Single-identifier first argument, if the argument list is exactly
    /// one identifier (`drop(guard)` → `Some("guard")`).
    pub first_arg: Option<String>,
    /// 1-based line of the callee identifier.
    pub line: usize,
    /// 1-based byte column of the callee identifier.
    pub col: usize,
}

/// One statement's calls, in source order, with the identifiers bound by a
/// leading `let` pattern (lowercase binders only — `Ok`, `Some` and path
/// constructors are filtered).
#[derive(Clone, Debug, Default)]
pub struct Stmt {
    /// Call expressions evaluated by the statement.
    pub calls: Vec<CallExpr>,
    /// Identifiers bound by the statement's `let` pattern.
    pub lets: Vec<String>,
}

/// A node in a function's flow tree.
#[derive(Clone, Debug)]
pub enum FlowNode {
    /// A straight-line statement.
    Stmt(Stmt),
    /// Mutually exclusive branches: an `if`/`else if`/`else` chain (with an
    /// implicit empty branch when there is no `else`) or `match` arms.
    Alt(Vec<Vec<FlowNode>>),
    /// A nested `{ }` scope executed once.
    Block(Vec<FlowNode>),
    /// A `loop`/`while`/`for` body (executed zero or more times; the flow
    /// rules treat each iteration as starting fresh).
    Loop(Vec<FlowNode>),
}

/// A function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name (`impl Trait for X` → `X`).
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body flow tree (empty for bodyless declarations).
    pub body: Vec<FlowNode>,
}

/// A parsed file: its functions and `use` declarations.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// All function items, including nested and trait-default bodies.
    pub fns: Vec<FnItem>,
    /// Raw `use` paths with their 1-based line.
    pub uses: Vec<(String, usize)>,
}

/// Keywords that look like `ident (` but are not calls.
const NOT_CALL: [&str; 26] = [
    "if", "else", "while", "for", "match", "loop", "return", "fn", "let", "mut", "ref", "move",
    "in", "as", "use", "pub", "impl", "trait", "struct", "enum", "mod", "where", "unsafe", "break",
    "continue", "Self",
];

/// Parses tokenized source into items.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut p = Parser { toks, pos: 0 };
    let mut file = ParsedFile::default();
    p.items(&mut file, None);
    file
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn is(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.text == text)
    }

    /// Item-level scan until end of input or a closing `}` (consumed).
    fn items(&mut self, file: &mut ParsedFile, qual: Option<&str>) {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "use" => {
                    let line = t.line;
                    self.pos += 1;
                    let mut path = String::new();
                    while let Some(t) = self.peek() {
                        if t.text == ";" {
                            self.pos += 1;
                            break;
                        }
                        path.push_str(&t.text);
                        self.pos += 1;
                    }
                    file.uses.push((path, line));
                }
                "impl" | "trait" => {
                    self.pos += 1;
                    let q = self.impl_header();
                    if self.is("{") {
                        self.pos += 1;
                        self.items(file, q.as_deref());
                    }
                }
                "mod" => {
                    self.pos += 1;
                    self.bump(); // name
                    if self.is("{") {
                        self.pos += 1;
                        self.items(file, None);
                    } else if self.is(";") {
                        self.pos += 1;
                    }
                }
                "fn" => {
                    self.pos += 1;
                    self.fn_item(file, qual);
                }
                "{" => {
                    // Any other braced item body (enum, static initializer,
                    // ...): recurse so nested `fn`s are still found.
                    self.pos += 1;
                    self.items(file, qual);
                }
                "}" => {
                    self.pos += 1;
                    return;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// After `impl`/`trait`: the implemented-on type name (`impl<T> Foo<T>`
    /// → `Foo`; `impl Trait for X` → `X`; `trait Name` → `Name`).
    fn impl_header(&mut self) -> Option<String> {
        let mut first: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "{" | ";" => break,
                "<" => {
                    self.skip_generics();
                    continue;
                }
                "for" => {
                    saw_for = true;
                    self.pos += 1;
                }
                _ => {
                    if t.is_ident && t.text != "dyn" && t.text != "where" {
                        if saw_for {
                            if after_for.is_none() {
                                after_for = Some(t.text.clone());
                            }
                        } else if first.is_none() {
                            first = Some(t.text.clone());
                        }
                    }
                    self.pos += 1;
                }
            }
        }
        after_for.or(first)
    }

    /// Skips a balanced `<...>` generic group starting at the current `<`.
    fn skip_generics(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "{" | ";" => {
                    // Malformed for our purposes; back off rather than eat
                    // the body.
                    self.pos -= 1;
                    return;
                }
                _ => {}
            }
            if depth <= 0 {
                return;
            }
        }
    }

    /// After the `fn` keyword: name, signature, optional body.
    fn fn_item(&mut self, file: &mut ParsedFile, qual: Option<&str>) {
        let Some(name_tok) = self.peek() else { return };
        if !name_tok.is_ident {
            return;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.pos += 1;
        if self.is("<") {
            self.skip_generics();
        }
        // Parameter list.
        if self.is("(") {
            let mut depth = 0i32;
            while let Some(t) = self.bump() {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                if depth == 0 {
                    break;
                }
            }
        }
        // Return type / where clause, up to `{` or `;` at paren depth 0.
        let mut depth = 0i32;
        let mut body = Vec::new();
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => {
                    self.pos += 1;
                    break;
                }
                "{" if depth <= 0 => {
                    self.pos += 1;
                    body = self.flow(End::Brace, file, qual);
                    break;
                }
                _ => {}
            }
            self.pos += 1;
        }
        file.fns.push(FnItem { name, qual: qual.map(str::to_string), line, body });
    }

    /// Flow-tree scan of a statement region. `End::Brace` consumes the
    /// closing `}`; `End::Arm` stops at a depth-0 `,` (consumed) or `}`
    /// (left for the caller).
    fn flow(&mut self, end: End, file: &mut ParsedFile, qual: Option<&str>) -> Vec<FlowNode> {
        let mut nodes: Vec<FlowNode> = Vec::new();
        let mut stmt = Stmt::default();
        macro_rules! flush {
            () => {
                if !stmt.calls.is_empty() || !stmt.lets.is_empty() {
                    nodes.push(FlowNode::Stmt(std::mem::take(&mut stmt)));
                }
            };
        }
        let mut depth = 0i32; // ( and [ nesting within the region
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" => {
                    depth += 1;
                    self.pos += 1;
                }
                ")" | "]" => {
                    depth -= 1;
                    self.pos += 1;
                }
                ";" => {
                    self.pos += 1;
                    if depth <= 0 {
                        flush!();
                    }
                }
                "," if depth <= 0 && end == End::Arm => {
                    self.pos += 1;
                    flush!();
                    return nodes;
                }
                "}" => {
                    flush!();
                    match end {
                        End::Brace => {
                            self.pos += 1;
                        }
                        End::Arm => {}
                    }
                    return nodes;
                }
                "{" => {
                    self.pos += 1;
                    flush!();
                    nodes.push(FlowNode::Block(self.flow(End::Brace, file, qual)));
                }
                "let" => {
                    self.pos += 1;
                    // Pattern binders up to `=` (or statement end for
                    // `let x;`). Uppercase idents are constructors, not
                    // binders.
                    while let Some(t) = self.peek() {
                        match t.text.as_str() {
                            "=" | ";" | "{" => break,
                            "mut" | "ref" | "_" => {
                                self.pos += 1;
                            }
                            _ => {
                                if t.is_ident
                                    && t.text.chars().next().is_some_and(char::is_lowercase)
                                    && self.peek_at(1).is_none_or(|n| n.text != "::")
                                {
                                    stmt.lets.push(t.text.clone());
                                }
                                self.pos += 1;
                            }
                        }
                    }
                }
                "if" => {
                    self.pos += 1;
                    flush!();
                    nodes.push(self.if_chain(file, qual));
                }
                "match" => {
                    self.pos += 1;
                    let head = self.until_open_brace(file, qual);
                    if !head.calls.is_empty() {
                        nodes.push(FlowNode::Stmt(head));
                    }
                    if self.is("{") {
                        self.pos += 1;
                        nodes.push(self.match_arms(file, qual));
                    }
                }
                "loop" | "while" | "for" => {
                    self.pos += 1;
                    flush!();
                    let head = self.until_open_brace(file, qual);
                    if !head.calls.is_empty() {
                        nodes.push(FlowNode::Stmt(head));
                    }
                    if self.is("{") {
                        self.pos += 1;
                        nodes.push(FlowNode::Loop(self.flow(End::Brace, file, qual)));
                    }
                }
                "fn" => {
                    // Nested function: its body does not flow into ours.
                    self.pos += 1;
                    self.fn_item(file, qual);
                }
                "|" if self.closure_pipe() => {
                    // Closure parameter list: skip to the closing pipe; the
                    // body then flows inline (a `{` body becomes a Block).
                    self.pos += 1;
                    while let Some(t) = self.bump() {
                        if t.text == "|" {
                            break;
                        }
                    }
                }
                "||" if self.closure_pipe() => {
                    self.pos += 1;
                }
                _ => {
                    if t.is_ident
                        && !NOT_CALL.contains(&t.text.as_str())
                        && self.peek_at(1).is_some_and(|n| n.text == "(")
                    {
                        let call = self.call_at(self.pos);
                        stmt.calls.push(call);
                    }
                    self.pos += 1;
                }
            }
        }
        flush!();
        nodes
    }

    /// Is the `|`/`||` at the current position a closure opener? Binary
    /// operators follow a value (identifier, literal, `)`, `]`); closure
    /// pipes follow anything else (`(`, `,`, `=`, `{`, a keyword, ...).
    fn closure_pipe(&self) -> bool {
        match self.pos.checked_sub(1).and_then(|i| self.toks.get(i)) {
            None => true,
            Some(prev) => {
                if prev.is_ident {
                    // `move |x| ...` and keyword positions still open a
                    // closure; a value identifier does not.
                    matches!(prev.text.as_str(), "move" | "return" | "else" | "in")
                } else {
                    !matches!(prev.text.as_str(), ")" | "]" | "}")
                        && !prev.text.chars().next().is_some_and(|c| c.is_ascii_digit())
                }
            }
        }
    }

    /// Scans up to the next `{` at depth 0 (not consumed), collecting any
    /// calls (an `if let` / `while let` / `match` head expression).
    fn until_open_brace(&mut self, file: &mut ParsedFile, _qual: Option<&str>) -> Stmt {
        let _ = file;
        let mut stmt = Stmt::default();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => break,
                "|" if self.closure_pipe() => {
                    self.pos += 1;
                    while let Some(t) = self.bump() {
                        if t.text == "|" {
                            break;
                        }
                    }
                    continue;
                }
                "||" if self.closure_pipe() => {
                    self.pos += 1;
                    continue;
                }
                _ => {
                    if t.is_ident
                        && !NOT_CALL.contains(&t.text.as_str())
                        && self.peek_at(1).is_some_and(|n| n.text == "(")
                    {
                        stmt.calls.push(self.call_at(self.pos));
                    }
                }
            }
            self.pos += 1;
        }
        stmt
    }

    /// `if` chain after the `if` keyword: condition, block, `else if`...,
    /// with an implicit empty branch when there is no final `else`.
    fn if_chain(&mut self, file: &mut ParsedFile, qual: Option<&str>) -> FlowNode {
        let mut branches: Vec<Vec<FlowNode>> = Vec::new();
        loop {
            let cond = self.until_open_brace(file, qual);
            let mut branch = Vec::new();
            if !cond.calls.is_empty() {
                branch.push(FlowNode::Stmt(cond));
            }
            if self.is("{") {
                self.pos += 1;
                branch.extend(self.flow(End::Brace, file, qual));
            }
            branches.push(branch);
            if self.is("else") {
                self.pos += 1;
                if self.is("if") {
                    self.pos += 1;
                    continue;
                }
                if self.is("{") {
                    self.pos += 1;
                    branches.push(self.flow(End::Brace, file, qual));
                }
                break;
            }
            branches.push(Vec::new()); // no else: the skip path
            break;
        }
        FlowNode::Alt(branches)
    }

    /// Match arms after the opening `{`: each `pattern (if guard) => body`
    /// becomes one branch (guard calls flow first).
    fn match_arms(&mut self, file: &mut ParsedFile, qual: Option<&str>) -> FlowNode {
        let mut branches: Vec<Vec<FlowNode>> = Vec::new();
        loop {
            if self.is("}") {
                self.pos += 1;
                break;
            }
            if self.peek().is_none() {
                break;
            }
            // Pattern + optional guard, up to the depth-0 `=>`.
            let mut guard = Stmt::default();
            let mut depth = 0i32;
            let mut saw_arrow = false;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 && t.text == "}" {
                            break; // trailing `}` of the match
                        }
                        depth -= 1;
                    }
                    "=>" if depth <= 0 => {
                        self.pos += 1;
                        saw_arrow = true;
                        break;
                    }
                    "|" | "||" => {} // pattern alternation
                    _ => {
                        // Tuple-struct patterns (`K::B(v)`) look exactly
                        // like calls; constructors are capitalized, so
                        // only lowercase names count (guard calls).
                        if t.is_ident
                            && !NOT_CALL.contains(&t.text.as_str())
                            && t.text.chars().next().is_some_and(char::is_lowercase)
                            && self.peek_at(1).is_some_and(|n| n.text == "(")
                        {
                            guard.calls.push(self.call_at(self.pos));
                        }
                    }
                }
                self.pos += 1;
            }
            if !saw_arrow {
                if self.is("}") {
                    self.pos += 1;
                }
                break;
            }
            let mut branch = Vec::new();
            if !guard.calls.is_empty() {
                branch.push(FlowNode::Stmt(guard));
            }
            if self.is("{") {
                self.pos += 1;
                branch.extend(self.flow(End::Brace, file, qual));
                if self.is(",") {
                    self.pos += 1;
                }
            } else {
                branch.extend(self.flow(End::Arm, file, qual));
            }
            branches.push(branch);
        }
        FlowNode::Alt(branches)
    }

    /// Builds the [`CallExpr`] for the identifier at token index `p`
    /// (`toks[p]` is the callee, `toks[p + 1]` is `(`).
    fn call_at(&self, p: usize) -> CallExpr {
        let t = &self.toks[p];
        let mut call = CallExpr {
            callee: t.text.clone(),
            path: Vec::new(),
            recv: Vec::new(),
            chained: false,
            first_arg: None,
            line: t.line,
            col: t.col,
        };
        // First argument: exactly one identifier.
        if let (Some(a), Some(close)) = (self.toks.get(p + 2), self.toks.get(p + 3)) {
            if a.is_ident && close.text == ")" {
                call.first_arg = Some(a.text.clone());
            }
        }
        let prev = p.checked_sub(1).map(|i| &self.toks[i]);
        match prev.map(|t| t.text.as_str()) {
            Some("::") => {
                // Walk back `Ident ::` pairs.
                let mut j = p - 1;
                while j >= 1 && self.toks[j].text == "::" && self.toks[j - 1].is_ident {
                    call.path.insert(0, self.toks[j - 1].text.clone());
                    if j < 2 {
                        break;
                    }
                    j -= 2;
                }
            }
            Some(".") => {
                // Walk back the dotted receiver chain, eliding `[..]`
                // index groups and `?` try operators.
                let mut j = (p - 1) as isize - 1; // token before the `.`
                while j >= 0 {
                    let t = &self.toks[j as usize];
                    match t.text.as_str() {
                        "?" => j -= 1,
                        "]" => {
                            let mut d = 0i32;
                            while j >= 0 {
                                match self.toks[j as usize].text.as_str() {
                                    "]" => d += 1,
                                    "[" => d -= 1,
                                    _ => {}
                                }
                                j -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                        }
                        ")" => {
                            call.chained = true;
                            break;
                        }
                        _ if t.is_ident => {
                            call.recv.insert(0, t.text.clone());
                            if j >= 1 && self.toks[j as usize - 1].text == "." {
                                j -= 2;
                            } else {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
            }
            _ => {}
        }
        call
    }
}

#[derive(PartialEq, Clone, Copy)]
enum End {
    Brace,
    Arm,
}

/// Convenience: lex + tokenize + parse a source string.
pub fn parse_source(source: &str) -> ParsedFile {
    let lines = crate::lexer::scan(source);
    parse(&tokenize(&lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_calls(nodes: &[FlowNode], out: &mut Vec<String>) {
        for n in nodes {
            match n {
                FlowNode::Stmt(s) => out.extend(s.calls.iter().map(|c| c.callee.clone())),
                FlowNode::Alt(bs) => bs.iter().for_each(|b| flat_calls(b, out)),
                FlowNode::Block(b) | FlowNode::Loop(b) => flat_calls(b, out),
            }
        }
    }

    #[test]
    fn fn_items_and_impl_quals() {
        let f = parse_source(
            "impl Writer { fn commit(&mut self) {} }\n\
             impl Drop for Guard { fn drop(&mut self) {} }\n\
             fn free() {}\n\
             trait T { fn decl(&self); fn dflt(&self) { helper(); } }\n",
        );
        let names: Vec<(String, Option<String>)> =
            f.fns.iter().map(|f| (f.name.clone(), f.qual.clone())).collect();
        assert_eq!(names[0], ("commit".into(), Some("Writer".into())));
        assert_eq!(names[1], ("drop".into(), Some("Guard".into())));
        assert_eq!(names[2], ("free".into(), None));
        assert_eq!(names[3], ("decl".into(), Some("T".into())));
        assert_eq!(names[4], ("dflt".into(), Some("T".into())));
        assert!(f.fns[3].body.is_empty());
    }

    #[test]
    fn receiver_chains_paths_and_indexing() {
        let f = parse_source(
            "fn g(&self) { self.shared.inbox.lock().unwrap_or_else(|e| e.into_inner()); \
             cells[i].lock(); Response::ok(id, v); drop(guard); }\n",
        );
        let mut calls = Vec::new();
        for n in &f.fns[0].body {
            if let FlowNode::Stmt(s) = n {
                calls.extend(s.calls.iter().cloned());
            }
        }
        assert_eq!(calls[0].callee, "lock");
        assert_eq!(calls[0].recv, vec!["self", "shared", "inbox"]);
        assert_eq!(calls[1].callee, "unwrap_or_else");
        assert!(calls[1].chained && calls[1].recv.is_empty());
        assert_eq!(calls[2].callee, "into_inner");
        assert_eq!(calls[2].recv, vec!["e"]);
        assert_eq!(calls[3].recv, vec!["cells"]);
        assert_eq!(calls[4].path, vec!["Response"]);
        assert_eq!(calls[5].first_arg.as_deref(), Some("guard"));
    }

    #[test]
    fn if_chains_become_alternatives() {
        let f =
            parse_source("fn g() { if a() { b(); } else if c() { d(); } else { e(); } f(); }\n");
        let body = &f.fns[0].body;
        let FlowNode::Alt(branches) = &body[0] else { panic!("expected Alt") };
        assert_eq!(branches.len(), 3);
        let mut all = Vec::new();
        flat_calls(body, &mut all);
        assert_eq!(all, vec!["a", "b", "c", "d", "e", "f"]);
    }

    #[test]
    fn if_without_else_has_implicit_skip_branch() {
        let f = parse_source("fn g() { if a() { b(); } }\n");
        let FlowNode::Alt(branches) = &f.fns[0].body[0] else { panic!("expected Alt") };
        assert_eq!(branches.len(), 2);
        assert!(branches[1].is_empty());
    }

    #[test]
    fn match_arms_and_loops() {
        let f = parse_source(
            "fn g(x: K) { match probe(x) { K::A => { a(); } K::B(v) if chk(v) => b(v), _ => {} } \
             loop { body(); } }\n",
        );
        let body = &f.fns[0].body;
        // Scrutinee call, arms, loop.
        let FlowNode::Stmt(s) = &body[0] else { panic!("expected scrutinee Stmt") };
        assert_eq!(s.calls[0].callee, "probe");
        let FlowNode::Alt(arms) = &body[1] else { panic!("expected Alt") };
        assert_eq!(arms.len(), 3);
        let mut armb = Vec::new();
        flat_calls(&arms[1], &mut armb);
        assert_eq!(armb, vec!["chk", "b"]);
        let FlowNode::Loop(lb) = &body[2] else { panic!("expected Loop") };
        let mut loopc = Vec::new();
        flat_calls(lb, &mut loopc);
        assert_eq!(loopc, vec!["body"]);
    }

    #[test]
    fn let_binders_and_let_else() {
        let f = parse_source(
            "fn g() { let Ok(mut cell) = cells[i].lock() else { break }; \
             let (a, b) = pair(); }\n",
        );
        let FlowNode::Stmt(s) = &f.fns[0].body[0] else { panic!("expected Stmt") };
        assert_eq!(s.lets, vec!["cell"]);
        assert_eq!(s.calls[0].callee, "lock");
    }

    #[test]
    fn closures_flow_inline_and_uses_are_recorded() {
        let f = parse_source(
            "use std::sync::Mutex;\n\
             fn g() { items.iter().map(|x| x.run()).collect::<Vec<_>>(); }\n",
        );
        assert_eq!(f.uses[0].0, "std::sync::Mutex");
        let mut all = Vec::new();
        flat_calls(&f.fns[0].body, &mut all);
        assert!(all.contains(&"run".to_string()));
    }

    #[test]
    fn nested_fn_bodies_do_not_flow_into_parent() {
        let f = parse_source("fn outer() { fn inner() { secret(); } visible(); }\n");
        let outer = f.fns.iter().find(|f| f.name == "outer").expect("outer parsed");
        let mut calls = Vec::new();
        flat_calls(&outer.body, &mut calls);
        assert_eq!(calls, vec!["visible"]);
        let inner = f.fns.iter().find(|f| f.name == "inner").expect("inner parsed");
        let mut ic = Vec::new();
        flat_calls(&inner.body, &mut ic);
        assert_eq!(ic, vec!["secret"]);
    }
}
