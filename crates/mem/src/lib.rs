//! # dcart-mem — memory-hierarchy simulation for the DCART reproduction
//!
//! Models the parts of the memory system the paper's analysis and design
//! rest on:
//!
//! * [`SetAssocCache`] — CPU cache with LRU replacement, replayed with the
//!   exact access streams of instrumented ART traversals;
//! * [`ObjectBuffer`] — on-chip BRAM scratchpads with LRU, FIFO, and the
//!   paper's **value-aware** replacement (§III-E);
//! * [`MemoryModel`] — off-chip DDR/HBM latency+bandwidth accounting,
//!   cross-validated by the event-driven [`HbmSim`] channel simulator;
//! * [`LineUtilization`] — the Fig. 2(c) useful-bytes-per-line metric;
//! * [`EnergyModel`] — per-platform power models behind Fig. 11;
//! * [`PersistStats`] — byte accounting for the durability layer (WAL and
//!   checkpoint traffic, set against the on-chip buffer capacities).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod buffer;
mod cache;
mod dram;
mod energy;
mod hbm_sim;
mod line;
mod persist;

pub use buffer::{BufferOutcome, BufferPolicy, BufferStats, ObjectBuffer};
pub use cache::{Access, CacheStats, SetAssocCache, LINE_BYTES};
pub use dram::{MemoryConfig, MemoryModel};
pub use energy::EnergyModel;
pub use hbm_sim::{Completion, HbmSim, HbmSimConfig};
pub use line::LineUtilization;
pub use persist::PersistStats;
