//! `bench` — the wall-clock perf harness.
//!
//! Times the functional executors (CTT, the baseline trace executor, the
//! B+-tree, and the hash index) on the tier-1 workloads and writes
//! `BENCH_ctt.json`, the perf baseline future PRs are compared against.
//!
//! ```text
//! bench [--scale smoke|default|full] [--out DIR] [--jobs N]
//!       [--sou-threads N] [--steal] [--split-threshold F]
//!       [--check-baseline FILE]
//! ```
//!
//! Defaults to the smoke scale (the harness measures the *host*, not the
//! simulated platforms, so a few seconds of signal suffices) and writes
//! into the current directory. With `--check-baseline`, the freshly
//! measured report is compared against a committed baseline and the run
//! fails on a large regression.

use std::path::PathBuf;
use std::process::ExitCode;

use dcart_bench::{perf, Scale};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench [--scale smoke|default|full] [--out DIR] [--jobs N] \
         [--sou-threads N] [--steal] [--split-threshold F] [--check-baseline FILE]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::smoke();
    let mut out_dir = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(name) = args.get(i + 1) else { return usage() };
                let Some(s) = Scale::from_name(name) else {
                    eprintln!("unknown scale: {name}");
                    return usage();
                };
                scale = s;
                i += 2;
            }
            "--out" => {
                let Some(dir) = args.get(i + 1) else { return usage() };
                out_dir = PathBuf::from(dir);
                i += 2;
            }
            "--jobs" => {
                let Some(n) = args.get(i + 1) else { return usage() };
                let Ok(n) = n.parse::<usize>() else {
                    eprintln!("--jobs expects a positive integer, got {n}");
                    return usage();
                };
                dcart_bench::parallel::set_jobs(n);
                i += 2;
            }
            "--sou-threads" => {
                let Some(n) = args.get(i + 1) else { return usage() };
                let Ok(n) = n.parse::<usize>() else {
                    eprintln!("--sou-threads expects a positive integer, got {n}");
                    return usage();
                };
                dcart::set_sou_threads(n);
                i += 2;
            }
            "--steal" => {
                dcart::set_work_stealing(true);
                i += 1;
            }
            "--split-threshold" => {
                let Some(f) = args.get(i + 1) else { return usage() };
                let Ok(f) = f.parse::<f64>() else {
                    eprintln!("--split-threshold expects a number, got {f}");
                    return usage();
                };
                if !(0.0..=1.0).contains(&f) {
                    eprintln!("--split-threshold must be in [0, 1], got {f}");
                    return usage();
                }
                dcart::set_split_threshold(f);
                i += 2;
            }
            "--check-baseline" => {
                let Some(path) = args.get(i + 1) else { return usage() };
                baseline = Some(PathBuf::from(path));
                i += 2;
            }
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
    }

    println!(
        "perf harness | {} keys, {} ops per cell | {} worker(s) | {} SOU thread(s)\n",
        scale.keys,
        scale.ops,
        dcart_bench::parallel::jobs(),
        dcart::sou_threads()
    );
    let t0 = std::time::Instant::now();
    let report = perf::run(&scale, &out_dir);
    println!("done in {:.2} s wall", t0.elapsed().as_secs_f64());
    if let Some(path) = baseline {
        match perf::check_baseline(&report, &path) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("perf regression check failed:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
