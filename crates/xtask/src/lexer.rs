//! A minimal Rust surface lexer for the lint pass.
//!
//! The build environment is offline (no `syn`), so the rules run over a
//! hand-rolled scan that separates each source line into three channels:
//!
//! * **code** — the line with comments removed and string/char-literal
//!   *contents* blanked to spaces (byte-for-byte aligned with the original,
//!   so a match column is a real source column);
//! * **comment** — the text of any comments on the line (where the
//!   `dcart_lint::allow(...)` markers live);
//! * **strings** — the string/byte-string literals that *start* on the
//!   line, with their contents (for the F1 magic-string rule and the
//!   "`expect` carries a message" check).
//!
//! Handled: line and nested block comments, plain/byte strings with
//! escapes, raw strings `r#".."#` at any hash depth, char literals vs.
//! lifetimes. This is not a full lexer — it is exactly enough structure to
//! make identifier-level matching sound (no matches inside comments or
//! literals, no comment markers inside strings confusing the scan).

/// A string or byte-string literal found in the source.
#[derive(Clone, Debug)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: usize,
    /// 1-based byte column of the opening delimiter.
    pub col: usize,
    /// The literal's content (escapes left as written).
    pub text: String,
}

/// One source line, split into the three channels.
#[derive(Clone, Debug, Default)]
pub struct LineView {
    /// Code with comments and literal contents blanked (alignment kept).
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// Literals starting on this line.
    pub strings: Vec<StrLit>,
}

#[derive(PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    /// `hashes` is the raw-string hash depth; `None` means an escaped
    /// (non-raw) string.
    Str {
        hashes: Option<usize>,
    },
}

/// Scans `src` into per-line views. Never fails: unterminated constructs
/// simply run to end-of-file in their current state.
pub fn scan(src: &str) -> Vec<LineView> {
    let b = src.as_bytes();
    let mut lines: Vec<LineView> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut strings: Vec<StrLit> = Vec::new();
    let mut cur_lit = String::new();
    let mut lit_start: Option<(usize, usize)> = None;
    let mut state = State::Normal;
    let (mut line, mut col) = (1usize, 1usize);
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {{
            lines.push(LineView {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                strings: std::mem::take(&mut strings),
            });
        }};
    }

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            // A line comment ends here; everything else continues across
            // the newline in its current state.
            if state == State::LineComment {
                state = State::Normal;
            }
            if let State::Str { .. } = state {
                cur_lit.push('\n');
            }
            flush_line!();
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                } else if c == b'"' {
                    lit_start = Some((line, col));
                    state = State::Str { hashes: None };
                    code.push(' ');
                    col += 1;
                    i += 1;
                } else if (c == b'r' || c == b'b') && !prev_is_ident(b, i) {
                    // Possible raw/byte string prefix: r", r#", br", b", br#".
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = j > i + 1 || hashes > 0;
                    if b.get(j) == Some(&b'"') && (is_raw || c == b'b') {
                        let skip = j + 1 - i;
                        lit_start = Some((line, col));
                        state = State::Str { hashes: if is_raw { Some(hashes) } else { None } };
                        for _ in 0..skip {
                            code.push(' ');
                        }
                        col += skip;
                        i = j + 1;
                    } else {
                        code.push(c as char);
                        col += 1;
                        i += 1;
                    }
                } else if c == b'\'' && !prev_is_ident(b, i) {
                    // Char literal or lifetime.
                    if b.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        if j < b.len() {
                            j += 1; // the escaped byte
                        }
                        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                            j += 1;
                        }
                        let end = (j + 1).min(b.len());
                        for _ in i..end {
                            code.push(' ');
                        }
                        col += end - i;
                        i = end;
                    } else if b.get(i + 2) == Some(&b'\'') {
                        code.push_str("   ");
                        col += 3;
                        i += 3;
                    } else {
                        // A lifetime: keep the tick, scan on.
                        code.push('\'');
                        col += 1;
                        i += 1;
                    }
                } else {
                    // Non-ASCII bytes are replaced so the code channel
                    // stays byte-aligned with the source (one byte, one
                    // column) and safe to slice at any offset.
                    code.push(if c.is_ascii() { c as char } else { '?' });
                    col += 1;
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c as char);
                code.push(' ');
                col += 1;
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                } else {
                    comment.push(c as char);
                    code.push(' ');
                    col += 1;
                    i += 1;
                }
            }
            State::Str { hashes } => {
                let closed = match hashes {
                    None => {
                        if c == b'\\' {
                            cur_lit.push('\\');
                            if let Some(&e) = b.get(i + 1) {
                                if e != b'\n' {
                                    cur_lit.push(e as char);
                                    code.push_str("  ");
                                    col += 2;
                                    i += 2;
                                    continue;
                                }
                            }
                            code.push(' ');
                            col += 1;
                            i += 1;
                            continue;
                        }
                        c == b'"'
                    }
                    Some(n) => {
                        c == b'"' && b[i + 1..].iter().take(n).filter(|&&h| h == b'#').count() == n
                    }
                };
                if closed {
                    let extra = hashes.unwrap_or(0);
                    for _ in 0..=extra {
                        code.push(' ');
                    }
                    col += 1 + extra;
                    i += 1 + extra;
                    let (l0, c0) = lit_start.take().unwrap_or((line, col));
                    let text = std::mem::take(&mut cur_lit);
                    let lit = StrLit { line: l0, col: c0, text };
                    if l0 == line {
                        strings.push(lit);
                    } else if let Some(v) = lines.get_mut(l0 - 1) {
                        v.strings.push(lit);
                    }
                    state = State::Normal;
                } else {
                    cur_lit.push(c as char);
                    code.push(' ');
                    col += 1;
                    i += 1;
                }
            }
        }
    }
    flush_line!();
    lines
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Byte columns (1-based) where `name` appears as a whole identifier in
/// `code`.
pub fn ident_cols(code: &str, name: &str) -> Vec<usize> {
    let cb = code.as_bytes();
    let nb = name.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(cb, nb, from) {
        let before_ok = pos == 0 || !is_ident_byte(cb[pos - 1]);
        let after = pos + nb.len();
        let after_ok = after >= cb.len() || !is_ident_byte(cb[after]);
        if before_ok && after_ok {
            out.push(pos + 1);
        }
        from = pos + 1;
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    (from..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

/// After the identifier ending at byte offset `end0` (0-based), does the
/// code continue (ignoring spaces) with `suffix`?
pub fn followed_by(code: &str, end0: usize, suffix: &str) -> bool {
    let rest: String =
        code[end0.min(code.len())..].chars().filter(|c| !c.is_whitespace()).collect();
    rest.starts_with(suffix)
}

/// Is the last non-space byte before 0-based offset `start0` equal to `c`?
pub fn preceded_by(code: &str, start0: usize, c: char) -> bool {
    code[..start0.min(code.len())].trim_end().ends_with(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let v = scan("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;\n");
        assert!(!v[0].code.contains("HashMap"));
        assert!(v[0].comment.contains("HashMap"));
        assert_eq!(v[0].strings[0].text, "HashMap");
        assert_eq!(ident_cols(&v[1].code, "HashMap"), vec![23]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let v = scan("let m = *b\"DCARTWAL\"; let r = r#\"x \" y\"#; let c = 'a'; let l: &'static str = \"s\";");
        let texts: Vec<&str> = v[0].strings.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["DCARTWAL", "x \" y", "s"]);
        assert!(v[0].code.contains("'static"));
    }

    #[test]
    fn nested_block_comments() {
        let v = scan("a /* one /* two */ still */ b\n");
        assert!(v[0].code.contains('a') && v[0].code.contains('b'));
        assert!(!v[0].code.contains("still"));
    }

    #[test]
    fn multiline_string_attaches_to_start_line() {
        let v = scan("let s = \"first\nsecond\";\nlet t = 1;\n");
        assert_eq!(v[0].strings.len(), 1);
        assert_eq!(v[0].strings[0].text, "first\nsecond");
        assert!(v[1].strings.is_empty());
    }

    #[test]
    fn ident_matching_is_whole_word() {
        assert!(ident_cols("FxHashMap<K, V>", "HashMap").is_empty());
        assert_eq!(ident_cols("HashMap::new()", "HashMap"), vec![1]);
        assert!(followed_by("x.unwrap ()", 9, "()"));
        assert!(preceded_by("x .unwrap()", 3, '.'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let v = scan("let s = \"a\\\"b\"; let x = 1;");
        assert_eq!(v[0].strings[0].text, "a\\\"b");
        assert!(v[0].code.contains("let x = 1"));
    }
}
