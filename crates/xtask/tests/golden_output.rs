//! Golden-output test: pins the exact rendered diagnostics — text and
//! SARIF — for a fixed multi-file fixture analysis. Two properties ride
//! on this: the output is *deterministic* (sorted by file, then span,
//! then rule — scan order and thread scheduling never leak through), and
//! the rendered format is *stable* (editor integrations and the CI SARIF
//! upload both parse it).
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p xtask --test golden_output`

use std::path::Path;

/// The fixed analysis: three bad fixtures at the paths their rules watch,
/// deliberately fed in non-sorted order to prove the output ordering is
/// imposed by the analyzer, not inherited from the input.
fn analysis() -> Vec<xtask::Diagnostic> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let read = |f: &str| std::fs::read_to_string(dir.join(f)).expect("fixture readable");
    let inputs = vec![
        ("crates/server/src/core_loop.rs".to_string(), read("o2_bad.rs")),
        ("crates/engine/src/fixture_under_test.rs".to_string(), read("a1_bad.rs")),
        ("crates/core/src/fixture_under_test.rs".to_string(), read("d1_bad.rs")),
    ];
    xtask::analyze_sources(&inputs)
}

fn check_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, rendered).expect("golden writable");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {} unreadable ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        rendered, expected,
        "rendered {name} drifted from the committed golden; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn text_report_matches_golden() {
    let diags = analysis();
    let text = diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n\n") + "\n";
    check_golden("report.txt", &text);
}

#[test]
fn sarif_report_matches_golden() {
    let diags = analysis();
    let sarif = xtask::sarif::render("dcart-analyze", &diags);
    check_golden("report.sarif", &sarif);
}

#[test]
fn diagnostics_are_sorted_by_file_span_rule() {
    let diags = analysis();
    assert!(!diags.is_empty(), "the fixed fixture set must produce findings");
    let keys: Vec<_> = diags.iter().map(|d| (d.path.clone(), d.line, d.col, d.rule)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics must come out pre-sorted");
}

#[test]
fn analysis_is_deterministic_across_runs() {
    // Same inputs, two independent runs (the second from a differently
    // ordered input list) — byte-identical reports.
    let a = analysis();
    let b = analysis();
    assert_eq!(a, b);
}
