//! `inspect` — structural statistics of the ART a workload builds.
//!
//! ```text
//! inspect [workload] [keys]     # default: all six workloads, 100k keys
//! ```
//!
//! Prints, per workload: node-type histogram (the paper's Fig. 1
//! adaptivity), memory footprint vs a traditional radix tree, depth
//! statistics, and the traversal skew behind Fig. 3.

use dcart_art::{Art, NodeType};
use dcart_bench::Table;
use dcart_workloads::Workload;

fn inspect(workload: Workload, n_keys: usize, t: &mut Table) {
    let keys = workload.generate(n_keys, 42);
    let mut art: Art<u64> = Art::new();
    for (i, k) in keys.keys.iter().enumerate() {
        art.insert(k.clone(), i as u64).expect("workload keys are prefix-free");
    }
    art.assert_invariants();
    let h = art.type_histogram();
    let adaptive_mb = art.memory_footprint() as f64 / 1e6;
    // A traditional radix tree spends an N256 payload on every inner node.
    let traditional_mb = (h.inner_total() as u64 * u64::from(NodeType::N256.payload_bytes())
        + h.leaves as u64 * 32) as f64
        / 1e6;
    t.row(&[
        workload.name().to_string(),
        art.len().to_string(),
        h.n4.to_string(),
        h.n16.to_string(),
        h.n48.to_string(),
        h.n256.to_string(),
        format!("{:.2}", art.mean_depth()),
        format!("{:.1}", adaptive_mb),
        format!("{:.1}", traditional_mb),
        format!("{:.1}x", traditional_mb / adaptive_mb.max(1e-9)),
    ]);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_keys: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let workloads: Vec<Workload> = match args.first().map(String::as_str) {
        None | Some("all") => Workload::ALL.to_vec(),
        Some(name) => match Workload::from_name(name) {
            Some(w) => vec![w],
            None => {
                eprintln!("unknown workload {name}; use IPGEO|DICT|EA|DE|RS|RD|all");
                std::process::exit(1);
            }
        },
    };

    println!("ART structure per workload ({n_keys} keys)\n");
    let mut t = Table::new(&[
        "workload",
        "keys",
        "N4",
        "N16",
        "N48",
        "N256",
        "mean depth",
        "ART MB",
        "radix MB",
        "saving",
    ]);
    for w in workloads {
        inspect(w, n_keys, &mut t);
    }
    t.print();
    println!("\n(adaptive node layouts vs a traditional 256-way radix tree — paper Fig. 1)");
}
