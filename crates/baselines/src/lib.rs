//! # dcart-baselines — baseline engines for the DCART evaluation
//!
//! The comparison systems of the paper (§IV-A), implemented over the shared
//! functional trace executor so every engine costs the *identical* tree and
//! operation stream:
//!
//! * [`CpuBaseline::art`] — ART with ROWEX node locks (Leis et al. '16);
//! * [`CpuBaseline::heart`] — Heart's CAS-based concurrency control;
//! * [`CpuBaseline::smart`] — SMART ported to shared memory: CAS plus a
//!   path cache (as the paper itself re-implements it);
//! * [`CuArt`] — the CuART GPU engine on an A100 model.
//!
//! The [`IndexEngine`] trait and [`RunReport`] are shared with the `dcart`
//! crate, which adds the DCART-C and DCART engines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod cpu;
mod cpu_engines;
mod cuart;
mod engine;
mod exec;
mod path_cache;
mod report;
mod windows;

pub use cpu::{time_cpu_run, CpuActivity, CpuConfig, CpuTiming};
pub use cpu_engines::CpuBaseline;
pub use cuart::{CuArt, GpuConfig};
pub use engine::{IndexEngine, RunConfig};
pub use exec::{execute_with_traces, ExecutedOp};
pub use path_cache::PathCache;
pub use report::{Counters, RunReport, TimeBreakdown};
pub use windows::{ContentionTotals, ContentionWindow, RedundancyWindow};
