//! Window-based concurrency analysis.
//!
//! The paper's concurrency axis is the number of *in-flight* operations
//! (Fig. 2(d), Fig. 12(a) sweep it). We model a batch of `window`
//! consecutive operations as concurrent: two operations in the same window
//! that touch the same node collide. From that single notion both
//! headline inefficiencies fall out:
//!
//! * **redundant traversals** (Fig. 2(b)) — a node visit is redundant if a
//!   concurrent operation already fetched the node;
//! * **lock contention** (Fig. 7) — `k` concurrent write-locks of one node
//!   mean `k − 1` contended acquisitions and a serialization chain of
//!   length `k`.

use std::collections::BTreeMap;

use dcart_art::NodeId;

/// Counts redundant node visits within windows of concurrent operations.
///
/// # Examples
///
/// ```
/// use dcart_art::NodeId;
/// use dcart_baselines::RedundancyWindow;
///
/// let mut w = RedundancyWindow::new(8);
/// let hot = NodeId::from_index(1);
/// w.record_op([hot]);
/// w.record_op([hot]); // same node, same window: redundant
/// assert_eq!(w.redundant_visits, 1);
/// assert_eq!(w.ratio(), 0.5);
/// ```
#[derive(Debug)]
pub struct RedundancyWindow {
    window: usize,
    ops_in_window: usize,
    seen: BTreeMap<NodeId, ()>,
    /// Total node visits observed.
    pub total_visits: u64,
    /// Visits to a node already fetched within the current window.
    pub redundant_visits: u64,
}

impl RedundancyWindow {
    /// Creates an analyzer with `window` concurrent operations.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        RedundancyWindow {
            window,
            ops_in_window: 0,
            seen: BTreeMap::new(),
            total_visits: 0,
            redundant_visits: 0,
        }
    }

    /// Feeds one operation's visited nodes.
    pub fn record_op(&mut self, visits: impl IntoIterator<Item = NodeId>) {
        for node in visits {
            self.total_visits += 1;
            if self.seen.insert(node, ()).is_some() {
                self.redundant_visits += 1;
            }
        }
        self.ops_in_window += 1;
        if self.ops_in_window >= self.window {
            self.seen.clear();
            self.ops_in_window = 0;
        }
    }

    /// Redundancy ratio in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.total_visits == 0 {
            0.0
        } else {
            self.redundant_visits as f64 / self.total_visits as f64
        }
    }
}

/// Per-window lock-collision statistics.
#[derive(Clone, Copy, Default, Debug)]
pub struct ContentionTotals {
    /// Lock acquisitions requested.
    pub acquisitions: u64,
    /// Acquisitions that collided with a concurrent holder.
    pub contentions: u64,
    /// Sum over windows of the longest per-node lock queue — a lower bound
    /// on the serialized critical path, in lock-hold units.
    pub critical_chain: u64,
    /// Number of windows flushed.
    pub windows: u64,
}

/// Counts lock contention within windows of concurrent operations.
///
/// For DCART the same analyzer is fed *coalesced groups* instead of single
/// operations: all operations of a bucket targeting one node acquire a
/// single lock (paper §III-B), so the unit of locking is the group.
///
/// # Examples
///
/// ```
/// use dcart_art::NodeId;
/// use dcart_baselines::ContentionWindow;
///
/// let mut w = ContentionWindow::new(16);
/// let hot = NodeId::from_index(7);
/// w.record_unit([hot]);
/// w.record_unit([hot]); // concurrent write to the same node
/// let (totals, _) = w.finish();
/// assert_eq!(totals.acquisitions, 2);
/// assert_eq!(totals.contentions, 1);
/// ```
#[derive(Debug)]
pub struct ContentionWindow {
    window: usize,
    ops_in_window: usize,
    holders: BTreeMap<NodeId, u64>,
    totals: ContentionTotals,
    /// Longest per-node queue of each flushed window (for P99 latency).
    max_queue_history: Vec<u64>,
}

impl ContentionWindow {
    /// Creates an analyzer with `window` concurrent lock-acquiring units.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        ContentionWindow {
            window,
            ops_in_window: 0,
            holders: BTreeMap::new(),
            totals: ContentionTotals::default(),
            max_queue_history: Vec::new(),
        }
    }

    /// Feeds the lock set of one concurrent unit (an operation, or for
    /// DCART a coalesced group).
    pub fn record_unit(&mut self, locks: impl IntoIterator<Item = NodeId>) {
        for node in locks {
            self.totals.acquisitions += 1;
            let count = self.holders.entry(node).or_insert(0);
            if *count > 0 {
                self.totals.contentions += 1;
            }
            *count += 1;
        }
        self.ops_in_window += 1;
        if self.ops_in_window >= self.window {
            self.flush();
        }
    }

    /// Ends the current window early (e.g. at a batch boundary, for
    /// engines whose concurrency unit is the batch). No-op when empty.
    pub fn end_window(&mut self) {
        if self.ops_in_window > 0 || !self.holders.is_empty() {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let max_queue = self.holders.values().copied().max().unwrap_or(0);
        self.totals.critical_chain += max_queue;
        self.max_queue_history.push(max_queue);
        self.totals.windows += 1;
        self.holders.clear();
        self.ops_in_window = 0;
    }

    /// Flushes any partial window and returns the totals.
    pub fn finish(mut self) -> (ContentionTotals, Vec<u64>) {
        if self.ops_in_window > 0 {
            self.flush();
        }
        (self.totals, self.max_queue_history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn redundancy_within_window_only() {
        let mut r = RedundancyWindow::new(2);
        r.record_op([n(1), n(2)]); // first op: fresh
        r.record_op([n(1), n(3)]); // n1 redundant; window flushes after
        r.record_op([n(1)]); // new window: fresh again
        assert_eq!(r.total_visits, 5);
        assert_eq!(r.redundant_visits, 1);
        assert!((r.ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn hot_node_redundancy_grows_with_window() {
        let visits: Vec<[NodeId; 1]> = (0..100).map(|_| [n(7)]).collect();
        let mut small = RedundancyWindow::new(2);
        let mut large = RedundancyWindow::new(50);
        for v in &visits {
            small.record_op(v.iter().copied());
            large.record_op(v.iter().copied());
        }
        assert!(large.ratio() > small.ratio());
        assert!((small.ratio() - 0.5).abs() < 1e-12);
        assert!((large.ratio() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn contention_counts_collisions() {
        let mut c = ContentionWindow::new(4);
        c.record_unit([n(1)]);
        c.record_unit([n(1)]); // collision
        c.record_unit([n(2)]);
        c.record_unit([n(1)]); // collision; flush (max queue = 3)
        let (totals, history) = c.finish();
        assert_eq!(totals.acquisitions, 4);
        assert_eq!(totals.contentions, 2);
        assert_eq!(totals.critical_chain, 3);
        assert_eq!(history, vec![3]);
    }

    #[test]
    fn grouping_reduces_contention() {
        // 8 ops all locking node 1: operation-centric sees 7 contentions;
        // coalesced into one group (DCART), zero.
        let mut per_op = ContentionWindow::new(8);
        for _ in 0..8 {
            per_op.record_unit([n(1)]);
        }
        let (op_totals, _) = per_op.finish();
        assert_eq!(op_totals.contentions, 7);

        let mut grouped = ContentionWindow::new(8);
        grouped.record_unit([n(1)]); // the single coalesced group
        let (group_totals, _) = grouped.finish();
        assert_eq!(group_totals.contentions, 0);
    }

    #[test]
    fn partial_window_flushes_on_finish() {
        let mut c = ContentionWindow::new(100);
        c.record_unit([n(1)]);
        c.record_unit([n(1)]);
        let (totals, history) = c.finish();
        assert_eq!(totals.windows, 1);
        assert_eq!(history, vec![2]);
    }
}
