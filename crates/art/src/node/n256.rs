//! The 256-way node layout: a direct child-pointer array, as in a
//! traditional radix tree node.

use super::{Node48, NodeId};

const NULL: NodeId = NodeId(u32::MAX);

/// 256-way layout: one pointer slot per possible partial key.
#[derive(Clone, Debug)]
pub struct Node256 {
    children: [NodeId; 256],
    len: u16,
}

impl Default for Node256 {
    fn default() -> Self {
        Node256 { children: [NULL; 256], len: 0 }
    }
}

impl Node256 {
    /// Number of children stored.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Returns `true` if no children are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the child for `byte`.
    pub fn find(&self, byte: u8) -> Option<NodeId> {
        let c = self.children[usize::from(byte)];
        (c != NULL).then_some(c)
    }

    /// Inserts `(byte, child)`. Never full; always returns `true`.
    pub fn add(&mut self, byte: u8, child: NodeId) -> bool {
        debug_assert!(child != NULL);
        debug_assert!(self.children[usize::from(byte)] == NULL);
        self.children[usize::from(byte)] = child;
        self.len += 1;
        true
    }

    /// Replaces the child for `byte`, returning the previous child.
    ///
    /// # Panics
    ///
    /// Panics if `byte` is absent.
    pub fn replace(&mut self, byte: u8, child: NodeId) -> NodeId {
        let slot = &mut self.children[usize::from(byte)];
        assert!(*slot != NULL, "replace of absent partial key");
        std::mem::replace(slot, child)
    }

    /// Removes and returns the child for `byte`.
    pub fn remove(&mut self, byte: u8) -> Option<NodeId> {
        let slot = &mut self.children[usize::from(byte)];
        if *slot == NULL {
            return None;
        }
        self.len -= 1;
        Some(std::mem::replace(slot, NULL))
    }

    /// Copies the children into a fresh [`Node48`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more than 48 children are stored.
    pub fn shrink(&self) -> Node48 {
        debug_assert!(self.len() <= 48);
        let mut n = Node48::default();
        for byte in 0..=255u8 {
            if let Some(child) = self.find(byte) {
                let ok = n.add(byte, child);
                debug_assert!(ok);
            }
        }
        n
    }

    /// Returns the `pos`-th child in ascending byte order.
    pub(super) fn nth_in_order(&self, pos: usize) -> Option<(u8, NodeId)> {
        (0..=255u8).filter_map(|b| self.find(b).map(|c| (b, c))).nth(pos)
    }

    /// Returns the child with the largest partial key.
    pub(super) fn max_child(&self) -> Option<(u8, NodeId)> {
        (0..=255u8).rev().find_map(|b| self.find(b).map(|c| (b, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_fanout() {
        let mut n = Node256::default();
        for b in 0..=255u8 {
            assert!(n.add(b, NodeId(u32::from(b) + 1)));
        }
        assert_eq!(n.len(), 256);
        for b in 0..=255u8 {
            assert_eq!(n.find(b), Some(NodeId(u32::from(b) + 1)));
        }
        assert_eq!(n.max_child(), Some((255, NodeId(256))));
    }

    #[test]
    fn remove_then_find_none() {
        let mut n = Node256::default();
        n.add(42, NodeId(1));
        assert_eq!(n.remove(42), Some(NodeId(1)));
        assert_eq!(n.find(42), None);
        assert_eq!(n.remove(42), None);
        assert!(n.is_empty());
    }
}
