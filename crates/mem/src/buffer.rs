//! On-chip scratchpad buffers holding variable-size objects (ART nodes,
//! shortcut entries, bucket slots).
//!
//! DCART's memory subsystem (paper §III-E, Table I) consists of four BRAM
//! buffers: Scan (512 KB), Bucket (2 MB), Shortcut (128 KB), and Tree
//! (4 MB). The Tree buffer uses a **value-aware** replacement strategy: a
//! node's value is the number of pending operations in its bucket, and a
//! miss only displaces resident nodes when the incoming node's value exceeds
//! the lowest resident value — preventing cache thrashing of high-value
//! (frequently traversed) nodes. The other buffers use LRU.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// Replacement policy of an [`ObjectBuffer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BufferPolicy {
    /// Least-recently-used: hits refresh recency; misses always fill.
    Lru,
    /// First-in-first-out: insertion order decides victims; misses always
    /// fill. Included as an ablation point.
    Fifo,
    /// DCART's value-aware policy (paper §III-E): every object carries a
    /// value; a fill may only evict objects of *strictly lower* value, and
    /// is bypassed (not cached) otherwise.
    ValueAware,
}

/// Outcome of [`ObjectBuffer::request`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BufferOutcome {
    /// Object was resident on chip.
    Hit,
    /// Object was fetched from off-chip memory and cached.
    MissFilled,
    /// Object was fetched from off-chip memory but not cached (value-aware
    /// admission rejected it).
    MissBypassed,
}

impl BufferOutcome {
    /// `true` for either kind of miss.
    pub fn is_miss(self) -> bool {
        !matches!(self, BufferOutcome::Hit)
    }
}

/// Counters for a buffer instance.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BufferStats {
    /// Total object requests.
    pub requests: u64,
    /// Requests served on chip.
    pub hits: u64,
    /// Requests that fetched from off-chip memory.
    pub misses: u64,
    /// Objects displaced to make room.
    pub evictions: u64,
    /// Misses not admitted by the value-aware policy.
    pub bypasses: u64,
    /// Bytes fetched from off-chip memory (all misses).
    pub bytes_fetched: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; `0` when no requests happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    size: u32,
    /// Eviction priority currently registered in `order`.
    priority: (u64, u64),
}

/// A byte-capacity scratchpad holding variable-size objects keyed by id.
///
/// # Examples
///
/// ```
/// use dcart_mem::{BufferOutcome, BufferPolicy, ObjectBuffer};
///
/// let mut buf = ObjectBuffer::new(1024, BufferPolicy::Lru);
/// assert_eq!(buf.request(1, 400, 0), BufferOutcome::MissFilled);
/// assert_eq!(buf.request(1, 400, 0), BufferOutcome::Hit);
/// ```
#[derive(Clone, Debug)]
pub struct ObjectBuffer {
    capacity: u64,
    used: u64,
    policy: BufferPolicy,
    entries: BTreeMap<u64, Entry>,
    /// Eviction order: smallest `(priority, id)` is the next victim.
    order: BTreeSet<(u64, u64)>,
    tick: u64,
    stats: BufferStats,
}

impl ObjectBuffer {
    /// Creates a buffer of `capacity` bytes with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64, policy: BufferPolicy) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        ObjectBuffer {
            capacity,
            used: 0,
            policy,
            entries: BTreeMap::new(),
            order: BTreeSet::new(),
            tick: 0,
            stats: BufferStats::default(),
        }
    }

    /// Requests object `id` of `size` bytes with the given `value`
    /// (ignored except under [`BufferPolicy::ValueAware`]).
    ///
    /// Returns whether the object was resident, filled, or bypassed.
    pub fn request(&mut self, id: u64, size: u32, value: u64) -> BufferOutcome {
        self.tick += 1;
        self.stats.requests += 1;
        if let Some(entry) = self.entries.get_mut(&id) {
            self.stats.hits += 1;
            if self.policy == BufferPolicy::Lru {
                let old = entry.priority;
                entry.priority = (self.tick, id);
                self.order.remove(&old);
                self.order.insert(entry.priority);
            }
            return BufferOutcome::Hit;
        }

        self.stats.misses += 1;
        self.stats.bytes_fetched += u64::from(size);
        if u64::from(size) > self.capacity {
            self.stats.bypasses += 1;
            return BufferOutcome::MissBypassed;
        }

        // Make room, if the policy admits this object.
        while self.used + u64::from(size) > self.capacity {
            let &victim = self.order.iter().next().expect("used > 0 implies entries");
            if self.policy == BufferPolicy::ValueAware && victim.0 >= value {
                // The least valuable resident object is at least as valuable
                // as the newcomer: bypass instead of thrashing (paper §III-E).
                self.stats.bypasses += 1;
                return BufferOutcome::MissBypassed;
            }
            self.evict(victim);
        }

        let priority = match self.policy {
            BufferPolicy::Lru | BufferPolicy::Fifo => (self.tick, id),
            BufferPolicy::ValueAware => (value, id),
        };
        self.entries.insert(id, Entry { size, priority });
        self.order.insert(priority);
        self.used += u64::from(size);
        BufferOutcome::MissFilled
    }

    fn evict(&mut self, victim: (u64, u64)) {
        self.order.remove(&victim);
        let entry = self.entries.remove(&victim.1).expect("order entry without map entry");
        self.used -= u64::from(entry.size);
        self.stats.evictions += 1;
    }

    /// Updates the value of a resident object (no effect under LRU/FIFO, or
    /// if absent). DCART refreshes node values after each combining phase,
    /// when new per-bucket operation counts are known.
    pub fn set_value(&mut self, id: u64, value: u64) {
        if self.policy != BufferPolicy::ValueAware {
            return;
        }
        if let Some(entry) = self.entries.get_mut(&id) {
            let old = entry.priority;
            entry.priority = (value, id);
            self.order.remove(&old);
            self.order.insert(entry.priority);
        }
    }

    /// Removes an object (e.g. a freed tree node), if resident.
    pub fn invalidate(&mut self, id: u64) {
        if let Some(entry) = self.entries.remove(&id) {
            self.order.remove(&entry.priority);
            self.used -= u64::from(entry.size);
        }
    }

    /// Returns `true` if the object is currently resident.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Clears contents but keeps statistics.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used = 0;
    }

    /// An eviction storm (fault injection): every resident object is
    /// displaced at once, as if a conflict burst or SEU scrubbing pass wiped
    /// the BRAM. Unlike [`ObjectBuffer::clear`], the displaced objects are
    /// counted as evictions. Returns how many objects were dropped.
    pub fn storm(&mut self) -> u64 {
        let dropped = self.entries.len() as u64;
        self.stats.evictions += dropped;
        self.entries.clear();
        self.order.clear();
        self.used = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hits_and_eviction_order() {
        let mut buf = ObjectBuffer::new(300, BufferPolicy::Lru);
        assert_eq!(buf.request(1, 100, 0), BufferOutcome::MissFilled);
        assert_eq!(buf.request(2, 100, 0), BufferOutcome::MissFilled);
        assert_eq!(buf.request(3, 100, 0), BufferOutcome::MissFilled);
        assert_eq!(buf.request(1, 100, 0), BufferOutcome::Hit); // refresh 1
        assert_eq!(buf.request(4, 100, 0), BufferOutcome::MissFilled); // evicts 2
        assert!(buf.contains(1));
        assert!(!buf.contains(2));
        assert_eq!(buf.stats().evictions, 1);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut buf = ObjectBuffer::new(200, BufferPolicy::Fifo);
        buf.request(1, 100, 0);
        buf.request(2, 100, 0);
        buf.request(1, 100, 0); // hit, but FIFO does not refresh
        buf.request(3, 100, 0); // evicts 1 (oldest insertion)
        assert!(!buf.contains(1));
        assert!(buf.contains(2));
        assert!(buf.contains(3));
    }

    #[test]
    fn value_aware_protects_high_value_objects() {
        let mut buf = ObjectBuffer::new(200, BufferPolicy::ValueAware);
        assert_eq!(buf.request(1, 100, 50), BufferOutcome::MissFilled);
        assert_eq!(buf.request(2, 100, 40), BufferOutcome::MissFilled);
        // Value 30 < lowest resident (40): bypassed, nothing evicted.
        assert_eq!(buf.request(3, 100, 30), BufferOutcome::MissBypassed);
        assert!(buf.contains(1) && buf.contains(2));
        // Value 60 > lowest resident (40): evicts object 2.
        assert_eq!(buf.request(4, 100, 60), BufferOutcome::MissFilled);
        assert!(!buf.contains(2));
        assert!(buf.contains(1) && buf.contains(4));
        assert_eq!(buf.stats().bypasses, 1);
        assert_eq!(buf.stats().evictions, 1);
    }

    #[test]
    fn value_aware_ties_bypass() {
        let mut buf = ObjectBuffer::new(100, BufferPolicy::ValueAware);
        buf.request(1, 100, 10);
        // Equal value must not thrash (strictly-greater admission).
        assert_eq!(buf.request(2, 100, 10), BufferOutcome::MissBypassed);
        assert!(buf.contains(1));
    }

    #[test]
    fn set_value_reorders_victims() {
        let mut buf = ObjectBuffer::new(200, BufferPolicy::ValueAware);
        buf.request(1, 100, 50);
        buf.request(2, 100, 40);
        buf.set_value(2, 90); // object 2 becomes valuable
        assert_eq!(buf.request(3, 100, 60), BufferOutcome::MissFilled); // evicts 1 now
        assert!(!buf.contains(1));
        assert!(buf.contains(2));
    }

    #[test]
    fn oversized_object_always_bypasses() {
        let mut buf = ObjectBuffer::new(100, BufferPolicy::Lru);
        assert_eq!(buf.request(1, 200, 0), BufferOutcome::MissBypassed);
        assert_eq!(buf.used_bytes(), 0);
    }

    #[test]
    fn invalidate_frees_space() {
        let mut buf = ObjectBuffer::new(100, BufferPolicy::Lru);
        buf.request(1, 100, 0);
        buf.invalidate(1);
        assert_eq!(buf.used_bytes(), 0);
        assert_eq!(buf.request(2, 100, 0), BufferOutcome::MissFilled);
    }

    #[test]
    fn storm_drops_everything_and_counts_evictions() {
        let mut buf = ObjectBuffer::new(300, BufferPolicy::ValueAware);
        buf.request(1, 100, 10);
        buf.request(2, 100, 20);
        assert_eq!(buf.storm(), 2);
        assert_eq!(buf.used_bytes(), 0);
        assert!(!buf.contains(1) && !buf.contains(2));
        assert_eq!(buf.stats().evictions, 2);
        // The buffer keeps working after the storm.
        assert_eq!(buf.request(1, 100, 10), BufferOutcome::MissFilled);
        assert_eq!(buf.request(1, 100, 10), BufferOutcome::Hit);
    }

    #[test]
    fn bytes_fetched_counts_all_misses() {
        let mut buf = ObjectBuffer::new(100, BufferPolicy::Lru);
        buf.request(1, 60, 0);
        buf.request(1, 60, 0); // hit: no fetch
        buf.request(2, 60, 0); // miss with eviction
        buf.request(3, 200, 0); // bypass: still fetched from off-chip
        assert_eq!(buf.stats().bytes_fetched, 60 + 60 + 200);
    }

    #[test]
    fn value_aware_survives_scan_floods_where_lru_thrashes() {
        // The §III-E scenario: a hot working set (high value) interleaved
        // with long one-shot scans (low value). LRU evicts the hot set on
        // every flood; value-aware bypasses the flood entirely.
        let run = |policy: BufferPolicy| {
            let mut buf = ObjectBuffer::new(1_000, policy);
            let mut hot_hits = 0u64;
            let mut cold = 10_000u64;
            for round in 0..200 {
                for hot in 0..10u64 {
                    if buf.request(hot, 100, 500) == BufferOutcome::Hit {
                        hot_hits += 1;
                    }
                }
                if round % 4 == 3 {
                    // A burst of one-shot nodes (an irregular traversal).
                    for _ in 0..50 {
                        cold += 1;
                        buf.request(cold, 100, 1);
                    }
                }
            }
            hot_hits
        };
        let lru = run(BufferPolicy::Lru);
        let va = run(BufferPolicy::ValueAware);
        assert!(va > lru, "value-aware {va} must beat LRU {lru} under floods");
        assert!(va > 1900, "hot set stays resident under value-aware: {va}");
    }

    #[test]
    fn hit_ratio_reflects_skew() {
        // A hot object requested many times amid cold one-shot objects.
        let mut buf = ObjectBuffer::new(500, BufferPolicy::Lru);
        for i in 0..100 {
            buf.request(0, 100, 0); // hot
            buf.request(1000 + i, 100, 0); // cold, unique
        }
        assert!(buf.stats().hit_ratio() > 0.45);
    }
}
