//! FxHash — the multiply-xor hasher used for small integer keys.
//!
//! The CTT hot path keys several per-batch maps by `NodeId` (a `u32`) or by
//! shortcut hash-bucket indices (`u64`). The standard library's SipHash is
//! DoS-resistant but an order of magnitude slower than needed for trusted
//! integer keys that live entirely inside one executor invocation. This is
//! the classic "Fx" construction (rotate–xor–multiply per word), which
//! hashes a `u32`/`u64` in a couple of cycles and distributes sequential
//! ids well enough for the open-addressed `std` tables.
//!
//! Not suitable for untrusted input (no collision resistance) — keep it on
//! internal integer keys only.

// dcart_lint::allow_file(D1) -- this module IS the sanctioned hasher: the
// std tables are re-exported with the seed-free FxBuildHasher, so their
// iteration order is a pure function of the inserted keys.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The Fx multiplier (a 64-bit odd constant derived from pi).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A fast, non-cryptographic hasher for integer keys.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_keys_round_trip() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert(i, u64::from(i) * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(m.get(&i), Some(&(u64::from(i) * 3)));
        }
    }

    #[test]
    fn sets_dedup() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sequential_ids_spread_across_the_table() {
        // The failure mode of a bad integer hasher is clustering of
        // sequential ids; count distinct hash values over a dense range.
        let mut seen: HashSet<u64> = HashSet::new();
        for i in 0..1_000u32 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1_000, "no collisions on a dense u32 range");
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"combine-traverse-trigger");
        let mut b = FxHasher::default();
        b.write(b"combine-traverse-trigger");
        assert_eq!(a.finish(), b.finish());
    }
}
