//! Property-based tests for the timing primitives.

use dcart_engine::{mdc_wait, Clock, LatencyRecorder, NonBlockingUnit, Pipeline};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// A pipeline can never finish faster than its busiest stage, nor than
    /// the longest single item, and items complete in order.
    #[test]
    fn pipeline_lower_bounds(
        items in proptest::collection::vec(
            proptest::array::uniform3(1u64..20),
            1..100,
        ),
    ) {
        let mut p = Pipeline::new(3).record_completions();
        for lat in &items {
            p.push(lat);
        }
        let run = p.finish();
        // Lower bound 1: the busiest stage's total work.
        let max_stage: u64 = (0..3)
            .map(|s| items.iter().map(|l| l[s]).sum())
            .max()
            .unwrap();
        prop_assert!(run.total_cycles >= max_stage);
        // Lower bound 2: any single item's end-to-end latency.
        let longest: u64 = items.iter().map(|l| l.iter().sum()).max().unwrap();
        prop_assert!(run.total_cycles >= longest);
        // Upper bound: fully serialized execution.
        let serial: u64 = items.iter().map(|l| l.iter().sum::<u64>()).sum();
        prop_assert!(run.total_cycles <= serial);
        // Completions are monotone (in-order pipeline).
        for w in run.completions.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(run.items, items.len() as u64);
    }

    /// Stage utilization is in [0, 1] for every stage.
    #[test]
    fn utilization_bounded(
        items in proptest::collection::vec(proptest::array::uniform2(1u64..10), 1..50),
    ) {
        let mut p = Pipeline::new(2);
        for lat in &items {
            p.push(lat);
        }
        let run = p.finish();
        for s in 0..2 {
            let u = run.stage_utilization(s);
            prop_assert!((0.0..=1.0).contains(&u), "stage {s}: {u}");
        }
    }

    /// Clock conversions round-trip within one cycle.
    #[test]
    fn clock_roundtrip(mhz in 1.0f64..3000.0, cycles in 0u64..1 << 40) {
        let clk = Clock::mhz(mhz);
        let ns = clk.cycles_to_ns(cycles);
        let back = clk.ns_to_cycles(ns);
        prop_assert!(back >= cycles && back <= cycles + 1, "{cycles} -> {back}");
    }

    /// Percentiles are monotone in p and bounded by min/max of the samples.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..300)) {
        let mut r = LatencyRecorder::new();
        for &s in &samples {
            r.record(s);
        }
        let p50 = r.percentile(0.5);
        let p90 = r.percentile(0.9);
        let p99 = r.percentile(0.99);
        let max = r.percentile(1.0);
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p50 >= lo && max <= hi);
        prop_assert!(r.mean() >= lo && r.mean() <= hi);
    }

    /// The non-blocking unit's drain respects both analytic lower bounds
    /// (issue occupancy; per-op latency) and the serial upper bound.
    #[test]
    fn non_blocking_unit_bounds(
        ops in proptest::collection::vec((1u64..8, 1u64..100), 1..200),
        outstanding in 1usize..32,
    ) {
        let mut u = NonBlockingUnit::new(outstanding);
        let mut prev_done = 0u64;
        for &(occ, lat) in &ops {
            let done = u.issue(occ, lat);
            prop_assert!(done >= lat, "completion at least its own latency");
            // Completions of a min-heap window never regress past drain.
            prev_done = prev_done.max(done);
        }
        let drain = u.drain_cycle();
        prop_assert_eq!(drain, prev_done);
        let occ_sum: u64 = ops.iter().map(|&(o, _)| o).sum();
        let serial: u64 = ops.iter().map(|&(o, l)| o.max(l)).sum();
        prop_assert!(drain >= occ_sum, "issue port is serial");
        prop_assert!(drain <= serial, "never slower than fully blocking");
    }

    /// Queueing wait is nonnegative, increasing in load, and None at or
    /// beyond saturation.
    #[test]
    fn mdc_wait_behaves(rate in 0.01f64..10.0, service in 0.01f64..10.0, servers in 1.0f64..32.0) {
        let cap = servers / service;
        match mdc_wait(rate, service, servers) {
            Some(w) => {
                prop_assert!(rate < cap);
                prop_assert!(w >= 0.0);
                // More load → more waiting.
                if let Some(w2) = mdc_wait(rate * 0.5, service, servers) {
                    prop_assert!(w2 <= w + 1e-12);
                }
            }
            None => prop_assert!(rate >= cap),
        }
    }
}
