//! The three synthetic integer workloads of the paper's evaluation
//! (§IV-A): 8-byte integer keys, 50 M keys at paper scale.
//!
//! * **DE** — dense: keys `0..n` (inserted in random order);
//! * **RS** — random sparse: uniform draws from the full 64-bit space;
//! * **RD** — random dense: uniform draws from a window only 16× larger
//!   than the key count, so paths share most of their bytes.

use std::collections::BTreeSet;

use dcart_art::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::KeySet;

fn build(name: &str, mut values: Vec<u64>, n: usize, rng: &mut StdRng) -> KeySet {
    use rand::seq::SliceRandom;
    values.shuffle(rng);
    let pool_vals = values.split_off(n);
    let keys: Vec<Key> = values.into_iter().map(Key::from_u64).collect();
    let insert_pool: Vec<Key> = pool_vals.into_iter().map(Key::from_u64).collect();
    KeySet::with_shuffled_popularity(name, keys, insert_pool, rng)
}

/// Dense keys `0..n` (plus a pool of the next `n/4` integers).
pub fn dense(n: usize, seed: u64) -> KeySet {
    assert!(n > 0, "key count must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xde00);
    let values: Vec<u64> = (0..(n + n / 4) as u64).collect();
    build("DE", values, n, &mut rng)
}

/// Random sparse 64-bit keys.
pub fn random_sparse(n: usize, seed: u64) -> KeySet {
    assert!(n > 0, "key count must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a00);
    let want = n + n / 4;
    let mut set: BTreeSet<u64> = BTreeSet::new();
    while set.len() < want {
        set.insert(rng.gen());
    }
    build("RS", set.into_iter().collect(), n, &mut rng)
}

/// Hot-prefix keys (**HP**): a `hot_share` fraction of the keys shares one
/// leading byte, concentrating that share of a uniform op stream in a
/// single combining bucket — the adversarial shape for the bucket
/// executor, which the adaptive sub-sharding bench cells are built on.
/// The bytes *below* the hot prefix stay uniform, so a split bucket
/// spreads over its next-byte fanout. The remaining keys are uniform
/// sparse draws.
pub fn hot_prefix(n: usize, hot_share: f64, seed: u64) -> KeySet {
    assert!(n > 0, "key count must be positive");
    assert!((0.0..=1.0).contains(&hot_share), "hot_share must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x407e);
    let want = n + n / 4;
    let hot = ((want as f64) * hot_share) as usize;
    let mut set: BTreeSet<u64> = BTreeSet::new();
    while set.len() < hot {
        set.insert(0xAB00_0000_0000_0000 | (rng.gen::<u64>() >> 8));
    }
    while set.len() < want {
        set.insert(rng.gen());
    }
    build("HP", set.into_iter().collect(), n, &mut rng)
}

/// Random dense keys: unique draws from `[0, 16 n)`.
pub fn random_dense(n: usize, seed: u64) -> KeySet {
    assert!(n > 0, "key count must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4d00);
    let want = n + n / 4;
    let window = (want as u64) * 16;
    let mut set: BTreeSet<u64> = BTreeSet::new();
    while set.len() < want {
        set.insert(rng.gen_range(0..window));
    }
    build("RD", set.into_iter().collect(), n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_covers_exact_range() {
        let ks = dense(1000, 1);
        let mut vals: Vec<u64> = ks.keys.iter().map(|k| k.to_u64().unwrap()).collect();
        vals.extend(ks.insert_pool.iter().map(|k| k.to_u64().unwrap()));
        vals.sort_unstable();
        assert_eq!(vals, (0..1250u64).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_spreads_over_full_space() {
        let ks = random_sparse(2000, 2);
        let high_half = ks.keys.iter().filter(|k| k.to_u64().unwrap() > u64::MAX / 2).count();
        assert!((800..1200).contains(&high_half), "{high_half}");
    }

    #[test]
    fn random_dense_stays_in_window() {
        let n = 3000;
        let ks = random_dense(n, 3);
        let window = ((n + n / 4) as u64) * 16;
        assert!(ks.keys.iter().all(|k| k.to_u64().unwrap() < window));
    }

    #[test]
    fn pools_disjoint_from_keys() {
        for ks in [dense(500, 4), random_sparse(500, 4), random_dense(500, 4)] {
            let set: BTreeSet<&[u8]> = ks.keys.iter().map(|k| k.as_bytes()).collect();
            assert!(ks.insert_pool.iter().all(|k| !set.contains(k.as_bytes())), "{}", ks.name);
            assert_eq!(ks.keys.len(), 500);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_sparse(100, 9).keys, random_sparse(100, 9).keys);
        assert_eq!(hot_prefix(100, 0.75, 9).keys, hot_prefix(100, 0.75, 9).keys);
    }

    #[test]
    fn hot_prefix_concentrates_one_leading_byte() {
        let ks = hot_prefix(2_000, 0.75, 5);
        assert_eq!(ks.keys.len(), 2_000);
        let hot = ks.keys.iter().filter(|k| k.as_bytes()[0] == 0xAB).count();
        assert!((1_300..=1_700).contains(&hot), "~75 % of keys share the hot byte: {hot}/2000");
        // The next byte spreads, so sub-sharding has something to fan over.
        let mut next_bytes = BTreeSet::new();
        for k in ks.keys.iter().filter(|k| k.as_bytes()[0] == 0xAB) {
            next_bytes.insert(k.as_bytes()[1]);
        }
        assert!(next_bytes.len() > 64, "second byte stays uniform: {}", next_bytes.len());
    }
}
