//! `dcart-server` — the DCART online serving binary.
//!
//! ```text
//! dcart-server serve  --addr HOST:PORT [--data-dir DIR] [--sou-threads N]
//!                     [--steal] [--batch-size N] [--linger-us N]
//!                     [--checkpoint-every N] [--queue-capacity N] [--no-sync]
//! dcart-server bench  [--out FILE] [--seed S] [--sou-threads N] [--steal]
//!                     [--data-dir DIR]
//! dcart-server load   --addr HOST:PORT [--qps N] [--ops N] [--seed S]
//!                     [--pattern uniform|bursty] [--insert-pct P]
//!                     [--remove-pct P] [--scan-pct P] [--budget-us N]
//!                     [--acked-log FILE]
//! dcart-server verify-acked --addr HOST:PORT --log FILE
//! ```
//!
//! `serve` runs until SIGINT or a `shutdown` wire request, then drains
//! gracefully (stop accepting, flush, checkpoint) and exits 0. `bench`
//! writes the overload/chaos/determinism proof to `BENCH_serve.json`.
//! `load` drives a remote server with a seeded open-loop schedule and can
//! log acknowledged insert keys; `verify-acked` audits that log after a
//! crash+restart — it exits nonzero if any acknowledged write is missing.

mod bench_cmd;
mod client;
mod clock;
mod loadgen;

use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dcart_engine::time::Clock;
use dcart_server::wire::{Request, RequestKind};
use dcart_server::{serve, signal, ServerConfig};
use dcart_workloads::ArrivalPattern;

use bench_cmd::BenchOpts;
use client::{request_sync, write_acked_log};
use clock::WallClock;
use loadgen::LoadConfig;

fn print_usage() {
    eprintln!(
        "usage: dcart-server <serve|bench|load|verify-acked> [options]\n\
         serve        --addr HOST:PORT [--data-dir DIR] [--sou-threads N] [--steal]\n\
         \x20            [--batch-size N] [--linger-us N] [--checkpoint-every N]\n\
         \x20            [--queue-capacity N] [--no-sync]\n\
         bench        [--out FILE] [--seed S] [--sou-threads N] [--steal] [--data-dir DIR]\n\
         load         --addr HOST:PORT [--qps N] [--ops N] [--seed S]\n\
         \x20            [--pattern uniform|bursty] [--insert-pct P] [--remove-pct P]\n\
         \x20            [--scan-pct P] [--budget-us N] [--acked-log FILE]\n\
         verify-acked --addr HOST:PORT --log FILE"
    );
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("dcart-server: {msg}");
    print_usage();
    ExitCode::FAILURE
}

/// Tiny flag reader: `value_of` finds `--flag V`, `has` finds `--flag`.
struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn parse_u64(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.value_of(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{flag} wants an integer, got '{v}'")),
        }
    }

    fn value_of(&self, flag: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }
}

fn cmd_serve(flags: &Flags) -> ExitCode {
    let Some(addr) = flags.value_of("--addr") else {
        return fail("serve needs --addr HOST:PORT");
    };
    let mut config = ServerConfig::default();
    match (|| -> Result<(), String> {
        config.threads = flags.parse_u64("--sou-threads", 1)? as usize;
        config.steal = flags.has("--steal");
        config.batch_size = flags.parse_u64("--batch-size", 64)?.max(1) as usize;
        config.linger_ns = flags.parse_u64("--linger-us", 2_000)? * 1_000;
        config.checkpoint_every = flags.parse_u64("--checkpoint-every", 64)?.max(1);
        config.sync_commits = !flags.has("--no-sync");
        config.admission.queue_capacity = flags.parse_u64("--queue-capacity", 1_024)?.max(1);
        config.data_dir = flags.value_of("--data-dir").map(PathBuf::from);
        Ok(())
    })() {
        Ok(()) => {}
        Err(e) => return fail(&e),
    }
    signal::install_sigint_handler();
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let handle = match serve(config, addr, clock) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dcart-server: serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("dcart-server: listening on {}", handle.local_addr());
    match handle.join() {
        Ok(report) => {
            println!(
                "dcart-server: drained cleanly (answer digest {:#018x}, tree digest {:#018x})",
                report.answer_digest, report.tree_digest
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dcart-server: core failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_bench(flags: &Flags) -> ExitCode {
    let opts = match (|| -> Result<BenchOpts, String> {
        Ok(BenchOpts {
            seed: flags.parse_u64("--seed", 42)?,
            sou_threads: flags.parse_u64("--sou-threads", 2)? as usize,
            steal: flags.has("--steal"),
            out: PathBuf::from(flags.value_of("--out").unwrap_or("reports/BENCH_serve.json")),
            data_dir: PathBuf::from(
                flags.value_of("--data-dir").unwrap_or("reports/serve_chaos_data"),
            ),
        })
    })() {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    match bench_cmd::run_bench(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcart-server: bench failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_load(flags: &Flags) -> ExitCode {
    let Some(addr) = flags.value_of("--addr") else {
        return fail("load needs --addr HOST:PORT");
    };
    let cfg = match (|| -> Result<LoadConfig, String> {
        let mut cfg = LoadConfig {
            seed: flags.parse_u64("--seed", 42)?,
            qps: flags.parse_u64("--qps", 20_000)?.max(1),
            ops: flags.parse_u64("--ops", 10_000)?,
            budget_ns: flags.parse_u64("--budget-us", 0)? * 1_000,
            ..LoadConfig::default()
        };
        cfg.insert_pct = flags.parse_u64("--insert-pct", 40)?.min(100) as u8;
        cfg.remove_pct = flags.parse_u64("--remove-pct", 5)?.min(100) as u8;
        cfg.scan_pct = flags.parse_u64("--scan-pct", 5)?.min(100) as u8;
        cfg.pattern = match flags.value_of("--pattern") {
            None | Some("uniform") => ArrivalPattern::Uniform,
            Some("bursty") => ArrivalPattern::Bursty,
            Some(p) => return Err(format!("unknown pattern '{p}' (want uniform or bursty)")),
        };
        Ok(cfg)
    })() {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let (summary, acked_keys) = match loadgen::run_load(addr, &cfg, clock, Duration::from_secs(5)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dcart-server: load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(log) = flags.value_of("--acked-log") {
        if let Err(e) = write_acked_log(std::path::Path::new(log), &acked_keys) {
            eprintln!("dcart-server: writing acked log: {e}");
            return ExitCode::FAILURE;
        }
    }
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("dcart-server: summary serialize: {e}"),
    }
    // A dead/killed server mid-load is an expected outcome for the chaos
    // smoke: the summary still prints; exit reflects only local failures.
    ExitCode::SUCCESS
}

fn cmd_verify_acked(flags: &Flags) -> ExitCode {
    let (Some(addr), Some(log)) = (flags.value_of("--addr"), flags.value_of("--log")) else {
        return fail("verify-acked needs --addr HOST:PORT and --log FILE");
    };
    let text = match std::fs::read_to_string(log) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dcart-server: reading {log}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let keys: Vec<u64> = text.lines().filter_map(|l| l.trim().parse().ok()).collect();
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dcart-server: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut missing = 0u64;
    for (i, &key) in keys.iter().enumerate() {
        let req = Request {
            req_id: i as u64 + 1,
            kind: RequestKind::Get,
            budget_ns: 10_000_000_000,
            key,
            value: 0,
        };
        match request_sync(&mut stream, &req) {
            Some(resp) if resp.value.is_some() => {}
            _ => {
                missing += 1;
                eprintln!("dcart-server: acked key {key} missing after recovery");
            }
        }
    }
    println!("dcart-server: verified {} acked writes, {missing} missing", keys.len());
    if missing == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return fail("missing subcommand");
    };
    let flags = Flags { args: args[1..].to_vec() };
    match cmd.as_str() {
        "serve" => cmd_serve(&flags),
        "bench" => cmd_bench(&flags),
        "load" => cmd_load(&flags),
        "verify-acked" => cmd_verify_acked(&flags),
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown subcommand '{other}'")),
    }
}
