//! Model-aware mirrors of `std::sync` primitives.
//!
//! Inside a model, `Mutex` contention and every atomic access are decision
//! points for the scheduler; outside one they cost a thread-local read and
//! forward to std. `Mutex` keeps std's poisoning semantics by wrapping a
//! real `std::sync::Mutex`, so a panicking lock holder is observable to its
//! siblings exactly as in production code.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc as StdArc;

use crate::rt::{self, Scheduler};

pub use std::sync::Arc;

/// Mirrors `std::sync::PoisonError`, carrying the guard of a poisoned lock.
pub struct PoisonError<G> {
    guard: G,
}

impl<G> PoisonError<G> {
    pub fn new(guard: G) -> Self {
        PoisonError { guard }
    }

    pub fn into_inner(self) -> G {
        self.guard
    }
}

impl<G> fmt::Debug for PoisonError<G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PoisonError { .. }")
    }
}

pub type LockResult<G> = Result<G, PoisonError<G>>;

/// Mirrors `std::sync::Mutex`.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Mirrors `std::sync::MutexGuard`. Dropping releases the model-level
/// ownership (waking model waiters) after the real guard, preserving
/// poison-on-panic.
pub struct MutexGuard<'a, T> {
    // `inner` is dropped before `release` runs in `Drop`, so the std mutex
    // is poisoned (if unwinding) before any model waiter can observe it.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(StdArc<Scheduler>, usize)>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = match rt::current() {
            None => None,
            Some((sched, tid)) => {
                // Model-level ownership is keyed by address; it is the real
                // exclusion here (only one model thread runs at a time), so
                // the std lock below is always uncontended.
                let key = self as *const Self as usize;
                sched.mutex_acquire(tid, key);
                Some((sched, key))
            }
        };
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { inner: Some(g), model }),
            Err(poisoned) => {
                Err(PoisonError::new(MutexGuard { inner: Some(poisoned.into_inner()), model }))
            }
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        match self.inner.into_inner() {
            Ok(v) => Ok(v),
            Err(poisoned) => Err(PoisonError::new(poisoned.into_inner())),
        }
    }
}

impl<'a, T> Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<'a, T> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<'a, T> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((sched, key)) = self.model.take() {
            sched.mutex_release(key);
        }
    }
}

pub mod atomic {
    //! Model-aware atomics. Every access is a decision point; the values
    //! themselves live in real std atomics (sequentially consistent under
    //! the model because only one thread runs at a time).

    pub use std::sync::atomic::Ordering;

    use crate::rt::branch_point;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Mirrors the std atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(value: $prim) -> Self {
                    Self { inner: <$std>::new(value) }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    branch_point();
                    self.inner.load(order)
                }

                pub fn store(&self, value: $prim, order: Ordering) {
                    branch_point();
                    self.inner.store(value, order);
                }

                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    branch_point();
                    self.inner.swap(value, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    branch_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    impl AtomicUsize {
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            branch_point();
            self.inner.fetch_add(value, order)
        }

        pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
            branch_point();
            self.inner.fetch_sub(value, order)
        }
    }

    impl AtomicU64 {
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            branch_point();
            self.inner.fetch_add(value, order)
        }
    }

    impl AtomicBool {
        pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
            branch_point();
            self.inner.fetch_or(value, order)
        }
    }
}
