//! Mutation self-test: proves the flow rules catch the *real* regressions
//! they were built for, on the *real* source files they guard. Each case
//! takes the production source (clean by construction — the workspace
//! gate pins that), applies the exact mutation the rule exists to stop,
//! and asserts the rule fires. A rule that passes the fixture tests but
//! has drifted off the production code's shape fails here.

use std::path::Path;

fn read_real(rel: &str) -> String {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn rules_fired(path: &str, source: &str) -> Vec<&'static str> {
    xtask::analyze_source(path, source).into_iter().map(|d| d.rule).collect()
}

/// Swaps the text of two non-overlapping anchored regions. Each region
/// starts at its anchor line and runs to the start of `end` (exclusive).
fn swap_regions(source: &str, first: &str, second: &str, end: &str) -> String {
    let a = source.find(first).expect("first anchor present");
    let b = source.find(second).expect("second anchor present");
    let e = source.find(end).expect("end anchor present");
    assert!(a < b && b < e, "anchors must be ordered: {a} < {b} < {e}");
    format!("{}{}{}{}", &source[..a], &source[b..e], &source[a..b], &source[e..])
}

#[test]
fn ack_before_fsync_reorder_is_caught_by_o2() {
    let path = "crates/server/src/core_loop.rs";
    let source = read_real(path);
    assert!(
        rules_fired(path, &source).is_empty(),
        "the production core loop must analyze clean before mutation"
    );

    // The mutation: move the acknowledge block (stage 4) in front of the
    // commit+fsync block (stage 3) — the durability bug PR-8's protocol
    // ordering exists to prevent. The stage comments are load-bearing
    // anchors; if they are renamed, this test must be updated with them.
    let mutated = swap_regions(
        &source,
        "        // 3. Commit",
        "        // 4. Acknowledge.",
        "        self.next_seq += 1;",
    );
    let fired = rules_fired(path, &mutated);
    assert!(fired.contains(&"O2"), "O2 must catch the ack-before-fsync reorder; fired: {fired:?}");
}

#[test]
fn lock_order_inversion_is_caught_by_c1() {
    let path = "crates/server/src/core_loop.rs";
    let source = read_real(path);

    // The production file establishes admission -> snapshot (stats()
    // reads the depth under the admission guard, then locks the
    // snapshot). Appending a path that locks them in the opposite order
    // creates the classic AB/BA deadlock C1 exists to stop.
    let mutated = format!(
        "{source}\n\
         pub fn inverted_stats(&self) -> u64 {{\n\
        \x20    let snap = self.shared.snapshot.lock().unwrap_or_else(|e| e.into_inner());\n\
        \x20    let adm = self.shared.admission.lock().unwrap_or_else(|e| e.into_inner());\n\
        \x20    let depth = adm.depth() + snap.batches;\n\
        \x20    drop(adm);\n\
        \x20    drop(snap);\n\
        \x20    depth\n\
         }}\n"
    );
    let diags = xtask::analyze_source(path, &mutated);
    assert!(
        diags.iter().any(|d| d.rule == "C1" && d.msg.contains("cycle")),
        "C1 must report the admission/snapshot order cycle; got: {diags:?}"
    );
}

#[test]
fn double_acquire_is_caught_by_c1() {
    let path = "crates/engine/src/pool.rs";
    let source = read_real(path);
    assert!(
        rules_fired(path, &source).is_empty(),
        "the production pool must analyze clean before mutation"
    );

    // The mutation: a path that re-locks a mutex it already holds —
    // instant self-deadlock on a std (non-reentrant) Mutex.
    let mutated = format!(
        "{source}\n\
         pub fn drain_twice(&self) {{\n\
        \x20    let first = self.cells.lock().unwrap_or_else(|e| e.into_inner());\n\
        \x20    let second = self.cells.lock().unwrap_or_else(|e| e.into_inner());\n\
        \x20    drop(second);\n\
        \x20    drop(first);\n\
         }}\n"
    );
    let diags = xtask::analyze_source(path, &mutated);
    assert!(
        diags.iter().any(|d| d.rule == "C1" && d.msg.contains("already held")),
        "C1 must report the double acquire; got: {diags:?}"
    );
}

#[test]
fn wal_reset_before_checkpoint_is_caught_by_o2() {
    let path = "crates/core/src/durable.rs";
    let source = read_real(path);
    assert!(
        rules_fired(path, &source).is_empty(),
        "the production durability module must analyze clean before mutation"
    );

    // The checkpoint-install protocol: the checkpoint must be durably in
    // place before the WAL cursor resets. A function that resets first
    // leaves a crash window with neither artifact.
    let mutated = format!(
        "{source}\n\
         pub fn install_backwards(&mut self) -> Result<(), WalError> {{\n\
        \x20    self.writer.reset()?;\n\
        \x20    write_checkpoint(&self.dir, &self.tree)?;\n\
        \x20    Ok(())\n\
         }}\n"
    );
    let fired = rules_fired(path, &mutated);
    assert!(
        fired.contains(&"O2"),
        "O2 must catch the reset-before-checkpoint reorder; fired: {fired:?}"
    );
}
