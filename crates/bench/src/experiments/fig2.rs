//! Fig. 2 — the motivation measurements (paper §II-B).
//!
//! * (a) execution-time breakdown of ART/Heart/SMART: traversal + sync
//!   dominate (>95.82 % for SMART);
//! * (b) redundant traversed-node ratio: 77.8–86.1 %;
//! * (c) cache-line utilization: ~20.2 % on average;
//! * (d) sync share vs number of concurrent operations (IPGEO):
//!   16.2 % → 71.3 %;
//! * (e) throughput vs write ratio (IPGEO): deteriorates with writes.

use std::path::Path;

use dcart_baselines::{CpuBaseline, CpuConfig, IndexEngine, RunConfig};
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// Full Fig. 2 report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig2Report {
    /// (a)+(b)+(c): per engine × workload summary at the default mix.
    pub matrix: Vec<Fig2Row>,
    /// (d): sync fraction per engine per concurrency level (IPGEO).
    pub sync_vs_concurrency: Vec<(String, usize, f64)>,
    /// (e): throughput (Mops) per engine per mix label (IPGEO).
    pub throughput_vs_mix: Vec<(String, char, f64)>,
}

/// One engine × workload row of Fig. 2(a)–(c).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Fraction of time in traversal.
    pub traversal_frac: f64,
    /// Fraction of time in synchronization.
    pub sync_frac: f64,
    /// Fraction of time elsewhere.
    pub other_frac: f64,
    /// Redundant traversed-node ratio (Fig. 2(b)).
    pub redundancy: f64,
    /// Cache-line utilization (Fig. 2(c)).
    pub line_utilization: f64,
}

fn baseline(name: &str, keys: usize) -> CpuBaseline {
    let cpu = CpuConfig::xeon_8468().scaled_for_keys(keys);
    match name {
        "ART" => CpuBaseline::art(cpu),
        "Heart" => CpuBaseline::heart(cpu),
        "SMART" => CpuBaseline::smart(cpu),
        other => panic!("not a CPU baseline: {other}"),
    }
}

/// Runs all five Fig. 2 panels and writes `fig2.json`.
///
/// Each panel's cells fan out over the [`crate::parallel`] worker pool;
/// key sets and op streams shared by several cells are generated once and
/// borrowed by the workers. Collection order is declaration order, so the
/// report is identical at any `--jobs`.
pub fn run(scale: &Scale, out_dir: &Path) -> Fig2Report {
    println!("== Fig. 2: motivation — inefficiencies of the CPU baselines ==");
    let engines = ["ART", "Heart", "SMART"];

    // (a)(b)(c): all six workloads at the default mix.
    let data = crate::parallel::par_map(Workload::ALL.to_vec(), |w| {
        let keys = w.generate(scale.keys, scale.seed);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: scale.ops, mix: Mix::C, theta: 0.99, seed: scale.seed },
        );
        (keys, ops)
    });
    let cells: Vec<(usize, Workload, &str)> = Workload::ALL
        .iter()
        .enumerate()
        .flat_map(|(wi, &w)| engines.iter().map(move |&e| (wi, w, e)))
        .collect();
    let matrix = crate::parallel::par_map(cells, |(wi, workload, name)| {
        let (keys, ops) = &data[wi];
        let r = baseline(name, scale.keys).run(
            keys,
            ops,
            &RunConfig { concurrency: scale.concurrency },
        );
        let total = r.breakdown.total_s().max(1e-12);
        Fig2Row {
            engine: name.to_string(),
            workload: workload.name().to_string(),
            traversal_frac: r.breakdown.traversal_s / total,
            sync_frac: r.breakdown.sync_s / total,
            other_frac: (r.breakdown.other_s + r.breakdown.combine_s) / total,
            redundancy: r.counters.redundancy_ratio(),
            line_utilization: r.counters.line_utilization(),
        }
    });
    let mut t = Table::new(&[
        "engine",
        "workload",
        "traversal%",
        "sync%",
        "other%",
        "redundant%",
        "line-util%",
    ]);
    for row in &matrix {
        t.row(&[
            row.engine.clone(),
            row.workload.clone(),
            format!("{:.1}", row.traversal_frac * 100.0),
            format!("{:.1}", row.sync_frac * 100.0),
            format!("{:.1}", row.other_frac * 100.0),
            format!("{:.1}", row.redundancy * 100.0),
            format!("{:.1}", row.line_utilization * 100.0),
        ]);
    }
    t.print();
    println!(
        "paper: SMART traversal+sync > 95.8 %; redundancy 77.8–86.1 %; line utilization ~20.2 %\n"
    );

    // Panels (d) and (e) both run on IPGEO; share its key set.
    let ipgeo_keys = Workload::Ipgeo.generate(scale.keys, scale.seed);
    let ipgeo_ops_c = generate_ops(
        &ipgeo_keys,
        &OpStreamConfig { count: scale.ops, mix: Mix::C, theta: 0.99, seed: scale.seed },
    );

    // (d): sync share vs concurrency on IPGEO.
    println!("-- Fig. 2(d): sync share vs concurrent operations (IPGEO) --");
    let mut concs: Vec<usize> =
        [64usize, 512, 4_096, 32_768, 262_144].into_iter().map(|c| c.min(scale.ops)).collect();
    concs.dedup();
    let cells: Vec<(&str, usize)> =
        engines.iter().flat_map(|&e| concs.iter().map(move |&c| (e, c))).collect();
    let sync_vs_concurrency = crate::parallel::par_map(cells, |(name, conc)| {
        let r = baseline(name, scale.keys).run(
            &ipgeo_keys,
            &ipgeo_ops_c,
            &RunConfig { concurrency: conc },
        );
        (name.to_string(), conc, r.breakdown.sync_fraction())
    });
    let mut t = Table::new(&["engine", "concurrent ops", "sync share %"]);
    for (name, conc, frac) in &sync_vs_concurrency {
        t.row(&[name.clone(), conc.to_string(), format!("{:.1}", frac * 100.0)]);
    }
    t.print();
    println!("paper: rises from ~16.2 % to 62.1–71.3 % as concurrency grows\n");

    // (e): throughput vs write ratio on IPGEO.
    println!("-- Fig. 2(e): throughput vs write ratio (IPGEO) --");
    let mix_ops = crate::parallel::par_map(Mix::named().to_vec(), |(label, mix)| {
        let ops = generate_ops(
            &ipgeo_keys,
            &OpStreamConfig { count: scale.ops, mix, theta: 0.99, seed: scale.seed },
        );
        (label, ops)
    });
    let cells: Vec<(&str, usize)> =
        engines.iter().flat_map(|&e| (0..mix_ops.len()).map(move |mi| (e, mi))).collect();
    let throughput_vs_mix = crate::parallel::par_map(cells, |(name, mi)| {
        let (label, ops) = &mix_ops[mi];
        let r = baseline(name, scale.keys).run(
            &ipgeo_keys,
            ops,
            &RunConfig { concurrency: scale.concurrency },
        );
        (name.to_string(), *label, r.throughput_mops())
    });
    let mut t = Table::new(&["engine", "mix", "throughput Mops/s"]);
    for (name, label, tput) in &throughput_vs_mix {
        t.row(&[name.clone(), label.to_string(), format!("{tput:.2}")]);
    }
    t.print();
    println!("paper: performance deteriorates rapidly as the write ratio increases\n");

    let report = Fig2Report { matrix, sync_vs_concurrency, throughput_vs_mix };
    write_report(out_dir, "fig2", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shapes_hold_at_smoke_scale() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-fig2-test");
        let r = run(&scale, &tmp);

        // (a) traversal + sync dominate for every CPU baseline.
        for row in &r.matrix {
            assert!(
                row.traversal_frac + row.sync_frac > 0.85,
                "{}/{}: {} + {}",
                row.engine,
                row.workload,
                row.traversal_frac,
                row.sync_frac
            );
            // (b) substantial redundancy under concurrency.
            assert!(
                row.redundancy > 0.4,
                "{}/{} redundancy {}",
                row.engine,
                row.workload,
                row.redundancy
            );
            // (c) poor cache-line utilization.
            assert!(row.line_utilization < 0.45, "{}/{}", row.engine, row.workload);
        }

        // (d) sync share grows with concurrency for ART.
        let art: Vec<f64> = r
            .sync_vs_concurrency
            .iter()
            .filter(|(e, _, _)| e == "ART")
            .map(|(_, _, f)| *f)
            .collect();
        assert!(art.last().unwrap() > art.first().unwrap());

        // (e) 100% write is slower than 100% read for every engine.
        for name in ["ART", "Heart", "SMART"] {
            let read =
                r.throughput_vs_mix.iter().find(|(e, l, _)| e == name && *l == 'A').unwrap().2;
            let write =
                r.throughput_vs_mix.iter().find(|(e, l, _)| e == name && *l == 'E').unwrap().2;
            assert!(write < read, "{name}: write {write} vs read {read}");
        }
    }
}
