//! Criterion benchmarks of the CTT executor's hot path: the per-batch
//! combining step (allocating vs. arena-reusing) and the full
//! bucket-execution inner loop at several SOU worker counts.
//!
//! These are the paths the zero-allocation overhaul targets; run with
//! `cargo bench --bench ctt_hot_path` and compare `combine/into` against
//! `combine/alloc`, and the `execute/threads-N` series against each other.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcart::pcu::{combine_batch, combine_batch_into, CombinedBatch};
use dcart::{
    execute_ctt_threaded, try_execute_ctt_profiled, CttConsumer, DcartConfig, ExecOpts,
    TraverseMode,
};
use dcart_art::simd;
use dcart_workloads::{generate_ops, synth, KeySet, Mix, Op, OpStreamConfig, Workload};

fn fixture(keys: usize, ops: usize) -> (KeySet, Vec<Op>, DcartConfig) {
    let keys = Workload::Ipgeo.generate(keys, 1);
    let ops =
        generate_ops(&keys, &OpStreamConfig { count: ops, mix: Mix::C, theta: 0.99, seed: 1 });
    let cfg = DcartConfig::default().with_auto_prefix_skip(&keys);
    (keys, ops, cfg)
}

/// The allocating combiner against the arena-reusing one, over the same
/// 64k-operation batch (the executor calls this once per batch, so the
/// delta is pure per-batch allocation churn).
fn bench_combine(c: &mut Criterion) {
    let (_, ops, cfg) = fixture(20_000, 65_536);
    let mut g = c.benchmark_group("ctt/combine");
    g.throughput(Throughput::Elements(ops.len() as u64));
    g.bench_function("alloc", |b| {
        b.iter(|| combine_batch(&cfg, &ops).scanned);
    });
    g.bench_function("into", |b| {
        let mut out = CombinedBatch { buckets: Vec::new(), scanned: 0 };
        b.iter(|| {
            combine_batch_into(&cfg, &ops, &mut out);
            out.scanned
        });
    });
    g.finish();
}

/// Consumes events without attaching costs, so the measurement is the
/// executor itself (traversal, shortcut probes, record replay).
struct Sink {
    visits: u64,
}

impl CttConsumer for Sink {
    fn op(&mut self, ev: &dcart::CttOpEvent<'_>) {
        self.visits += ev.visits.len() as u64;
    }
}

/// The full bucket-execution inner loop — bulk load, combine, worker
/// fan-out, scan merge, serial replay — at 1, 2, and 4 SOU workers.
/// Identical results at every width; only wall-clock may move (and on a
/// single-core container the threaded rows just measure pool overhead).
fn bench_execute(c: &mut Criterion) {
    let (keys, ops, cfg) = fixture(10_000, 40_000);
    let mut g = c.benchmark_group("ctt/execute");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ops.len() as u64));
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| {
                let mut sink = Sink { visits: 0 };
                let (_, stats) = execute_ctt_threaded(&keys, &ops, &cfg, 4_096, threads, &mut sink);
                (stats.ops, sink.visits)
            });
        });
    }
    g.finish();
}

/// Static against adaptive bucket scheduling under hard skew: hot-prefix
/// keys (75 % of keys behind one leading byte, so one bucket carries most
/// of the stream) probed by a steeper-than-YCSB zipfian, at 1 and 2 SOU
/// workers. `static` pins `split_threshold = 1.0` (never split, no
/// stealing); `adaptive` splits hot buckets at 0.25 of a batch and steals.
/// Results are identical across all four cells (the determinism
/// contract); only wall-clock moves. The interesting comparison is
/// `adaptive/threads-2` against `static/threads-2`: with the hot bucket
/// split eight ways the workers have balanced work to share, where the
/// static schedule serializes on the hot shard. On a single-core host
/// both 2-thread cells time the same core — compare them to each other,
/// not to the 1-thread rows.
fn bench_skew(c: &mut Criterion) {
    let keys = synth::hot_prefix(10_000, 0.75, 1);
    let ops =
        generate_ops(&keys, &OpStreamConfig { count: 40_000, mix: Mix::C, theta: 1.2, seed: 1 });
    let mut g = c.benchmark_group("ctt/skew");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ops.len() as u64));
    for (name, frac, steal) in [("static", 1.0f64, false), ("adaptive", 0.25, true)] {
        for threads in [1usize, 2] {
            let mut cfg = DcartConfig::default().with_auto_prefix_skip(&keys);
            cfg.split_threshold = Some(frac);
            let opts = ExecOpts { threads, mode: TraverseMode::LevelWise, steal };
            g.bench_with_input(
                BenchmarkId::new(name, format!("threads-{threads}")),
                &opts,
                |b, opts| {
                    b.iter(|| {
                        let mut sink = Sink { visits: 0 };
                        let (_, stats, _) =
                            try_execute_ctt_profiled(&keys, &ops, &cfg, 4_096, opts, &mut sink)
                                .expect("fault-free");
                        (stats.ops, sink.visits)
                    });
                },
            );
        }
    }
    g.finish();
}

/// Level-wise batched Traverse against per-op traversal on the skewed
/// read cells (IPGEO and DICT, zipfian probes). The tree is built once
/// and sized past the fast cache levels, then both modes resolve the same
/// 64k-probe stream in 8 192-key batches — the shape the CTT's Traverse
/// stage sees per SOU bucket. Per-op re-fetches hot upper-level nodes once
/// per probe; level-wise loads each `(node, wave)` group once (Fig 3 node
/// skew), which is the win this cell exists to keep honest.
fn bench_traverse(c: &mut Criterion) {
    use dcart_art::{Art, Key, LevelWiseScratch, RecordingTracer};
    let mut g = c.benchmark_group("ctt/traverse");
    g.sample_size(20);
    for workload in [Workload::Ipgeo, Workload::Dict] {
        let keys = workload.generate(1_000_000, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 65_536, mix: Mix::A, theta: 0.99, seed: 1 },
        );
        let probes: Vec<Key> = ops.iter().map(|o| o.key.clone()).collect();
        let mut art: Art<u64> = Art::new();
        art.load_indexed(&keys.keys).expect("prefix-free");
        g.throughput(Throughput::Elements(probes.len() as u64));
        g.bench_function(BenchmarkId::new("per_op", workload.name()), |b| {
            let mut tracer = RecordingTracer::new();
            b.iter(|| {
                let mut acc = 0u64;
                for k in &probes {
                    tracer.clear();
                    if art.locate_leaf(k, &mut tracer).is_some() {
                        acc += 1;
                    }
                    acc += tracer.trace.visits.len() as u64;
                }
                acc
            });
        });
        g.bench_function(BenchmarkId::new("level_wise", workload.name()), |b| {
            let mut scratch = LevelWiseScratch::new();
            b.iter(|| {
                let mut acc = 0u64;
                for chunk in probes.chunks(8_192) {
                    art.locate_leaves_level_wise(chunk, &mut scratch);
                    acc += scratch.ops_advanced();
                    for i in 0..chunk.len() {
                        if scratch.target(i).is_some() {
                            acc += 1;
                        }
                    }
                }
                acc
            });
        });
    }
    g.finish();
}

/// The node-search kernels the SIMD module accelerates: the N16 lane
/// search (vector vs. SWAR vs. naive scalar) and the N48 occupancy bitmap
/// (vector vs. scalar), each over a data-dependent probe chain so the
/// branch predictor cannot memoize the sequence.
fn bench_node_search(c: &mut Criterion) {
    let mut keys16 = [0u8; 16];
    for (i, k) in keys16.iter_mut().enumerate() {
        *k = (i * 16 + 3) as u8;
    }
    let probes: Vec<u8> = (0..4_096u32).map(|i| (i.wrapping_mul(97) % 256) as u8).collect();

    let mut g = c.benchmark_group("node/search16");
    g.throughput(Throughput::Elements(probes.len() as u64));
    type Search16 = dyn Fn(&[u8; 16], usize, u8) -> Option<usize>;
    let chain = |search: &Search16| {
        let mut acc = 0usize;
        for &p in &probes {
            let probe = p.wrapping_add(acc as u8);
            acc += search(&keys16, 16, probe).map_or(1, |i| i + 2);
        }
        acc
    };
    g.bench_function("simd", |b| b.iter(|| chain(&simd::search16)));
    g.bench_function("swar", |b| b.iter(|| chain(&simd::search16_swar)));
    g.bench_function("scalar", |b| b.iter(|| chain(&simd::search16_scalar)));
    g.finish();

    let mut index = [0xFFu8; 256];
    for slot in 0..48u8 {
        let byte = slot.wrapping_mul(37).wrapping_add(11);
        index[usize::from(byte)] = slot;
    }
    let mut g = c.benchmark_group("node/present_bitmap");
    g.bench_function("simd", |b| {
        b.iter(|| simd::present_bitmap(&index, 0xFF).iter().map(|w| w.count_ones()).sum::<u32>())
    });
    g.bench_function("scalar", |b| {
        b.iter(|| {
            simd::present_bitmap_scalar(&index, 0xFF).iter().map(|w| w.count_ones()).sum::<u32>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_combine,
    bench_execute,
    bench_skew,
    bench_traverse,
    bench_node_search
);
criterion_main!(benches);
