//! Offline stand-in for [rand](https://docs.rs/rand) 0.8, covering the
//! subset this workspace uses: `StdRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, and `SliceRandom::shuffle`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the same stream
//! as real rand's ChaCha12 `StdRng`, but the workspace only relies on
//! determinism for a fixed seed (reproducible workloads), never on specific
//! values.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core random-number source: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type samplable uniformly from an rng's raw output (the `Standard`
/// distribution of real rand).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty)*) => {$(
        impl StandardSample for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range type a uniform value can be drawn from (`Range`/`RangeInclusive`
/// over the primitive numeric types).
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one uniformly distributed value from the range.
    ///
    /// Panics if the range is empty, matching real rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws uniformly from `[0, span)` with a widening-multiply reduction.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($ty:ty)*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: any 64-bit draw is in range.
                    rng.next_u64() as $ty
                } else {
                    start.wrapping_add(uniform_below(rng, span as u64) as $ty)
                }
            }
        }
    )*};
}
sample_range_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

macro_rules! sample_range_float {
    ($($ty:ty)*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$ty as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
sample_range_float!(f32 f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an rng from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(10..=20u64);
            assert!((10..=20).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.7)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.69..0.71).contains(&frac), "{frac}");
    }
}
