//! The DCART-specific lint and analysis rules.
//!
//! Each rule has a stable ID, protects one invariant the test suite cannot
//! cheaply express, and can be silenced per line with a marker comment
//! (`// dcart_lint::allow(D1) -- reason`) on the offending line or the
//! line above, or per file with `// dcart_lint::allow_file(D1) -- reason`.
//! Atomic-ordering sites are justified with a third marker form,
//! `// dcart_lint::atomic(REASON)`, same placement rules.
//!
//! Markers are *tracked*: a marker that silences nothing is itself an S1
//! error (like `unused_attributes`), so suppressions cannot rot in place
//! after the code they excused is refactored away.
//!
//! | ID | invariant |
//! |----|-----------|
//! | D1 | no default-hasher `HashMap`/`HashSet` (iteration order must not
//! |    | depend on the process-random SipHash seed) |
//! | D2 | no wall-clock / OS randomness / environment reads outside the
//! |    | bench timing module and CLI front-ends |
//! | P1 | uniform panic policy: no `unwrap()`/`panic!`/`todo!`, and
//! |    | `expect`/`unreachable` must document their invariant; the
//! |    | `unsafe` keyword is confined to [`UNSAFE_SANCTIONED`] files |
//! | F1 | on-disk magic strings are defined in exactly one module |
//! | O1 | no stdout/stderr prints in library crates |
//! | O2 | protocol call-order automata hold on every path (durable-ack,
//! |    | checkpoint-install, drain) — see [`crate::flow`] |
//! | C1 | lock discipline: no acquisition-order cycles, no double-acquire
//! |    | on any path — see [`crate::flow`] |
//! | A1 | every `Ordering::Relaxed`/`Ordering::SeqCst` outside
//! |    | [`A1_SANCTIONED`] carries a `dcart_lint::atomic(REASON)` marker |
//! | S1 | no stale suppressions: every marker must silence something |

use std::cell::Cell;

use crate::lexer::{followed_by, ident_cols, preceded_by, LineView};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Stable rule ID (`"D1"`, ...).
    pub rule: &'static str,
    /// What is wrong.
    pub msg: String,
    /// How to fix or silence it.
    pub help: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.msg)?;
        writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        write!(f, "  help: {}", self.help)
    }
}

/// All rule IDs, in documentation order.
pub const RULE_IDS: [&str; 9] = ["D1", "D2", "P1", "F1", "O1", "O2", "C1", "A1", "S1"];

/// The single-file lexical rules run by `xtask lint`.
pub const LINT_RULE_IDS: [&str; 5] = ["D1", "D2", "P1", "F1", "O1"];

/// The flow-aware rules added by `xtask analyze`.
pub const FLOW_RULE_IDS: [&str; 3] = ["O2", "C1", "A1"];

/// One-line summaries per rule, for `--format sarif` metadata.
pub const RULE_SUMMARIES: [(&str, &str); 9] = [
    ("D1", "no default-hasher HashMap/HashSet in deterministic code"),
    ("D2", "no wall-clock, OS-randomness, or environment reads in the functional layer"),
    ("P1", "uniform panic policy; unsafe confined to sanctioned kernel files"),
    ("F1", "on-disk magic strings have exactly one definition site"),
    ("O1", "no stdout/stderr prints in library crates"),
    ("O2", "protocol call-order automata hold on every path"),
    ("C1", "lock discipline: no acquisition-order cycles or double-acquires"),
    ("A1", "Relaxed/SeqCst atomic orderings carry a written justification"),
    ("S1", "no stale suppression markers"),
];

/// Crates whose library code must obey the panic policy (P1) and the
/// no-print rule (O1). `bench` and `xtask` are the human-facing harness
/// surface: printing tables is their job and a panic is their
/// error-reporting strategy of last resort.
pub const LIB_CRATES: [&str; 8] =
    ["art", "mem", "engine", "core", "baselines", "indexes", "workloads", "server"];

/// The only files where the `unsafe` keyword is permitted: the reviewed
/// `std::arch` SIMD kernel module. Everything else in the workspace is
/// `forbid(unsafe_code)`; the owning crate of a sanctioned file downgrades
/// its root to `deny(unsafe_code)` plus a module-level
/// `#![allow(unsafe_code)]` inside the sanctioned file, so every unsafe
/// block still lives behind exactly one auditable gate. Widening this list
/// is a reviewed change to this table — the P1 check below deliberately
/// ignores `dcart_lint::allow` markers and `#[cfg(test)]` regions for the
/// `unsafe` token.
pub const UNSAFE_SANCTIONED: [&str; 2] = ["crates/art/src/simd.rs", "crates/server/src/signal.rs"];

/// Files where `Ordering::Relaxed`/`SeqCst` need no per-site marker: the
/// contention-stats counter block in the sync ART engine, where every
/// counter is monotonic, advisory, and documented once at module level.
/// Everywhere else each relaxed/sequential ordering carries its own
/// `// dcart_lint::atomic(REASON)` (A1).
pub const A1_SANCTIONED: [&str; 1] = ["crates/art/src/sync.rs"];

/// Files (path prefixes) where wall-clock and environment reads are the
/// point: the bench timing harness and the CLI front-ends.
pub const D2_WHITELIST: [&str; 5] = [
    "crates/bench/src/perf.rs",
    "crates/bench/src/parallel.rs",
    "crates/bench/src/bin/",
    "crates/server/src/bin/",
    "crates/xtask/src/",
];

/// Single source of truth for each on-disk format magic: the literal may
/// appear (outside tests) only in its defining module.
pub const F1_MAGICS: [(&str, &str); 4] = [
    ("DCARTWAL", "crates/engine/src/wal.rs"),
    ("DCARTCKP", "crates/core/src/durable.rs"),
    ("DCARTSNP", "crates/art/src/serde_impl.rs"),
    ("DCARTNET", "crates/server/src/wire.rs"),
];

/// Paths never scanned for F1 (the lint's own rule tables name the magics).
pub const F1_SKIP: [&str; 1] = ["crates/xtask/"];

/// Marker form: per-line allow, per-file allow, or atomic justification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// `// dcart_lint::allow(RULE) -- reason` — this line and the next.
    Allow,
    /// `// dcart_lint::allow_file(RULE) -- reason` — the whole file.
    AllowFile,
    /// `// dcart_lint::atomic(REASON)` — justifies a Relaxed/SeqCst
    /// ordering on this line or the next.
    Atomic,
}

/// One suppression/justification marker, with usage tracking for S1.
#[derive(Debug)]
pub struct Marker {
    /// 0-based line the marker comment sits on.
    pub line0: usize,
    /// Marker form.
    pub kind: MarkerKind,
    /// Rule ID for allow markers; the justification text for atomic ones.
    pub arg: String,
    /// Set once the marker silences or justifies a finding.
    pub used: Cell<bool>,
}

/// Per-file context computed once, shared by every rule.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Lexed lines.
    pub lines: &'a [LineView],
    /// `lines[i]` is inside a `#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// All markers in the file, in line order.
    pub markers: Vec<Marker>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context: test-region map and markers.
    pub fn new(path: &'a str, lines: &'a [LineView]) -> Self {
        let in_test = test_regions(lines);
        let mut markers = Vec::new();
        for (i, l) in lines.iter().enumerate() {
            // The lexer strips the `//` opener, so doc comments surface as
            // `/ ...` or `! ...` in the comment channel. Doc comments
            // *describe* the marker syntax (this file does, extensively);
            // only plain `//` comments carry live markers.
            if l.comment.starts_with('/') || l.comment.starts_with('!') {
                continue;
            }
            for (opener, kind) in [
                ("dcart_lint::allow_file(", MarkerKind::AllowFile),
                ("dcart_lint::allow(", MarkerKind::Allow),
            ] {
                for rule in parse_marker(&l.comment, opener) {
                    markers.push(Marker { line0: i, kind, arg: rule, used: Cell::new(false) });
                }
            }
            for reason in parse_atomic(&l.comment) {
                markers.push(Marker {
                    line0: i,
                    kind: MarkerKind::Atomic,
                    arg: reason,
                    used: Cell::new(false),
                });
            }
        }
        FileCtx { path, lines, in_test, markers }
    }

    /// Is a finding for `rule` on 0-based `line0` suppressed? Marks every
    /// matching marker used (line-level first; the file-level marker only
    /// when no line-level one matches).
    pub(crate) fn allowed(&self, rule: &str, line0: usize) -> bool {
        let mut hit = false;
        for m in &self.markers {
            if m.kind == MarkerKind::Allow
                && m.arg == rule
                && (m.line0 == line0 || m.line0 + 1 == line0)
            {
                m.used.set(true);
                hit = true;
            }
        }
        if hit {
            return true;
        }
        for m in &self.markers {
            if m.kind == MarkerKind::AllowFile && m.arg == rule {
                m.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Is an atomic-ordering use on 0-based `line0` justified by a
    /// `dcart_lint::atomic(REASON)` marker with a nonempty reason? Marks
    /// matching markers used.
    pub(crate) fn atomic_justified(&self, line0: usize) -> bool {
        let mut hit = false;
        for m in &self.markers {
            if m.kind == MarkerKind::Atomic
                && !m.arg.is_empty()
                && (m.line0 == line0 || m.line0 + 1 == line0)
            {
                m.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// The crate name for `crates/<name>/...` paths.
    pub fn crate_name(&self) -> &str {
        self.path.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("")
    }

    pub(crate) fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        line0: usize,
        col: usize,
        msg: impl Into<String>,
        help: impl Into<String>,
    ) {
        if !self.in_test.get(line0).copied().unwrap_or(false) && !self.allowed(rule, line0) {
            out.push(Diagnostic {
                path: self.path.to_string(),
                line: line0 + 1,
                col,
                rule,
                msg: msg.into(),
                help: help.into(),
            });
        }
    }
}

fn parse_marker(comment: &str, opener: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(opener) {
        let tail = &rest[pos + opener.len()..];
        if let Some(end) = tail.find(')') {
            for id in tail[..end].split([',', ' ']).filter(|s| !s.is_empty()) {
                out.push(id.to_string());
            }
        }
        rest = &rest[pos + opener.len()..];
    }
    out
}

/// Parses `dcart_lint::atomic(REASON)` markers; the reason runs to the
/// *last* closing paren so it may itself contain parentheses.
fn parse_atomic(comment: &str) -> Vec<String> {
    let opener = "dcart_lint::atomic(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(opener) {
        let tail = &rest[pos + opener.len()..];
        if let Some(end) = tail.rfind(')') {
            out.push(tail[..end].trim().to_string());
        } else {
            out.push(String::new());
        }
        rest = &rest[pos + opener.len()..];
    }
    out
}

/// Marks lines inside `#[cfg(test)] mod ... { }` regions (brace-matched on
/// the comment/string-stripped code channel).
pub fn test_regions(lines: &[LineView]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth = 0usize;
    let mut pending = false;
    let mut test_depth: Option<usize> = None;
    for (i, l) in lines.iter().enumerate() {
        let stripped: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        if stripped.contains("#[cfg(test)]") || stripped.contains("#[cfg(all(test") {
            pending = true;
        }
        if test_depth.is_some() || pending {
            out[i] = true;
        }
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use ...;` — the attribute gates a single
                // item with no body; stop carrying it forward.
                ';' if pending && test_depth.is_none() => {
                    pending = false;
                }
                _ => {}
            }
        }
    }
    out
}

/// D1 — default-hasher `HashMap`/`HashSet`.
///
/// Iteration order of the std hash tables depends on a per-process random
/// SipHash seed; any such order reaching a digest, stats JSON, or the event
/// stream breaks the byte-identical-replay guarantees the reproduction is
/// built on. Use `BTreeMap`/`BTreeSet` or `dcart::fxhash` (seed-free)
/// instead; `dcart::fxhash` itself carries the file-level allow.
pub fn d1(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, l) in ctx.lines.iter().enumerate() {
        for name in ["HashMap", "HashSet"] {
            for col in ident_cols(&l.code, name) {
                ctx.emit(
                    out,
                    "D1",
                    i,
                    col,
                    format!("`{name}` with the default `RandomState` has a per-process random iteration order"),
                    "use `BTreeMap`/`BTreeSet` or `dcart::fxhash::{FxHashMap, FxHashSet}`; \
                     silence a justified site with `// dcart_lint::allow(D1) -- reason`",
                );
            }
        }
    }
}

/// D2 — wall clock, OS randomness, environment reads.
///
/// The functional layer must be a pure function of (workload, seed,
/// config); time and environment may only be read by the bench timing
/// module and the CLI front-ends.
pub fn d2(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if D2_WHITELIST.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        for col in ident_cols(&l.code, "Instant") {
            if followed_by(&l.code, col - 1 + "Instant".len(), "::now") {
                ctx.emit(
                    out,
                    "D2",
                    i,
                    col,
                    "`Instant::now` reads the wall clock in the functional layer",
                    "model time with `dcart_engine::Clock` cycles, or move the timing into \
                     `crates/bench/src/perf.rs`",
                );
            }
        }
        for name in ["SystemTime", "thread_rng", "from_entropy"] {
            for col in ident_cols(&l.code, name) {
                ctx.emit(
                    out,
                    "D2",
                    i,
                    col,
                    format!("`{name}` injects OS nondeterminism into the functional layer"),
                    "derive randomness from the run's explicit seed (splitmix64 streams)",
                );
            }
        }
        for col in ident_cols(&l.code, "env") {
            let end = col - 1 + "env".len();
            for acc in ["::var", "::vars", "::args", "::args_os"] {
                if followed_by(&l.code, end, acc) {
                    ctx.emit(
                        out,
                        "D2",
                        i,
                        col,
                        format!("`env{acc}` makes behaviour depend on the process environment"),
                        "thread configuration through explicit config structs; only the CLI \
                         front-ends under `crates/bench/src/bin/` parse the environment",
                    );
                }
            }
        }
    }
}

/// P1 — uniform panic policy in library crates.
///
/// `unwrap()`, `panic!`, `todo!` and `unimplemented!` never belong in
/// non-test library code (return a typed `DcartError` instead).
/// `expect("...")` and `unreachable!("...")` are the sanctioned escape
/// hatch for *documented invariants* — they must carry a nonempty message
/// naming the invariant, which is what makes them auditable.
pub fn p1(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !LIB_CRATES.contains(&ctx.crate_name()) {
        return;
    }
    // The `unsafe` keyword is confined to the sanctioned kernel files.
    // This check bypasses `ctx.emit` on purpose: neither allow markers nor
    // `#[cfg(test)]` regions can silence it — widening the exception means
    // editing [`UNSAFE_SANCTIONED`] under review, not adding a comment.
    if !UNSAFE_SANCTIONED.contains(&ctx.path) {
        for (i, l) in ctx.lines.iter().enumerate() {
            for col in ident_cols(&l.code, "unsafe") {
                out.push(Diagnostic {
                    path: ctx.path.to_string(),
                    line: i + 1,
                    col,
                    rule: "P1",
                    msg: "`unsafe` outside the sanctioned SIMD kernel module".to_string(),
                    help: "unsafe code lives only in the files named by UNSAFE_SANCTIONED \
                           (crates/xtask/src/rules.rs); allow markers cannot silence this — \
                           extend that table in a reviewed change instead"
                        .to_string(),
                });
            }
        }
    }
    // Binary front-ends under `src/bin/` are the human-facing CLI surface
    // of a LIB_CRATES member: panics and prints are their error-reporting
    // strategy, exactly like the `bench` crate's binaries. The unsafe
    // confinement above still applies to them.
    if ctx.path.contains("/src/bin/") {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        for col in ident_cols(&l.code, "unwrap") {
            let end = col - 1 + "unwrap".len();
            if preceded_by(&l.code, col - 1, '.') && followed_by(&l.code, end, "()") {
                ctx.emit(
                    out,
                    "P1",
                    i,
                    col,
                    "`unwrap()` in non-test library code",
                    "return a typed error, or use `expect(\"<invariant>\")` if failure is \
                     provably unreachable",
                );
            }
        }
        for name in ["panic", "todo", "unimplemented"] {
            for col in ident_cols(&l.code, name) {
                if followed_by(&l.code, col - 1 + name.len(), "!") {
                    ctx.emit(
                        out,
                        "P1",
                        i,
                        col,
                        format!("`{name}!` in non-test library code"),
                        "return a typed error; for impossible branches use \
                         `unreachable!(\"<invariant>\")`",
                    );
                }
            }
        }
        for (name, is_macro) in [("expect", false), ("unreachable", true)] {
            for col in ident_cols(&l.code, name) {
                let end = col - 1 + name.len();
                let opener = if is_macro { "!(" } else { "(" };
                if !is_macro && !preceded_by(&l.code, col - 1, '.') {
                    continue;
                }
                if !followed_by(&l.code, end, opener) {
                    continue;
                }
                if !has_message_arg(ctx.lines, i, end) {
                    ctx.emit(
                        out,
                        "P1",
                        i,
                        col,
                        format!("`{name}` without an invariant message"),
                        "state the invariant that makes this unreachable, e.g. \
                         `expect(\"arena invariant: linked node is live\")`",
                    );
                }
            }
        }
    }
}

/// Does a nonempty string literal open the argument list that starts after
/// byte offset `end0` on line `line0` (looking one line ahead for wrapped
/// arguments)?
fn has_message_arg(lines: &[LineView], line0: usize, end0: usize) -> bool {
    let same = lines[line0].strings.iter().any(|s| s.col > end0 && !s.text.is_empty());
    if same {
        return true;
    }
    // Wrapped: `.expect(\n    "message",` — accept a nonempty literal
    // leading the next line.
    lines.get(line0 + 1).is_some_and(|l| {
        l.strings
            .first()
            .is_some_and(|s| !s.text.is_empty() && l.code[..s.col - 1].trim().is_empty())
    })
}

/// F1 — on-disk magic strings have one definition site.
///
/// Writer and recovery paths must agree on the `DCARTWAL`/`DCARTCKP`/
/// `DCARTSNP` headers; a second literal is where silent format drift
/// starts. Everyone else references the exported constant.
pub fn f1(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if F1_SKIP.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for (magic, def) in F1_MAGICS {
        if ctx.path == def {
            continue;
        }
        for (i, l) in ctx.lines.iter().enumerate() {
            for s in &l.strings {
                if s.text.contains(magic) {
                    ctx.emit(
                        out,
                        "F1",
                        i,
                        s.col,
                        format!("magic `{magic}` re-spelled outside its defining module"),
                        format!("reference the constant exported by `{def}` instead"),
                    );
                }
            }
        }
    }
}

/// O1 — no stdout/stderr prints in library crates.
///
/// Library output flows through the `Tracer` interface and the report
/// writers; a stray `println!` bypasses both and corrupts piped reports.
pub fn o1(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !LIB_CRATES.contains(&ctx.crate_name()) {
        return;
    }
    // Binaries print; that is their job (same carve-out as P1).
    if ctx.path.contains("/src/bin/") {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        for name in ["println", "eprintln", "print", "eprint", "dbg"] {
            for col in ident_cols(&l.code, name) {
                if followed_by(&l.code, col - 1 + name.len(), "!") {
                    ctx.emit(
                        out,
                        "O1",
                        i,
                        col,
                        format!("`{name}!` in a library crate"),
                        "emit through the `Tracer`/report sinks; only the bench harness prints",
                    );
                }
            }
        }
    }
}

/// A1 — every `Ordering::Relaxed`/`Ordering::SeqCst` carries a written
/// justification.
///
/// Acquire/Release pairs document themselves: the pairing *is* the
/// protocol. `Relaxed` claims no synchronization is needed and `SeqCst`
/// claims the strongest order is — both are load-bearing design decisions
/// that drift silently under refactors (PR-7's packed head/tail CAS, the
/// PR-3 shard counters). The marker keeps the reasoning next to the site:
/// `// dcart_lint::atomic(monotonic stats counter, read racily by design)`.
pub fn a1(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !LIB_CRATES.contains(&ctx.crate_name()) {
        return;
    }
    if A1_SANCTIONED.contains(&ctx.path) {
        return;
    }
    for (i, l) in ctx.lines.iter().enumerate() {
        for name in ["Relaxed", "SeqCst"] {
            for col in ident_cols(&l.code, name) {
                if !l.code[..col - 1].trim_end().ends_with("Ordering::") {
                    continue;
                }
                if !ctx.atomic_justified(i) {
                    ctx.emit(
                        out,
                        "A1",
                        i,
                        col,
                        format!("`Ordering::{name}` without a written justification"),
                        "add `// dcart_lint::atomic(<why this ordering is sufficient/required>)` \
                         on this line or the line above, or move the code into an \
                         A1_SANCTIONED module (crates/xtask/src/rules.rs)",
                    );
                }
            }
        }
    }
}

/// S1 — stale suppressions.
///
/// Run after every other active rule so marker usage is final. A marker
/// whose rule never fired on its span is dead weight that silently
/// re-licenses future violations; it must be deleted (or the rule ID fixed,
/// for markers naming an unknown rule). `active` lists the rule IDs this
/// invocation actually ran — markers for rules that were *not* run are
/// left alone, so `xtask lint` never flags the flow-rule markers it cannot
/// check.
pub fn s1(ctx: &FileCtx, active: &[&str], out: &mut Vec<Diagnostic>) {
    // Two passes so `allow(S1)` markers get their usage recorded by pass 1
    // emissions before pass 2 judges them.
    for pass in 0..2 {
        for m in &ctx.markers {
            let is_s1_allow = m.kind != MarkerKind::Atomic && m.arg == "S1";
            if (pass == 0) == is_s1_allow || m.used.get() {
                continue;
            }
            if ctx.in_test.get(m.line0).copied().unwrap_or(false) {
                continue;
            }
            match m.kind {
                MarkerKind::Atomic => {
                    if !active.contains(&"A1") {
                        continue;
                    }
                    if m.arg.is_empty() {
                        ctx.emit(
                            out,
                            "S1",
                            m.line0,
                            1,
                            "`dcart_lint::atomic()` marker with an empty reason",
                            "write the justification inside the parentheses: \
                             `// dcart_lint::atomic(<why this ordering suffices>)`",
                        );
                    } else {
                        ctx.emit(
                            out,
                            "S1",
                            m.line0,
                            1,
                            "stale `dcart_lint::atomic(..)` marker: no `Ordering::Relaxed`/\
                             `SeqCst` on the marked line"
                                .to_string(),
                            "delete the marker (the ordering it justified is gone), or move it \
                             next to the atomic operation it describes",
                        );
                    }
                }
                MarkerKind::Allow | MarkerKind::AllowFile => {
                    if !RULE_IDS.contains(&m.arg.as_str()) {
                        ctx.emit(
                            out,
                            "S1",
                            m.line0,
                            1,
                            format!("marker names unknown rule `{}`", m.arg),
                            format!("known rule IDs: {}", RULE_IDS.join(" ")),
                        );
                    } else if active.contains(&m.arg.as_str()) {
                        let scope = if m.kind == MarkerKind::AllowFile { "file" } else { "span" };
                        ctx.emit(
                            out,
                            "S1",
                            m.line0,
                            1,
                            format!(
                                "stale suppression: `{}` no longer fires on this {scope}",
                                m.arg
                            ),
                            "delete the marker — a suppression that silences nothing will \
                             silently re-license the next real violation",
                        );
                    }
                }
            }
        }
    }
}
