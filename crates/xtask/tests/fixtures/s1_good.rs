//! Known-good twin of `s1_bad.rs`: the suppression is *live* — D1 really
//! does fire on this file's `HashMap` uses, so the marker is doing work
//! and S1 leaves it alone.

// dcart_lint::allow_file(D1) -- fixture exercises a justified, live suppression
use std::collections::HashMap;

pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}
