//! Offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Implements `to_string`, `to_string_pretty`, and `from_str` over the serde
//! stub's self-describing `Content` tree: serialization builds a `Content`
//! and prints it; deserialization parses JSON text into a `Content` and then
//! decodes the target type out of it.

use std::fmt;

use serde::__private::{from_content, to_content, Content};
use serde::de::Deserialize;
use serde::ser::Serialize;

/// Error produced by JSON serialization or deserialization.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

/// Convenience alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error if the value's `Serialize` impl fails.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let content = to_content::<T, Error>(value)?;
    let mut out = String::new();
    print_compact(&content, &mut out);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Returns an error if the value's `Serialize` impl fails.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let content = to_content::<T, Error>(value)?;
    let mut out = String::new();
    print_pretty(&content, 0, &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a type mismatch.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    from_content(content)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn print_compact(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(n) => print_f64(*n, out),
        Content::Str(s) => print_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_key(k, out);
                out.push(':');
                print_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn print_pretty(content: &Content, indent: usize, out: &mut String) {
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                print_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                print_key(k, out);
                out.push_str(": ");
                print_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => print_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// JSON object keys must be strings; non-string map keys (integers) are
/// stringified, matching real serde_json's integer-key behavior.
fn print_key(key: &Content, out: &mut String) {
    match key {
        Content::Str(s) => print_string(s, out),
        Content::U64(n) => print_string(&n.to_string(), out),
        Content::I64(n) => print_string(&n.to_string(), out),
        Content::Bool(b) => print_string(if *b { "true" } else { "false" }, out),
        other => {
            let mut inner = String::new();
            print_compact(other, &mut inner);
            print_string(&inner, out);
        }
    }
}

fn print_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        // JSON has no NaN/Infinity; real serde_json emits null.
        out.push_str("null");
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: format!("{msg} at byte {}", self.pos) }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let chunk =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Content::F64).map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            stripped
                .parse::<u64>()
                .map(|v| Content::I64(-(v as i64)))
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&"hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1u8, "a".to_string()), (2, "b".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,\"a\"],[2,\"b\"]]");
        let back: Vec<(u8, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn options_and_null() {
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u8)).unwrap(), "3");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u8>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_print_shape() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("nope").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
    }
}
