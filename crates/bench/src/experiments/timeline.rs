//! Fig. 6 — the PCU/SOU batch-overlap timeline, rendered.
//!
//! The paper's Fig. 6 shows combining of batch *i+1* hidden under operating
//! of batch *i*. This exhibit runs the accelerator twice (overlap on/off)
//! and draws the resulting schedules as ASCII Gantt rows, one per batch,
//! with the measured cycle savings.

use std::path::Path;

use dcart::{BatchTiming, DcartAccel, DcartConfig};
use dcart_baselines::{IndexEngine, RunConfig};
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale};

/// One batch's scheduled intervals (cycles).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScheduledBatch {
    /// PCU combine start.
    pub pcu_start: u64,
    /// PCU combine end.
    pub pcu_end: u64,
    /// SOU operate start.
    pub sou_start: u64,
    /// SOU operate end.
    pub sou_end: u64,
}

/// Full timeline report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Schedule with overlap enabled (Fig. 6's lower timeline).
    pub overlapped: Vec<ScheduledBatch>,
    /// Schedule without overlap (Fig. 6's upper timeline).
    pub sequential: Vec<ScheduledBatch>,
    /// Total cycles with overlap.
    pub overlapped_cycles: u64,
    /// Total cycles without.
    pub sequential_cycles: u64,
}

/// Rebuilds the schedule from per-batch timings, mirroring the
/// accelerator's own assembly.
fn schedule(batches: &[BatchTiming], overlap: bool) -> Vec<ScheduledBatch> {
    let mut out = Vec::new();
    let mut pcu_done = 0u64;
    let mut sou_end = 0u64;
    for b in batches {
        let (pcu_start, pcu_end, sou_start);
        if overlap {
            pcu_start = pcu_done;
            pcu_end = pcu_done + b.pcu_cycles;
            pcu_done = pcu_end;
            sou_start = pcu_end.max(sou_end);
        } else {
            pcu_start = sou_end;
            pcu_end = pcu_start + b.pcu_cycles;
            sou_start = pcu_end;
        }
        sou_end = sou_start + b.sou_cycles;
        out.push(ScheduledBatch { pcu_start, pcu_end, sou_start, sou_end });
    }
    out
}

fn draw(schedule: &[ScheduledBatch], label: &str) {
    let total = schedule.last().map_or(1, |b| b.sou_end);
    const WIDTH: usize = 64;
    let scale = |c: u64| (c as usize * WIDTH / total as usize).min(WIDTH);
    println!("{label} (total {total} cycles)");
    for (i, b) in schedule.iter().enumerate().take(8) {
        let mut row = vec![' '; WIDTH + 1];
        for cell in row.iter_mut().take(scale(b.pcu_end)).skip(scale(b.pcu_start)) {
            *cell = 'C'; // combining
        }
        for cell in row.iter_mut().take(scale(b.sou_end)).skip(scale(b.sou_start)) {
            *cell = 'O'; // operating
        }
        println!("  batch {i}: |{}|", row.into_iter().collect::<String>());
    }
    if schedule.len() > 8 {
        println!("  ... ({} more batches)", schedule.len() - 8);
    }
}

/// Runs the timeline exhibit and writes `timeline.json`.
pub fn run(scale: &Scale, out_dir: &Path) -> TimelineReport {
    println!("== Fig. 6: overlap of combining (C) and operating (O) ==");
    let keys = Workload::Ipgeo.generate(scale.keys.min(20_000), scale.seed);
    let ops = generate_ops(
        &keys,
        &OpStreamConfig {
            count: scale.ops.min(120_000),
            mix: Mix::C,
            theta: 0.99,
            seed: scale.seed,
        },
    );
    let run_cfg = RunConfig { concurrency: 16_384 };
    let base = DcartConfig::default().scaled_for_keys(keys.len()).with_auto_prefix_skip(&keys);

    // The overlap-on and overlap-off runs are independent cells.
    let mut schedules = crate::parallel::par_map(vec![true, false], |overlap| {
        let mut cfg = base;
        cfg.overlap_enabled = overlap;
        let mut engine = DcartAccel::new(cfg);
        engine.run(&keys, &ops, &run_cfg);
        schedule(&engine.last_details().batches, overlap)
    });
    let sequential = schedules.pop().expect("two cells");
    let overlapped = schedules.pop().expect("two cells");
    let overlapped_cycles = overlapped.last().map_or(0, |b| b.sou_end);
    let sequential_cycles = sequential.last().map_or(0, |b| b.sou_end);

    draw(&sequential, "without overlap");
    println!();
    draw(&overlapped, "with overlap (paper Fig. 6)");
    println!(
        "\noverlap hides {} of {} cycles ({:.1} % saved)\n",
        sequential_cycles.saturating_sub(overlapped_cycles),
        sequential_cycles,
        (1.0 - overlapped_cycles as f64 / sequential_cycles as f64) * 100.0
    );

    let report = TimelineReport { overlapped, sequential, overlapped_cycles, sequential_cycles };
    write_report(out_dir, "timeline", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_schedule_is_legal_and_faster() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-timeline-test");
        let r = run(&scale, &tmp);
        assert!(r.overlapped_cycles < r.sequential_cycles);
        assert_eq!(r.overlapped.len(), r.sequential.len());
        for (i, b) in r.overlapped.iter().enumerate() {
            // A batch operates only after it combines.
            assert!(b.sou_start >= b.pcu_end, "batch {i}");
            // The single PCU never combines two batches at once.
            if i > 0 {
                assert!(b.pcu_start >= r.overlapped[i - 1].pcu_end, "batch {i}");
                // The 16 SOUs process batches in order.
                assert!(b.sou_start >= r.overlapped[i - 1].sou_end, "batch {i}");
            }
        }
        // Overlap actually happens: some batch combines while the previous
        // batch operates.
        let hidden = r.overlapped.windows(2).any(|w| w[1].pcu_start < w[0].sou_end);
        assert!(hidden, "no combining was hidden under operating");
    }
}
