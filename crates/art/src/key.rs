//! Binary-comparable, prefix-free key encodings.
//!
//! An [adaptive radix tree](crate::Art) stores keys as byte strings and
//! compares them bytewise, so every key type must first be transformed into a
//! *binary-comparable* encoding: one whose bytewise order equals the logical
//! order of the original values. In addition, radix trees require the key set
//! to be *prefix-free* — no key may be a strict prefix of another — because a
//! key that ends in the middle of an inner node has no child slot to occupy.
//!
//! The constructors on [`Key`] produce encodings with both properties:
//!
//! * fixed-width big-endian integers ([`Key::from_u32`], [`Key::from_u64`])
//!   are binary-comparable and, being fixed width, trivially prefix-free;
//! * strings ([`Key::from_str_bytes`]) get a terminating `0` byte appended,
//!   which makes any set of `0`-free strings prefix-free while preserving
//!   lexicographic order.
//!
//! [`Key::from_raw`] performs no transformation and is for callers that
//! guarantee the two properties themselves.

use std::fmt;
use std::sync::Arc;

/// A byte-string key in binary-comparable, prefix-free form.
///
/// The encoded bytes are reference-counted, so [`Clone`] is O(1) and does
/// not copy the bytes: the bulk-load and op-replay hot paths clone every
/// key once into the tree, and sharing the allocation keeps that free.
///
/// # Examples
///
/// ```
/// use dcart_art::Key;
///
/// let a = Key::from_u64(1);
/// let b = Key::from_u64(256);
/// // Big-endian encoding preserves integer order under bytewise comparison.
/// assert!(a.as_bytes() < b.as_bytes());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct Key(Arc<[u8]>);

impl Key {
    /// Creates a key from raw bytes without any transformation.
    ///
    /// The caller is responsible for ensuring that the resulting key set is
    /// prefix-free; inserting a key that is a strict prefix of an existing
    /// key (or vice versa) makes [`Art::insert`](crate::Art::insert) return
    /// [`ArtError::PrefixViolation`](crate::ArtError::PrefixViolation).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty: the empty key is a prefix of every key.
    pub fn from_raw(bytes: impl Into<Box<[u8]>>) -> Self {
        let bytes = bytes.into();
        assert!(!bytes.is_empty(), "keys must be non-empty");
        Key(Arc::from(bytes))
    }

    /// Encodes a `u32` as a 4-byte big-endian key.
    pub fn from_u32(v: u32) -> Self {
        Key(Arc::from(v.to_be_bytes()))
    }

    /// Encodes a `u64` as an 8-byte big-endian key.
    ///
    /// This is the encoding used by the paper's synthetic workloads (50 M
    /// dense/sparse 8-byte integer keys).
    pub fn from_u64(v: u64) -> Self {
        Key(Arc::from(v.to_be_bytes()))
    }

    /// Encodes a `u128` as a 16-byte big-endian key.
    pub fn from_u128(v: u128) -> Self {
        Key(Arc::from(v.to_be_bytes()))
    }

    /// Encodes an `i64` as an order-preserving 8-byte key: flipping the
    /// sign bit maps the signed range onto the unsigned range
    /// monotonically, so bytewise order equals numeric order.
    pub fn from_i64(v: i64) -> Self {
        Key(Arc::from(((v as u64) ^ (1 << 63)).to_be_bytes()))
    }

    /// Encodes an `f64` as an order-preserving 8-byte key (IEEE-754 total
    /// order): positive floats get their sign bit flipped, negative floats
    /// are wholly inverted.
    ///
    /// `NaN` sorts above every number (sign-positive NaNs) or below
    /// (sign-negative NaNs), matching `f64::total_cmp`.
    pub fn from_f64(v: f64) -> Self {
        let bits = v.to_bits();
        let ordered = if bits >> 63 == 0 { bits ^ (1 << 63) } else { !bits };
        Key(Arc::from(ordered.to_be_bytes()))
    }

    /// Encodes an IPv4 address as a 4-byte key (network byte order).
    pub fn from_ipv4(octets: [u8; 4]) -> Self {
        Key(Arc::from(octets))
    }

    /// Encodes a string as a NUL-terminated byte key.
    ///
    /// The appended terminator makes any set of NUL-free strings prefix-free
    /// while preserving lexicographic order, exactly as recommended by the
    /// original ART paper.
    ///
    /// # Panics
    ///
    /// Panics if `s` contains an interior NUL byte, which would break the
    /// prefix-free guarantee.
    pub fn from_str_bytes(s: &str) -> Self {
        assert!(!s.as_bytes().contains(&0), "string keys must not contain NUL bytes");
        let mut v = Vec::with_capacity(s.len() + 1);
        v.extend_from_slice(s.as_bytes());
        v.push(0);
        Key(Arc::from(v))
    }

    /// Returns the encoded bytes of this key.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns the encoded length in bytes.
    #[allow(clippy::len_without_is_empty)] // keys are never empty by construction
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Decodes a key produced by [`Key::from_u64`] back into the integer.
    ///
    /// Returns `None` if the key is not exactly 8 bytes long.
    pub fn to_u64(&self) -> Option<u64> {
        let bytes: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }

    /// Returns the leading `bits` of the key as a prefix identifier,
    /// zero-extended on the right if the key is shorter.
    ///
    /// DCART's Prefix-based Combining Unit buckets operations by such a
    /// prefix (8 bits by default — the first byte).
    pub fn prefix_bits(&self, bits: u32) -> u64 {
        self.prefix_bits_at(0, bits)
    }

    /// Like [`Key::prefix_bits`], but starting `skip_bytes` into the key.
    ///
    /// Fixed-width integer key sets often share a constant high-byte run
    /// (e.g. 8-byte big-endian keys below 2^56 all start with `0x00`), under
    /// which a byte-0 prefix degenerates to a single combining bucket. The
    /// host driver programs the skip to the key set's common-prefix length
    /// so the combining prefix starts at the first discriminating byte.
    pub fn prefix_bits_at(&self, skip_bytes: usize, bits: u32) -> u64 {
        debug_assert!(
            bits <= 64 && bits.is_multiple_of(4),
            "prefix width must be <= 64 and nibble-aligned"
        );
        let nbytes = bits.div_ceil(8) as usize;
        let mut acc: u64 = 0;
        for i in 0..nbytes {
            acc = (acc << 8) | u64::from(self.0.get(skip_bytes + i).copied().unwrap_or(0));
        }
        if !bits.is_multiple_of(8) {
            acc >>= 8 - bits % 8;
        }
        acc
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key::from_u64(v)
    }
}

impl From<u32> for Key {
    fn from(v: u32) -> Self {
        Key::from_u32(v)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::from_str_bytes(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keys_are_binary_comparable() {
        let values = [0u64, 1, 2, 255, 256, 65535, 1 << 32, u64::MAX];
        for w in values.windows(2) {
            let (a, b) = (Key::from_u64(w[0]), Key::from_u64(w[1]));
            assert!(a.as_bytes() < b.as_bytes(), "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 42, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(Key::from_u64(v).to_u64(), Some(v));
        }
        assert_eq!(Key::from_u32(7).to_u64(), None);
    }

    #[test]
    fn i64_keys_are_order_preserving() {
        let values = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in values.windows(2) {
            let (a, b) = (Key::from_i64(w[0]), Key::from_i64(w[1]));
            assert!(a.as_bytes() < b.as_bytes(), "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn f64_keys_follow_total_order() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.5,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            let (a, b) = (Key::from_f64(w[0]), Key::from_f64(w[1]));
            // -0.0 and 0.0 are distinct under total order.
            assert!(a.as_bytes() < b.as_bytes(), "{} < {}", w[0], w[1]);
        }
        // NaN with a positive sign sorts above +inf (total order).
        assert!(Key::from_f64(f64::NAN).as_bytes() > Key::from_f64(f64::INFINITY).as_bytes());
    }

    #[test]
    fn u128_keys_are_binary_comparable() {
        let a = Key::from_u128(u128::from(u64::MAX));
        let b = Key::from_u128(u128::from(u64::MAX) + 1);
        assert!(a.as_bytes() < b.as_bytes());
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn string_keys_are_prefix_free() {
        let a = Key::from_str_bytes("abc");
        let b = Key::from_str_bytes("abcd");
        // The NUL terminator prevents `a` from being a prefix of `b`.
        assert!(!b.as_bytes().starts_with(a.as_bytes()));
        // ... while bytewise order still matches lexicographic order.
        assert!(a.as_bytes() < b.as_bytes());
    }

    #[test]
    #[should_panic(expected = "NUL")]
    fn interior_nul_rejected() {
        let _ = Key::from_str_bytes("a\0b");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_raw_key_rejected() {
        let _ = Key::from_raw(Vec::new());
    }

    #[test]
    fn prefix_bits_extracts_leading_bits() {
        let k = Key::from_raw(vec![0xab, 0xcd, 0xef]);
        assert_eq!(k.prefix_bits(8), 0xab);
        assert_eq!(k.prefix_bits(4), 0xa);
        assert_eq!(k.prefix_bits(16), 0xabcd);
        assert_eq!(k.prefix_bits(12), 0xabc);
    }

    #[test]
    fn prefix_bits_at_skips_constant_head() {
        let k = Key::from_u64(0x0000_0000_0012_3456);
        assert_eq!(k.prefix_bits(8), 0, "high byte is constant zero");
        assert_eq!(k.prefix_bits_at(5, 8), 0x12);
        assert_eq!(k.prefix_bits_at(5, 16), 0x1234);
    }

    #[test]
    fn prefix_bits_zero_extends_short_keys() {
        let k = Key::from_raw(vec![0x12]);
        assert_eq!(k.prefix_bits(16), 0x1200);
    }

    #[test]
    fn debug_is_hex() {
        let k = Key::from_raw(vec![0x01, 0xff]);
        assert_eq!(format!("{k:?}"), "Key(01 ff)");
    }

    #[test]
    fn clone_shares_the_encoded_bytes() {
        let a = Key::from_str_bytes("shared");
        let b = a.clone();
        // O(1) clone: both keys view the same reference-counted allocation.
        assert!(std::ptr::eq(a.as_bytes(), b.as_bytes()));
    }

    #[test]
    fn ipv4_key_orders_by_address() {
        let a = Key::from_ipv4([10, 0, 0, 1]);
        let b = Key::from_ipv4([10, 0, 1, 0]);
        assert!(a.as_bytes() < b.as_bytes());
    }
}
