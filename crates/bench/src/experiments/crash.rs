//! Crash-point recovery matrix: kill-at-every-interesting-offset proof of
//! crash consistency.
//!
//! For every (workload × SOU thread count) pair the matrix first runs the
//! stream durably and uninterrupted — asserting its digests match the plain
//! (non-durable) executor — while a counting [`CrashInjector`] enumerates
//! how many times each [`CrashSite`] window opens. It then sweeps the
//! matrix: for each site, at the first / middle / last opportunity, a fresh
//! directory gets a run that *dies* exactly there (torn bytes and all),
//! followed by a restart that recovers and finishes. A cell passes only if
//! the planned crash actually fired and the restarted run's answer and
//! final-tree digests are bit-identical to the uninterrupted run. Any
//! divergence aborts the process after `BENCH_crash.json` is written.

use std::path::{Path, PathBuf};

use dcart::{
    run_durable, tree_digest, try_execute_ctt_threaded, CrashInjector, CrashPlan, CrashSite,
    CttConsumer, DcartConfig, DurabilityConfig, PersistStats,
};
use dcart_art::Art;
use dcart_workloads::{generate_ops, KeySet, Mix, Op, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// One (workload × threads × site × offset) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrashCell {
    /// Workload name, e.g. "IPGEO".
    pub workload: String,
    /// SOU worker threads used for both the crashed and the resumed run.
    pub sou_threads: usize,
    /// Crash site name (kebab-case, from [`CrashSite::name`]).
    pub site: String,
    /// Which opportunity the crash fired at (0-based).
    pub at: u64,
    /// How many times this site's window opened in the uninterrupted run.
    pub opportunities: u64,
    /// Whether the planned crash fired (it must).
    pub crashed: bool,
    /// Batches the crashed run committed before dying.
    pub committed_before_crash: u64,
    /// Torn WAL bytes the restart truncated.
    pub torn_bytes: u64,
    /// Committed batches the restart replayed from the WAL.
    pub replayed_batches: u64,
    /// Whether the restarted run's answer and tree digests are
    /// bit-identical to the uninterrupted run.
    pub digests_match: bool,
    /// Write amplification of the resumed run (persisted / payload bytes).
    pub write_amplification: f64,
}

/// Full crash-matrix report (`BENCH_crash.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrashReport {
    /// All matrix cells.
    pub cells: Vec<CrashCell>,
    /// Cells whose digests diverged (must be zero; the run panics
    /// otherwise).
    pub divergences: usize,
    /// Cells whose planned crash never fired (must be zero).
    pub misfires: usize,
    /// Persistence-traffic accounting summed over every cell.
    pub persist_total: PersistStats,
}

/// Caps so the matrix stays minutes even at the `full` preset — each cell
/// is two complete runs and there are ~90 cells.
fn matrix_scale(scale: &Scale) -> (usize, usize, usize) {
    (scale.keys.min(20_000), scale.ops.min(60_000), scale.concurrency.min(8_192))
}

struct Sink;
impl CttConsumer for Sink {}

/// Uninterrupted digests straight from the executor (no durability layer).
fn plain_reference(
    keys: &KeySet,
    ops: &[Op],
    config: &DcartConfig,
    batch: usize,
    threads: usize,
) -> (u64, u64) {
    let (tree, stats): (Art<u64>, _) =
        try_execute_ctt_threaded(keys, ops, config, batch, threads, &mut Sink)
            .expect("reference execution");
    (stats.answer_digest, tree_digest(&tree))
}

fn cell_dir(root: &Path, wname: &str, threads: usize, site: CrashSite, at: u64) -> PathBuf {
    root.join(format!("{wname}-t{threads}-{}-{at}", site.name()))
}

/// First / middle / last opportunity of a site (0-based), deduplicated.
fn offsets(opportunities: u64) -> Vec<u64> {
    let last = opportunities.saturating_sub(1);
    let mut offs = vec![0, last / 2, last];
    offs.sort_unstable();
    offs.dedup();
    offs
}

/// Runs the crash-point matrix and writes `BENCH_crash.json`.
///
/// # Panics
///
/// Panics if any cell's planned crash fails to fire, or if any restarted
/// run's digests diverge from the uninterrupted run — the report is
/// written first so the failing cell can be inspected.
pub fn run(scale: &Scale, out_dir: &Path) -> CrashReport {
    println!("== Crash matrix: recovery must be digest-identical at every crash point ==");
    let (n_keys, n_ops, batch) = matrix_scale(scale);
    let workloads =
        [(Workload::Ipgeo, "IPGEO"), (Workload::Dict, "DICT"), (Workload::DenseInt, "DENSE-INT")];
    let scratch = std::env::temp_dir().join(format!("dcart-crash-matrix-{}", scale.seed));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut cells: Vec<(CrashCell, PersistStats)> = Vec::new();
    for (workload, wname) in workloads {
        let config = DcartConfig::default().scaled_for_keys(n_keys);
        let keys = workload.generate(n_keys, scale.seed);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: n_ops, mix: Mix::C, theta: 0.99, seed: scale.seed },
        );
        let dur_of =
            |dir: PathBuf| DurabilityConfig { dir, checkpoint_every: 3, sync_commits: true };

        for threads in [1usize, 2] {
            // Uninterrupted durable run: establishes the reference digests
            // and counts every site's crash opportunities.
            let (plain_answer, plain_tree) = plain_reference(&keys, &ops, &config, batch, threads);
            let ref_dir = scratch.join(format!("{wname}-t{threads}-reference"));
            let mut counting = CrashInjector::counting();
            let reference =
                run_durable(&keys, &ops, &config, batch, threads, &dur_of(ref_dir), &mut counting)
                    .expect("uninterrupted durable run");
            assert_eq!(reference.crashed, None);
            assert_eq!(
                (reference.answer_digest, reference.tree_digest),
                (plain_answer, plain_tree),
                "{wname} t{threads}: durable run diverged from the plain executor"
            );

            let mut plans: Vec<(CrashSite, u64, u64)> = Vec::new();
            for site in CrashSite::ALL {
                let opps = counting.opportunities(site);
                assert!(opps > 0, "{wname} t{threads}: site {} never opened", site.name());
                for at in offsets(opps) {
                    plans.push((site, at, opps));
                }
            }

            let done = crate::parallel::par_map(plans, |(site, at, opps)| {
                let dir = cell_dir(&scratch, wname, threads, site, at);
                let dur = dur_of(dir);
                let seed = scale.seed ^ (at << 8) ^ site.index() as u64;
                let mut crash = CrashInjector::for_plan(CrashPlan { site, at, seed });
                let crashed = run_durable(&keys, &ops, &config, batch, threads, &dur, &mut crash)
                    .expect("injected crashes are Ok outcomes, real errors are not");
                // Restart: recover from the directory and run to completion.
                let mut none = CrashInjector::counting();
                let resumed = run_durable(&keys, &ops, &config, batch, threads, &dur, &mut none)
                    .expect("restart after crash");
                let mut persist = crashed.persist;
                persist.accumulate(&resumed.persist);
                let cell = CrashCell {
                    workload: wname.to_string(),
                    sou_threads: threads,
                    site: site.name().to_string(),
                    at,
                    opportunities: opps,
                    crashed: crashed.crashed == Some(site),
                    committed_before_crash: crashed.batches_committed,
                    torn_bytes: resumed.torn_bytes,
                    replayed_batches: resumed.replayed_batches,
                    digests_match: resumed.crashed.is_none()
                        && resumed.answer_digest == plain_answer
                        && resumed.tree_digest == plain_tree,
                    write_amplification: resumed.persist.write_amplification(),
                };
                (cell, persist)
            });
            cells.extend(done);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let mut persist_total = PersistStats::default();
    for (_, p) in &cells {
        persist_total.accumulate(p);
    }
    let cells: Vec<CrashCell> = cells.into_iter().map(|(c, _)| c).collect();

    let mut t = Table::new(&[
        "workload",
        "threads",
        "site",
        "at",
        "opps",
        "committed",
        "torn B",
        "replayed",
        "match",
    ]);
    for c in &cells {
        t.row(&[
            c.workload.clone(),
            c.sou_threads.to_string(),
            c.site.clone(),
            format!("{}/{}", c.at, c.opportunities),
            c.opportunities.to_string(),
            c.committed_before_crash.to_string(),
            c.torn_bytes.to_string(),
            c.replayed_batches.to_string(),
            if c.crashed && c.digests_match { "ok".into() } else { "FAIL".into() },
        ]);
    }
    t.print();
    println!();

    let divergences = cells.iter().filter(|c| !c.digests_match).count();
    let misfires = cells.iter().filter(|c| !c.crashed).count();
    let report = CrashReport { cells, divergences, misfires, persist_total };
    write_report(out_dir, "BENCH_crash", &report);

    // Enforce the contract only after the report is on disk.
    assert_eq!(report.misfires, 0, "a planned crash never fired");
    assert_eq!(report.divergences, 0, "crash recovery changed answers or tree state");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_matrix_recovers_every_cell_at_smoke_scale() {
        let scale = Scale { seed: 77, ..Scale::smoke() };
        let tmp = std::env::temp_dir().join("dcart-crash-test");
        // `run` already asserts firing + digest identity per cell.
        let r = run(&scale, &tmp);
        assert_eq!(r.divergences, 0);
        assert_eq!(r.misfires, 0);
        // 3 workloads × 2 thread counts × 5 sites × ≥1 offset.
        assert!(r.cells.len() >= 30, "expected a full matrix, got {}", r.cells.len());
        assert!(
            r.cells.iter().any(|c| c.torn_bytes > 0),
            "at least one cell must exercise torn-tail truncation"
        );
        assert!(
            r.cells.iter().any(|c| c.replayed_batches > 0),
            "at least one cell must exercise WAL replay"
        );
        let sites: std::collections::BTreeSet<&str> =
            r.cells.iter().map(|c| c.site.as_str()).collect();
        assert_eq!(sites.len(), 5, "all five crash sites covered: {sites:?}");
    }
}
