// Fixture: D1 must fire on default-hasher std tables.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn histogram(xs: &[u8]) -> HashMap<u8, u64> {
    let mut m = HashMap::new();
    let mut seen: HashSet<u8> = HashSet::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
        seen.insert(x);
    }
    m
}
