//! Latency percentiles and open-loop queueing, for the throughput–latency
//! curves of the paper's Fig. 10 — plus the lock-free work queue the SOU
//! pool's stealing workers drain ([`StealQueue`]).

// Under `--features loom` the queue runs on the vendored loom model
// checker's primitives (see vendor/loom and tests/loom.rs); outside a
// loom::model call they are passthroughs to std.
#[cfg(feature = "loom")]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A fixed-population work queue with owner-pop and steal-half ends, the
/// per-worker deque of the stealing SOU pool
/// (`dcart_engine::par_for_each_mut_balanced`).
///
/// The item population is fixed at construction (a batch's work list is
/// known up front), so the whole queue state is one live window
/// `items[head..tail]` packed into a single `AtomicU64` (`head` in the
/// high 32 bits, `tail` in the low 32). The owner claims one item from the
/// tail, a thief claims the *front half* in one shot; either claim is a
/// single compare-exchange on the packed window, so no item can ever be
/// lost or handed out twice, and there is no ABA hazard because `head`
/// only grows and `tail` only shrinks. Everything here is safe code — the
/// items vector is immutable and claims return disjoint index ranges.
///
/// This is the chase-lev shape specialized to a fixed population: no
/// owner-side push, which is exactly what removes the classic top/bottom
/// race the original algorithm needs fences for.
///
/// # Examples
///
/// ```
/// use dcart_engine::StealQueue;
///
/// let q = StealQueue::new(vec![7, 8, 9]);
/// assert_eq!(q.steal_half(), Some(&[7, 8][..]), "thief takes the front half (rounded up)");
/// assert_eq!(q.pop(), Some(9), "owner pops from the tail");
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct StealQueue {
    items: Vec<u32>,
    /// `head` (high 32 bits) and `tail` (low 32): the unclaimed window is
    /// `items[head..tail]`.
    state: AtomicU64,
}

impl StealQueue {
    /// Creates a queue owning `items`; every item is initially unclaimed.
    ///
    /// # Panics
    ///
    /// Panics if `items` exceeds the 32-bit window (the pool hands a queue
    /// at most one work item per shard).
    pub fn new(items: Vec<u32>) -> Self {
        assert!(items.len() <= u32::MAX as usize, "queue population exceeds the 32-bit window");
        let tail = items.len() as u64;
        StealQueue { items, state: AtomicU64::new(tail) }
    }

    fn window(state: u64) -> (u64, u64) {
        (state >> 32, state & u64::from(u32::MAX))
    }

    /// Unclaimed items remaining (racy by nature: a concurrent claim can
    /// shrink it immediately; used only to pick steal victims, where a
    /// stale answer costs one wasted retry, never correctness).
    pub fn len(&self) -> usize {
        let (head, tail) = Self::window(self.state.load(Ordering::Acquire));
        tail.saturating_sub(head) as usize
    }

    /// Whether no unclaimed items remain (racy; see [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner end: claims the item at the tail of the window, or `None`
    /// once the queue is drained.
    pub fn pop(&self) -> Option<u32> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = Self::window(cur);
            if head >= tail {
                return None;
            }
            match self.state.compare_exchange(
                cur,
                (head << 32) | (tail - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(self.items[(tail - 1) as usize]),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief end: claims the front *half* of the window (rounded up, so a
    /// single remaining item is still stealable) in one compare-exchange.
    /// Returns the claimed items, or `None` if the queue was empty.
    ///
    /// The returned slice borrows the queue's immutable item store; the
    /// successful claim guarantees no other caller will ever receive these
    /// indices again.
    pub fn steal_half(&self) -> Option<&[u32]> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = Self::window(cur);
            if head >= tail {
                return None;
            }
            let take = (tail - head).div_ceil(2);
            match self.state.compare_exchange(
                cur,
                ((head + take) << 32) | tail,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(&self.items[head as usize..(head + take) as usize]),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Records per-operation latencies and reports percentiles.
///
/// # Examples
///
/// ```
/// use dcart_engine::LatencyRecorder;
///
/// let mut rec = LatencyRecorder::new();
/// for l in 1..=100u64 {
///     rec.record(l as f64);
/// }
/// assert_eq!(rec.percentile(0.99), 99.0);
/// assert_eq!(rec.percentile(0.50), 50.0);
/// ```
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (any consistent unit).
    pub fn record(&mut self, latency: f64) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (`p` in `(0, 1]`), by nearest-rank.
    ///
    /// Returns `0.0` for an empty recorder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "percentile must be in (0, 1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((p * self.samples.len() as f64).ceil() as usize).max(1);
        self.samples[rank - 1]
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Open-loop M/D/c queueing estimate of waiting time.
///
/// For the Fig. 10 throughput–latency sweep we treat each engine as `c`
/// deterministic servers with mean service time `service`: as the offered
/// rate approaches capacity, queueing delay grows without bound. Uses the
/// standard M/D/1 waiting-time formula per server after splitting arrivals.
///
/// Returns `None` when the system is saturated (`rate >= c / service`).
pub fn mdc_wait(rate: f64, service: f64, servers: f64) -> Option<f64> {
    assert!(rate >= 0.0 && service > 0.0 && servers >= 1.0);
    let per_server_rate = rate / servers;
    let rho = per_server_rate * service;
    if rho >= 1.0 {
        return None;
    }
    // M/D/1: Wq = ρ · s / (2(1 − ρ)).
    Some(rho * service / (2.0 * (1.0 - rho)))
}

/// Why an admission controller turned a request away. The serving layer
/// returns these to clients verbatim (with a bounded retry hint), so the
/// set is a wire-visible contract: variants are appended, never reordered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RejectReason {
    /// The admission queue was full; retry after the hinted backoff.
    Overloaded,
    /// The request's deadline expired (or its budget could not survive
    /// the configured queueing delay) — executing it would only produce
    /// an answer nobody is waiting for.
    DeadlineExceeded,
    /// Graceful degradation under sustained overload sheds scans first:
    /// they are the widest operations and no client has been promised one.
    ShedScan,
    /// The second degradation stage sheds point reads too. Writes are
    /// never shed once admitted — an acknowledged write is durable.
    ShedRead,
    /// The server is draining (SIGINT or a shutdown frame): in-flight
    /// batches flush, new work is turned away.
    Draining,
}

impl RejectReason {
    /// Stable wire code (`u8`), appended-only.
    pub fn code(self) -> u8 {
        match self {
            RejectReason::Overloaded => 0,
            RejectReason::DeadlineExceeded => 1,
            RejectReason::ShedScan => 2,
            RejectReason::ShedRead => 3,
            RejectReason::Draining => 4,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(RejectReason::Overloaded),
            1 => Some(RejectReason::DeadlineExceeded),
            2 => Some(RejectReason::ShedScan),
            3 => Some(RejectReason::ShedRead),
            4 => Some(RejectReason::Draining),
            _ => None,
        }
    }

    /// Human-readable label (report JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Overloaded => "overloaded",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::ShedScan => "shed_scan",
            RejectReason::ShedRead => "shed_read",
            RejectReason::Draining => "draining",
        }
    }
}

/// A bounded FIFO occupancy model with overflow accounting, used to model
/// queue-overflow backpressure: arrivals beyond the free space are rejected
/// and must be re-offered after the queue drains, costing stall cycles.
///
/// This is an occupancy counter, not an element store — items are
/// indistinguishable, only depth matters for timing.
#[derive(Clone, Debug)]
pub struct BoundedQueue {
    capacity: u64,
    depth: u64,
    overflows: u64,
    rejected: u64,
}

impl BoundedQueue {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "a queue needs nonzero capacity");
        BoundedQueue { capacity, depth: 0, overflows: 0, rejected: 0 }
    }

    /// Offers `items` arrivals at once; accepts up to the free space and
    /// returns the number rejected (the overflow). A nonzero overflow
    /// increments the overflow-event counter once.
    pub fn offer(&mut self, items: u64) -> u64 {
        let free = self.capacity - self.depth;
        let accepted = items.min(free);
        self.depth += accepted;
        let over = items - accepted;
        if over > 0 {
            self.overflows += 1;
            self.rejected += over;
        }
        over
    }

    /// Drains up to `items` from the queue, returning how many were removed.
    pub fn drain(&mut self, items: u64) -> u64 {
        let removed = items.min(self.depth);
        self.depth -= removed;
        removed
    }

    /// Current occupancy.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Number of offers that overflowed (≥ 1 rejection).
    pub fn overflow_events(&self) -> u64 {
        self.overflows
    }

    /// Total items rejected across all offers.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Admits exactly one arrival, or reports why it cannot: the typed
    /// single-request front door the serving layer's admission control is
    /// built on. Equivalent to `offer(1)` with a [`RejectReason`] instead
    /// of an overflow count.
    pub fn admit_one(&mut self) -> Result<(), RejectReason> {
        if self.offer(1) == 0 {
            Ok(())
        } else {
            Err(RejectReason::Overloaded)
        }
    }

    /// Capacity the queue was created with.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_accepts_until_full_then_overflows() {
        let mut q = BoundedQueue::new(10);
        assert_eq!(q.offer(6), 0);
        assert_eq!(q.offer(6), 2, "only 4 slots free");
        assert_eq!(q.depth(), 10);
        assert_eq!(q.overflow_events(), 1);
        assert_eq!(q.rejected(), 2);
        assert_eq!(q.drain(7), 7);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.offer(3), 0);
        assert_eq!(q.overflow_events(), 1, "no new overflow");
    }

    #[test]
    fn bounded_queue_drain_caps_at_depth() {
        let mut q = BoundedQueue::new(4);
        q.offer(2);
        assert_eq!(q.drain(100), 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.record(v);
        }
        assert_eq!(r.percentile(0.2), 1.0);
        assert_eq!(r.percentile(0.5), 3.0);
        assert_eq!(r.percentile(1.0), 5.0);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn empty_is_zero() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.percentile(0.99), 0.0);
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    fn mean_is_arithmetic() {
        let mut r = LatencyRecorder::new();
        r.record(2.0);
        r.record(4.0);
        assert_eq!(r.mean(), 3.0);
    }

    #[test]
    fn recording_after_percentile_stays_correct() {
        let mut r = LatencyRecorder::new();
        r.record(10.0);
        assert_eq!(r.percentile(1.0), 10.0);
        r.record(1.0);
        assert_eq!(r.percentile(0.5), 1.0);
    }

    #[test]
    fn wait_grows_toward_saturation() {
        let s = 1.0;
        let low = mdc_wait(0.1, s, 1.0).unwrap();
        let high = mdc_wait(0.9, s, 1.0).unwrap();
        assert!(high > 10.0 * low);
        assert_eq!(mdc_wait(1.0, s, 1.0), None, "saturated");
    }

    #[test]
    fn more_servers_reduce_wait() {
        let one = mdc_wait(0.8, 1.0, 1.0).unwrap();
        let many = mdc_wait(0.8, 1.0, 16.0).unwrap();
        assert!(many < one);
    }

    #[test]
    fn steal_queue_pop_drains_back_to_front() {
        let q = StealQueue::new(vec![1, 2, 3]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn steal_queue_steal_takes_front_half_rounded_up() {
        let q = StealQueue::new(vec![10, 11, 12, 13, 14]);
        assert_eq!(q.steal_half(), Some(&[10, 11, 12][..]), "5 items: thief takes 3");
        assert_eq!(q.steal_half(), Some(&[13][..]), "2 left: thief takes 1");
        assert_eq!(q.pop(), Some(14));
        assert_eq!(q.steal_half(), None);
    }

    #[test]
    fn steal_queue_single_item_goes_to_whoever_claims_first() {
        let q = StealQueue::new(vec![42]);
        assert_eq!(q.steal_half(), Some(&[42][..]), "a lone item is stealable");
        assert_eq!(q.pop(), None);

        let q = StealQueue::new(vec![42]);
        assert_eq!(q.pop(), Some(42));
        assert_eq!(q.steal_half(), None);
    }

    #[test]
    fn steal_queue_empty_population() {
        let q = StealQueue::new(Vec::new());
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal_half(), None);
    }

    #[test]
    fn steal_queue_claims_are_disjoint_and_complete_under_contention() {
        // Real threads (not loom — that model lives in tests/loom.rs):
        // one owner popping, two thieves stealing halves, every item
        // claimed exactly once.
        let q = std::sync::Arc::new(StealQueue::new((0..1000).collect()));
        let claimed = std::sync::Mutex::new(Vec::<u32>::new());
        std::thread::scope(|s| {
            for worker in 0..3 {
                let q = std::sync::Arc::clone(&q);
                let claimed = &claimed;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    if worker == 0 {
                        while let Some(i) = q.pop() {
                            mine.push(i);
                        }
                    } else {
                        while let Some(batch) = q.steal_half() {
                            mine.extend_from_slice(batch);
                        }
                    }
                    claimed.lock().unwrap().extend(mine);
                });
            }
        });
        let mut all = claimed.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<u32>>());
    }
}
