//! DICT: a synthetic stand-in for the dwyl/english-words dictionary.
//!
//! ART behaviour on string keys is driven by the byte-level statistics of
//! the vocabulary — which first letters are common, which letter pairs
//! follow each other (branching factor), and the word-length distribution
//! (tree depth). A letter-bigram Markov chain over English-like frequencies
//! reproduces those statistics without shipping the word list.

use std::collections::BTreeSet;

use dcart_art::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::KeySet;

/// Relative first-letter frequencies of English headwords (a..z).
const START_FREQ: [f64; 26] = [
    11.7, 4.4, 5.2, 3.2, 2.8, 4.0, 1.6, 4.2, 7.3, 0.5, 0.9, 2.4, 3.8, 2.3, 7.6, 4.3, 0.2, 2.8, 6.7,
    16.0, 1.2, 0.8, 5.5, 0.1, 1.6, 0.3,
];

/// Simplified letter-transition affinities: for predecessor class
/// (vowel/consonant) and successor letter. Enough to give realistic
/// branching: vowels are followed by many consonants, `q` by `u`, etc.
fn transition_weight(prev: u8, next: u8) -> f64 {
    let vowels = b"aeiou";
    let is_vowel = |c: u8| vowels.contains(&c);
    if prev == b'q' {
        return if next == b'u' { 50.0 } else { 0.05 };
    }
    let base = START_FREQ[(next - b'a') as usize];
    match (is_vowel(prev), is_vowel(next)) {
        (true, false) => base * 1.8,  // vowel → consonant: common
        (false, true) => base * 2.2,  // consonant → vowel: common
        (true, true) => base * 0.5,   // vowel clusters: rarer
        (false, false) => base * 0.7, // consonant clusters: rarer
    }
}

fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        pick -= w;
        if pick <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn generate_word<R: Rng + ?Sized>(rng: &mut R) -> String {
    // Empirical English word-length distribution, mode ≈ 7–8 letters.
    let len_weights = [0.2, 1.0, 3.0, 6.0, 9.0, 10.5, 10.0, 8.5, 6.5, 4.5, 3.0, 1.8, 1.0, 0.5];
    let len = sample_weighted(&len_weights, rng) + 2; // 2..=15 letters
    let mut word = String::with_capacity(len);
    let first = b'a' + sample_weighted(&START_FREQ, rng) as u8;
    word.push(first as char);
    let mut prev = first;
    for _ in 1..len {
        let weights: Vec<f64> = (b'a'..=b'z').map(|c| transition_weight(prev, c)).collect();
        let next = b'a' + sample_weighted(&weights, rng) as u8;
        word.push(next as char);
        prev = next;
    }
    word
}

/// Generates the DICT key set: `n` unique English-like words plus an
/// insert pool of `n / 4`.
pub fn generate(n: usize, seed: u64) -> KeySet {
    assert!(n > 0, "key count must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1c7_0000);
    let want = n + n / 4;
    let mut words: BTreeSet<String> = BTreeSet::new();
    let mut attempts: u64 = 0;
    while words.len() < want {
        let mut w = generate_word(&mut rng);
        attempts += 1;
        // As the space of short words saturates, extend with a suffix
        // rather than spinning (mirrors compounds/inflections).
        if attempts > 4 * want as u64 {
            w.push_str(&generate_word(&mut rng));
        }
        words.insert(w);
    }
    let mut all: Vec<Key> = words.iter().map(|w| Key::from_str_bytes(w)).collect();
    use rand::seq::SliceRandom;
    all.shuffle(&mut rng);
    let insert_pool = all.split_off(n);
    // Lookup popularity is first-letter-correlated: dictionary traffic
    // concentrates on a few topical stems (Fig. 3 temporal similarity), so
    // hot first letters receive a further boost over their headword share.
    let mut weights = [0.0f64; 256];
    for (i, &w) in START_FREQ.iter().enumerate() {
        weights[(b'a' + i as u8) as usize] = w;
    }
    weights[b't' as usize] *= 3.5;
    weights[b's' as usize] *= 2.0;
    KeySet::with_prefix_weighted_popularity("DICT", all, insert_pool, &weights, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_sized() {
        let ks = generate(5_000, 11);
        assert_eq!(ks.keys.len(), 5_000);
        let set: BTreeSet<&[u8]> = ks.keys.iter().map(|k| k.as_bytes()).collect();
        assert_eq!(set.len(), 5_000);
    }

    #[test]
    fn words_are_lowercase_nul_terminated() {
        let ks = generate(500, 2);
        for k in &ks.keys {
            let b = k.as_bytes();
            assert_eq!(*b.last().unwrap(), 0);
            assert!(b[..b.len() - 1].iter().all(u8::is_ascii_lowercase));
        }
    }

    #[test]
    fn first_letter_distribution_is_skewed() {
        let ks = generate(20_000, 3);
        let mut counts = [0usize; 26];
        for k in &ks.keys {
            counts[(k.as_bytes()[0] - b'a') as usize] += 1;
        }
        // 's' and 'a' words must be far more common than 'x' words.
        assert!(counts[(b's' - b'a') as usize] > 10 * counts[(b'x' - b'a') as usize].max(1));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(300, 9).keys, generate(300, 9).keys);
    }

    #[test]
    fn hot_letters_dominate_top_ranks() {
        let ks = generate(20_000, 6);
        let top = ks.popularity.len() / 20;
        let hot_top = ks.popularity[..top]
            .iter()
            .filter(|&&i| matches!(ks.keys[i as usize].as_bytes()[0], b't' | b's'))
            .count();
        // 't' and 's' hold roughly half the boosted weight mass, so they
        // must clearly dominate the head without monopolizing it.
        assert!(
            hot_top * 100 / top > 30 && hot_top * 100 / top < 90,
            "hot letters hold {hot_top}/{top} of the head"
        );
    }

    #[test]
    fn q_is_followed_by_u() {
        let ks = generate(20_000, 4);
        let (mut qu, mut q_other) = (0, 0);
        for k in &ks.keys {
            let b = k.as_bytes();
            for pair in b.windows(2) {
                if pair[0] == b'q' && pair[1] != 0 {
                    if pair[1] == b'u' {
                        qu += 1;
                    } else {
                        q_other += 1;
                    }
                }
            }
        }
        assert!(qu > 5 * q_other.max(1), "qu={qu} q?={q_other}");
    }
}
