//! DCART: the cycle-level accelerator model (paper §III, Figs. 4–6).
//!
//! The model executes the CTT functional stream and charges hardware
//! timing:
//!
//! * the **PCU** combines one operation per cycle through its 3-stage
//!   pipeline (Scan_Operation → Get_Prefix → Combine_Operation);
//! * the **Dispatcher** hands each bucket table to its SOU;
//! * each **SOU** runs its bucket through the 4-stage pipeline
//!   (Index_Shortcut → Traverse_Tree → Trigger_Operation →
//!   Generate_Shortcut), with stage latencies determined by where the data
//!   lives: on-chip buffer hits cost pipeline cycles, misses cost HBM
//!   round-trips;
//! * the **Tree buffer** uses value-aware replacement with node values set
//!   to the per-batch bucket operation counts (§III-E), the Shortcut
//!   buffer uses LRU;
//! * PCU combining of batch *i+1* **overlaps** SOU operating of batch *i*
//!   (§III-D, Fig. 6).

use dcart_baselines::{
    ContentionWindow, Counters, IndexEngine, RedundancyWindow, RunConfig, RunReport, TimeBreakdown,
};
use dcart_engine::{
    BoundedQueue, Clock, DegradationController, FaultInjector, FaultPlan, FaultSite,
    LatencyRecorder, RecoveryStats, RetryOutcome,
};
use dcart_mem::{BufferOutcome, BufferPolicy, EnergyModel, MemoryConfig, ObjectBuffer};
use dcart_workloads::{KeySet, Op, OpKind};
use serde::{Deserialize, Serialize};

use crate::config::DcartConfig;
use crate::ctt::{execute_ctt, tree_digest, BatchEvent, CttConsumer, CttOpEvent, LockGroup};
use crate::dispatcher::Dispatch;
use crate::pcu::{scan_capacity_ops, OP_STREAM_BYTES};

/// Per-batch timing record of the accelerator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BatchTiming {
    /// PCU combining cycles for this batch.
    pub pcu_cycles: u64,
    /// SOU operating cycles (max over the 16 SOUs) for this batch.
    pub sou_cycles: u64,
    /// Operations in the batch.
    pub ops: u64,
}

/// Utilization and traffic details of an accelerator run, beyond the
/// common [`RunReport`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AccelDetails {
    /// Per-batch timings.
    pub batches: Vec<BatchTiming>,
    /// Average SOU load imbalance: max bucket size / mean bucket size.
    pub bucket_imbalance: f64,
    /// Tree-buffer hit ratio.
    pub tree_buffer_hit_ratio: f64,
    /// Shortcut-buffer hit ratio.
    pub shortcut_buffer_hit_ratio: f64,
    /// Total cycles including overlap.
    pub total_cycles: u64,
    /// Node loads the Traverse stage performed (one per `(node, wave)`
    /// group under level-wise traversal; one per path node per op
    /// otherwise).
    pub traverse_nodes_visited: u64,
    /// Op-level traversal advancement steps (sum of path lengths). The
    /// ratio to [`traverse_nodes_visited`](Self::traverse_nodes_visited)
    /// is the wave-level node-reuse factor of the run.
    pub traverse_ops_advanced: u64,
    /// Order-sensitive digest of every operation's answer. Two runs over
    /// the same workload must produce equal digests regardless of any
    /// injected faults — the chaos experiment enforces this.
    pub answer_digest: u64,
    /// Digest of the final tree contents (key ids and values in key order).
    pub tree_digest: u64,
    /// Injected-fault and recovery counters (all zero on a fault-free run).
    pub recovery: RecoveryStats,
}

/// The DCART accelerator engine.
#[derive(Debug)]
pub struct DcartAccel {
    config: DcartConfig,
    hbm: MemoryConfig,
    details: AccelDetails,
}

impl DcartAccel {
    /// Creates the accelerator model over a configuration.
    pub fn new(config: DcartConfig) -> Self {
        DcartAccel { config, hbm: MemoryConfig::hbm_u280(), details: AccelDetails::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DcartConfig {
        &self.config
    }

    /// Details of the most recent run.
    pub fn last_details(&self) -> &AccelDetails {
        &self.details
    }
}

/// Outstanding memory requests each SOU sustains (non-blocking MSHRs):
/// misses of different in-flight operations overlap up to this depth, so a
/// long HBM latency costs issue occupancy, not a full stall. 16 SOUs × 16
/// requests = 8 in flight per HBM pseudo-channel — a typical operating
/// point for U280 designs.
const SOU_OUTSTANDING: u64 = 16;

/// Pipeline fill/drain cycles of one SOU per batch.
const SOU_FILL_CYCLES: u64 = 16;

struct AccelConsumer {
    cfg: DcartConfig,
    clock: Clock,
    hbm_latency_cycles: u64,
    tree_buffer: ObjectBuffer,
    shortcut_buffer: ObjectBuffer,
    /// Per-SOU issue-occupancy cycles in the current batch.
    sou_occupancy: Vec<u64>,
    /// Per-SOU summed request latency in the current batch.
    sou_latency: Vec<u64>,
    counters: Counters,
    redundancy: RedundancyWindow,
    contention: ContentionWindow,
    batches: Vec<BatchTiming>,
    current_batch_ops: u64,
    imbalance_sum: f64,
    onchip_accesses: u64,
    /// Fault-injection plan (inert by default) and its deterministic
    /// decision streams.
    plan: FaultPlan,
    injector: FaultInjector,
    recovery: RecoveryStats,
    /// Trips when the off-chip transient-error rate crosses the configured
    /// threshold; the Tree buffer is then bypassed (every fetch re-reads
    /// HBM — slower, but no stale on-chip state to trust).
    buffer_degrade: DegradationController,
    tree_buffer_active: bool,
    /// Bucket → SOU routing for the current batch; recomputed around
    /// injected SOU outages.
    dispatch: Dispatch,
    /// `true` while `dispatch` excludes a downed SOU.
    dispatch_degraded: bool,
    /// Response queue toward the host; an injected overflow forces the
    /// rejected tail to be re-streamed under backpressure.
    response_queue: BoundedQueue,
}

impl AccelConsumer {
    /// Charges an injected transient error on one off-chip fetch: bounded
    /// retry with exponential backoff, failing over to an alternate channel
    /// when retries are exhausted. Returns the extra cycles spent.
    fn hbm_transient(&mut self) -> u64 {
        let mut extra = 0u64;
        self.recovery.hbm_transient_errors += 1;
        match self.injector.retry_transient(
            FaultSite::HbmRead,
            self.plan.hbm_transient_rate,
            &self.plan.retry,
            self.hbm_latency_cycles,
            &mut extra,
        ) {
            RetryOutcome::Recovered { retries } => self.recovery.hbm_retries += u64::from(retries),
            RetryOutcome::FailedOver => self.recovery.hbm_failovers += 1,
        }
        self.recovery.hbm_retry_cycles += extra;
        extra
    }

    /// Fetches a node through the Tree buffer, returning the cycles the
    /// Traverse_Tree stage spends on it.
    fn fetch_node(&mut self, id: u64, footprint: u32, lines: u32, value: u64) -> u64 {
        let outcome = if self.tree_buffer_active {
            self.tree_buffer.request(id, footprint, value)
        } else {
            BufferOutcome::MissBypassed
        };
        match outcome {
            BufferOutcome::Hit => {
                self.counters.cache_hits += 1;
                self.onchip_accesses += 1;
                2
            }
            BufferOutcome::MissFilled | BufferOutcome::MissBypassed => {
                self.counters.cache_misses += 1;
                self.counters.offchip_accesses += 1;
                self.counters.offchip_bytes += u64::from(lines) * 64;
                let mut cycles = self.hbm_latency_cycles + u64::from(lines.saturating_sub(1));
                if self.plan.is_active() {
                    let errored =
                        self.injector.fire(FaultSite::HbmRead, self.plan.hbm_transient_rate);
                    if errored {
                        cycles += self.hbm_transient();
                    }
                    if self.buffer_degrade.record(errored) {
                        self.tree_buffer_active = false;
                        self.recovery.tree_buffer_disables += 1;
                    }
                }
                cycles
            }
        }
    }
}

impl CttConsumer for AccelConsumer {
    fn batch_start(&mut self, ev: &BatchEvent<'_>) {
        // Reuse the per-SOU accumulators across batches instead of
        // reallocating two `Vec`s per batch.
        self.sou_occupancy.resize(self.cfg.sous, 0);
        self.sou_occupancy.iter_mut().for_each(|c| *c = 0);
        self.sou_latency.resize(self.cfg.sous, 0);
        self.sou_latency.iter_mut().for_each(|c| *c = 0);
        self.current_batch_ops = 0;
        let total: u32 = ev.bucket_sizes.iter().sum();
        let max = ev.bucket_sizes.iter().copied().max().unwrap_or(0);
        if total > 0 {
            let mean = f64::from(total) / ev.bucket_sizes.len() as f64;
            self.imbalance_sum += f64::from(max) / mean.max(1e-9);
        }
        if self.plan.is_active() {
            if self.injector.fire(FaultSite::TreeBufferStorm, self.plan.evict_storm_rate) {
                self.recovery.evict_storms += 1;
                self.recovery.storm_evictions += self.tree_buffer.storm();
            }
            let buckets = ev.bucket_sizes.len().max(1);
            if self.injector.fire(FaultSite::SouOutage, self.plan.sou_outage_rate) {
                let down = self.injector.pick(FaultSite::SouOutage, self.cfg.sous as u64) as usize;
                self.recovery.sou_outages += 1;
                self.dispatch = Dispatch::new_excluding(buckets, self.cfg.sous, &[down]);
                self.dispatch_degraded = true;
            } else if self.dispatch_degraded || self.dispatch.sou_of.len() != buckets {
                self.dispatch = Dispatch::new(buckets, self.cfg.sous);
                self.dispatch_degraded = false;
            }
        }
    }

    fn op(&mut self, ev: &CttOpEvent<'_>) {
        self.counters.ops += 1;
        self.current_batch_ops += 1;
        if ev.kind.is_write() {
            self.counters.writes += 1;
        } else {
            self.counters.reads += 1;
        }
        let value = u64::from(ev.bucket_ops);

        // Stage 1 — Index_Shortcut: probe the shortcut buffer for
        // reads/updates; other ops pass through in a cycle.
        let s1 = if self.cfg.shortcuts_enabled && matches!(ev.kind, OpKind::Read | OpKind::Update) {
            if ev.shortcut_hit {
                // The buffer caches shortcut entries by key identity; a
                // probe that misses on chip fetches the entry from the
                // off-chip hash table.
                match self.shortcut_buffer.request(ev.key_id, crate::shortcut::ENTRY_BYTES, value) {
                    BufferOutcome::Hit => {
                        self.onchip_accesses += 1;
                        1
                    }
                    _ => {
                        self.counters.offchip_accesses += 1;
                        self.counters.offchip_bytes += 64;
                        let mut cycles = self.hbm_latency_cycles;
                        if self.plan.is_active()
                            && self.injector.fire(FaultSite::HbmRead, self.plan.hbm_transient_rate)
                        {
                            cycles += self.hbm_transient();
                        }
                        cycles
                    }
                }
            } else {
                // Negative probe: an on-chip presence filter over Key_IDs
                // rejects keys with no shortcut entry without an off-chip
                // access, so absent-key probes cost pipeline cycles only.
                self.onchip_accesses += 1;
                2
            }
        } else {
            1
        };

        // Stage 2 — Traverse_Tree: every effective visit goes through the
        // value-aware Tree buffer.
        let mut s2 = 0u64;
        for v in ev.visits {
            self.counters.nodes_traversed += 1;
            self.counters.useful_bytes += u64::from(v.useful_bytes);
            self.counters.fetched_bytes += u64::from(v.lines) * 64;
            s2 += self.fetch_node(u64::from(v.node.index()), v.footprint, v.lines, value);
        }
        self.redundancy.record_op(ev.visits.iter().map(|v| v.node));
        if ev.shortcut_hit {
            self.counters.shortcut_hits += 1;
        } else {
            self.counters.shortcut_misses += 1;
        }
        self.counters.partial_key_matches += ev.matches;

        // Stage 3 — Trigger_Operation; Stage 4 — Generate_Shortcut.
        let s3 = 2;
        let s4 = if ev.generated_shortcut { 2 } else { 1 };

        // Non-blocking SOU: each node fetch occupies an issue slot for a
        // cycle (plus the pipeline's own work), while full fetch latency is
        // overlapped across up to SOU_OUTSTANDING in-flight operations.
        let sou = if self.dispatch.sou_of.is_empty() {
            ev.bucket % self.cfg.sous
        } else {
            self.dispatch.sou_of[ev.bucket % self.dispatch.sou_of.len()]
        };
        let mut occupancy = (ev.visits.len() as u64).max(1);
        let mut latency = s1 + s2.max(1) + s3 + s4;
        if self.plan.is_active()
            && self.injector.fire(FaultSite::PipelineStall, self.plan.pipeline_stall_rate)
        {
            // A bubble holds the issue stage, so it costs occupancy (the
            // serial resource), not just overlappable latency.
            self.recovery.pipeline_stalls += 1;
            self.recovery.pipeline_stall_cycles += self.plan.pipeline_stall_cycles;
            occupancy += self.plan.pipeline_stall_cycles;
            latency += self.plan.pipeline_stall_cycles;
        }
        self.sou_occupancy[sou] += occupancy;
        self.sou_latency[sou] += latency;
        self.onchip_accesses += 2; // scan + bucket buffer streams
    }

    fn lock_group(&mut self, group: &LockGroup) {
        self.counters.lock_acquisitions += 1;
        self.contention.record_unit([group.node]);
    }

    fn batch_end(&mut self, _index: usize) {
        self.contention.end_window();
        let sou_cycles = self
            .sou_occupancy
            .iter()
            .zip(&self.sou_latency)
            .map(|(&occ, &lat)| occ.max(lat / SOU_OUTSTANDING) + SOU_FILL_CYCLES)
            .max()
            .unwrap_or(0);
        // PCU: one op per cycle through 3 stages, floored by the byte
        // stream the Scan/Bucket buffers move per cycle.
        let clock_hz = self.clock.freq_hz();
        let bytes_per_cycle = 460.0e9 / clock_hz; // HBM bytes per cycle
        let stream_cycles = (self.current_batch_ops * OP_STREAM_BYTES) as f64 / bytes_per_cycle;
        // Multiple PCUs scan the arriving batch in parallel stripes (an
        // extension knob; Table I uses 1).
        let pcu_throughput = self.cfg.pcus.max(1) as u64;
        let mut pcu_cycles =
            (self.current_batch_ops / pcu_throughput + 2).max(stream_cycles.ceil() as u64);
        self.counters.offchip_bytes += self.current_batch_ops * OP_STREAM_BYTES;
        if self.plan.is_active()
            && self.injector.fire(FaultSite::QueueOverflow, self.plan.queue_overflow_rate)
        {
            // The response queue toward the host jams: this batch's results
            // pile into the bounded queue, the rejected tail is re-streamed
            // from host memory (one op per cycle) and the queue must drain
            // before the next batch combines.
            let rejected = self.response_queue.offer(self.current_batch_ops);
            let stall = rejected + self.response_queue.depth();
            self.response_queue.drain(u64::MAX);
            self.recovery.queue_overflows += 1;
            self.recovery.backpressure_cycles += stall;
            self.counters.offchip_bytes += rejected * OP_STREAM_BYTES;
            pcu_cycles += stall;
        }
        self.batches.push(BatchTiming { pcu_cycles, sou_cycles, ops: self.current_batch_ops });
    }
}

impl IndexEngine for DcartAccel {
    fn name(&self) -> &'static str {
        "DCART"
    }

    fn run(&mut self, keys: &KeySet, ops: &[Op], run: &RunConfig) -> RunReport {
        let clock = Clock::mhz(self.config.clock_mhz);
        let hbm_latency_cycles = clock.ns_to_cycles(self.hbm.latency_ns);
        let plan = self.config.faults;
        let degrade = self.config.degrade;
        let mut consumer = AccelConsumer {
            cfg: self.config,
            clock,
            hbm_latency_cycles,
            tree_buffer: ObjectBuffer::new(
                self.config.tree_buffer_bytes,
                self.config.tree_buffer_policy,
            ),
            shortcut_buffer: ObjectBuffer::new(
                self.config.shortcut_buffer_bytes,
                BufferPolicy::Lru,
            ),
            sou_occupancy: Vec::new(),
            sou_latency: Vec::new(),
            counters: Counters::default(),
            redundancy: RedundancyWindow::new(run.concurrency),
            contention: ContentionWindow::new(usize::MAX >> 1),
            batches: Vec::new(),
            current_batch_ops: 0,
            imbalance_sum: 0.0,
            onchip_accesses: 0,
            plan,
            injector: FaultInjector::for_plan(&plan),
            recovery: RecoveryStats::default(),
            buffer_degrade: DegradationController::new(
                if degrade.enabled { degrade.tree_buffer_error_threshold } else { 0.0 },
                degrade.window,
            ),
            tree_buffer_active: true,
            dispatch: Dispatch::new(self.config.buckets(), self.config.sous),
            dispatch_degraded: false,
            response_queue: BoundedQueue::new(scan_capacity_ops(self.config.scan_buffer_bytes)),
        };

        let (tree, stats) = execute_ctt(keys, ops, &self.config, run.concurrency, &mut consumer);

        // Assemble cycle timeline with (or without) PCU/SOU overlap.
        let mut pcu_done: u64 = 0;
        let mut sou_end: u64 = 0;
        let mut latency = LatencyRecorder::new();
        let mut sou_busy: u64 = 0;
        for b in &consumer.batches {
            if self.config.overlap_enabled {
                pcu_done += b.pcu_cycles;
                let sou_start = pcu_done.max(sou_end);
                sou_end = sou_start + b.sou_cycles;
            } else {
                let sou_start = sou_end + b.pcu_cycles;
                sou_end = sou_start + b.sou_cycles;
                pcu_done = sou_start;
            }
            sou_busy += b.sou_cycles;
            // An op waits for its batch to combine and operate.
            latency.record(clock.cycles_to_ns(b.pcu_cycles + b.sou_cycles) / 1e3);
        }
        // Cross-SOU conflicts serialize briefly at trigger time; shared
        // Shortcut_Table hash-bucket collisions synchronize the writers.
        let (totals, _history) = consumer.contention.finish();
        let contentions = totals.contentions + stats.shortcut_hash_collisions;
        let conflict_cycles = contentions * 8;
        let total_cycles = sou_end + conflict_cycles;
        let time_s = clock.cycles_to_seconds(total_cycles);

        let mut counters = consumer.counters;
        counters.redundant_node_visits = consumer.redundancy.redundant_visits;
        counters.lock_contentions = contentions;
        counters.lock_acquisitions += stats.shortcut_hash_collisions;

        let energy = EnergyModel::fpga_u280();
        let energy_j =
            energy.energy_joules(time_s, counters.offchip_bytes, consumer.onchip_accesses);

        // Time breakdown: PCU work that the overlap hides is not on the
        // critical path; attribute the visible cycles.
        let pcu_total: u64 = consumer.batches.iter().map(|b| b.pcu_cycles).sum();
        let visible_pcu = if self.config.overlap_enabled {
            total_cycles.saturating_sub(sou_busy + conflict_cycles)
        } else {
            pcu_total
        };
        let breakdown = TimeBreakdown {
            traversal_s: clock.cycles_to_seconds(sou_busy),
            sync_s: clock.cycles_to_seconds(conflict_cycles),
            combine_s: clock.cycles_to_seconds(visible_pcu),
            other_s: 0.0,
        };

        // Fold the shortcut-table fault accounting (kept by the functional
        // CTT layer) into the run-level recovery stats, and digest the
        // final tree so chaos runs can compare end states.
        let mut recovery = consumer.recovery;
        recovery.shortcut_corruptions += stats.shortcut.corruptions_injected;
        recovery.shortcut_fallbacks += stats.shortcut.corruption_fallbacks;
        recovery.shortcut_disables += stats.shortcut_disables;
        let tree_digest = tree_digest(&tree);

        let batches = consumer.batches.len().max(1) as f64;
        self.details = AccelDetails {
            bucket_imbalance: consumer.imbalance_sum / batches,
            tree_buffer_hit_ratio: consumer.tree_buffer.stats().hit_ratio(),
            shortcut_buffer_hit_ratio: consumer.shortcut_buffer.stats().hit_ratio(),
            batches: consumer.batches,
            total_cycles,
            traverse_nodes_visited: stats.shortcut.nodes_visited,
            traverse_ops_advanced: stats.shortcut.ops_advanced,
            answer_digest: stats.answer_digest,
            tree_digest,
            recovery,
        };
        debug_assert_eq!(stats.ops, counters.ops);

        let p99 = latency.percentile(0.99);
        RunReport {
            engine: self.name().to_string(),
            workload: keys.name.clone(),
            counters,
            time_s,
            breakdown,
            energy_j,
            latency_mean_us: latency.mean(),
            latency_p99_us: p99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcart_baselines::{CpuBaseline, CpuConfig};
    use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

    fn setup(n_keys: usize, n_ops: usize) -> (KeySet, Vec<Op>, RunConfig) {
        let keys = Workload::Ipgeo.generate(n_keys, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: n_ops, mix: Mix::C, ..Default::default() },
        );
        (keys, ops, RunConfig { concurrency: 8192 })
    }

    #[test]
    fn dcart_crushes_smart() {
        let (keys, ops, run) = setup(20_000, 60_000);
        let mut dcart = DcartAccel::new(DcartConfig::default().scaled_for_keys(20_000));
        let d = dcart.run(&keys, &ops, &run);
        let smart = CpuBaseline::smart(CpuConfig::xeon_8468().scaled_for_keys(20_000))
            .run(&keys, &ops, &run);
        let speedup = smart.time_s / d.time_s;
        assert!(speedup > 5.0, "DCART vs SMART speedup only {speedup}");
    }

    #[test]
    fn overlap_hides_combining() {
        let (keys, ops, run) = setup(10_000, 40_000);
        let mut with = DcartAccel::new(DcartConfig::default().scaled_for_keys(10_000));
        let with_t = with.run(&keys, &ops, &run).time_s;
        let mut cfg = DcartConfig::default().scaled_for_keys(10_000);
        cfg.overlap_enabled = false;
        let mut without = DcartAccel::new(cfg);
        let without_t = without.run(&keys, &ops, &run).time_s;
        assert!(with_t < without_t, "{with_t} vs {without_t}");
    }

    #[test]
    fn shortcuts_reduce_traversed_nodes() {
        let (keys, ops, run) = setup(10_000, 40_000);
        let mut on = DcartAccel::new(DcartConfig::default().scaled_for_keys(10_000));
        let r_on = on.run(&keys, &ops, &run);
        let mut cfg = DcartConfig::default().scaled_for_keys(10_000);
        cfg.shortcuts_enabled = false;
        let mut off = DcartAccel::new(cfg);
        let r_off = off.run(&keys, &ops, &run);
        assert!(r_on.counters.nodes_traversed < r_off.counters.nodes_traversed);
        assert!(
            r_on.time_s <= r_off.time_s * 1.1,
            "shortcuts must not cost time: {} vs {}",
            r_on.time_s,
            r_off.time_s
        );
        assert!(r_on.counters.shortcut_hits > 0);
        assert_eq!(r_off.counters.shortcut_hits, 0);
    }

    #[test]
    fn value_aware_beats_lru_under_coalesced_streams() {
        // §III-E's claim, end to end: under the coalesced access stream
        // (each node fetched once per bucket-batch), LRU has no recency
        // signal left and thrashes, while node values persist across
        // batches and keep the hot set resident. Both policies
        // produce identical functional results, and value-aware retains
        // high-value nodes across batches where LRU (whose recency signal
        // the once-per-batch coalesced access stream destroys) thrashes.
        let (keys, ops, run) = setup(30_000, 60_000);
        // Shrink the tree buffer hard so replacement policy matters.
        let mut cfg = DcartConfig {
            tree_buffer_bytes: 64 * 1024,
            shortcut_buffer_bytes: 8 * 1024,
            ..Default::default()
        };
        let mut va = DcartAccel::new(cfg);
        let r_va = va.run(&keys, &ops, &run);
        let va_hits = va.last_details().tree_buffer_hit_ratio;
        cfg.tree_buffer_policy = BufferPolicy::Lru;
        let mut lru = DcartAccel::new(cfg);
        let r_lru = lru.run(&keys, &ops, &run);
        let lru_hits = lru.last_details().tree_buffer_hit_ratio;
        assert!(
            va_hits > lru_hits,
            "value-aware {va_hits} must beat LRU {lru_hits} under coalesced streams"
        );
        // Same functional results regardless of policy.
        assert_eq!(r_va.counters.ops, r_lru.counters.ops);
        assert_eq!(r_va.counters.nodes_traversed, r_lru.counters.nodes_traversed);
    }

    #[test]
    fn details_populated() {
        let (keys, ops, run) = setup(5_000, 20_000);
        let mut dcart = DcartAccel::new(DcartConfig::default().scaled_for_keys(5_000));
        let r = dcart.run(&keys, &ops, &run);
        let d = dcart.last_details();
        assert!(!d.batches.is_empty());
        assert!(d.bucket_imbalance >= 1.0);
        assert!(d.total_cycles > 0);
        assert!(r.latency_p99_us >= r.latency_mean_us);
        assert!(r.energy_j > 0.0);
        assert!(d.answer_digest != 0);
        assert!(d.tree_digest != 0);
        assert_eq!(d.recovery, RecoveryStats::default(), "fault-free run injects nothing");
    }

    /// Runs the same workload under `cfg` and returns (details, time).
    fn faulted_run(cfg: DcartConfig) -> (AccelDetails, f64) {
        let (keys, ops, run) = setup(10_000, 40_000);
        let mut dcart = DcartAccel::new(cfg);
        let r = dcart.run(&keys, &ops, &run);
        (dcart.last_details().clone(), r.time_s)
    }

    #[test]
    fn every_fault_class_preserves_answers_and_slows_the_run() {
        let clean_cfg = DcartConfig::default().scaled_for_keys(10_000);
        let (clean, clean_t) = faulted_run(clean_cfg);
        let plans: [(&str, FaultPlan); 5] = [
            ("hbm", FaultPlan { seed: 11, hbm_transient_rate: 0.05, ..FaultPlan::none() }),
            ("shortcut", FaultPlan { seed: 12, shortcut_corrupt_rate: 0.1, ..FaultPlan::none() }),
            ("storm", FaultPlan { seed: 13, evict_storm_rate: 0.5, ..FaultPlan::none() }),
            (
                "stall",
                FaultPlan {
                    seed: 14,
                    pipeline_stall_rate: 0.1,
                    pipeline_stall_cycles: 32,
                    ..FaultPlan::none()
                },
            ),
            (
                "overflow+outage",
                FaultPlan {
                    seed: 15,
                    queue_overflow_rate: 0.5,
                    sou_outage_rate: 0.5,
                    ..FaultPlan::none()
                },
            ),
        ];
        for (name, plan) in plans {
            let mut cfg = clean_cfg;
            cfg.faults = plan;
            let (faulty, faulty_t) = faulted_run(cfg);
            assert_eq!(faulty.answer_digest, clean.answer_digest, "{name}: answers diverged");
            assert_eq!(faulty.tree_digest, clean.tree_digest, "{name}: end state diverged");
            assert!(faulty.recovery.total_injected() > 0, "{name}: nothing injected");
            assert!(
                faulty_t >= clean_t,
                "{name}: faults must not speed the run up ({faulty_t} vs {clean_t})"
            );
        }
    }

    #[test]
    fn fault_runs_are_reproducible() {
        let mut cfg = DcartConfig::default().scaled_for_keys(10_000);
        cfg.faults = FaultPlan {
            seed: 99,
            hbm_transient_rate: 0.02,
            shortcut_corrupt_rate: 0.05,
            evict_storm_rate: 0.2,
            pipeline_stall_rate: 0.05,
            pipeline_stall_cycles: 16,
            sou_outage_rate: 0.2,
            queue_overflow_rate: 0.2,
            ..FaultPlan::none()
        };
        let (a, t_a) = faulted_run(cfg);
        let (b, t_b) = faulted_run(cfg);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(t_a, t_b);
    }

    #[test]
    fn heavy_transients_trip_tree_buffer_degradation() {
        let clean_cfg = DcartConfig::default().scaled_for_keys(10_000);
        let (clean, _) = faulted_run(clean_cfg);
        let mut cfg = clean_cfg;
        cfg.faults = FaultPlan { seed: 21, hbm_transient_rate: 0.9, ..FaultPlan::none() };
        cfg.degrade.tree_buffer_error_threshold = 0.3;
        cfg.degrade.window = 64;
        let (faulty, _) = faulted_run(cfg);
        assert_eq!(faulty.recovery.tree_buffer_disables, 1, "latch trips once");
        assert!(faulty.recovery.hbm_retries > 0, "bounded retry ran");
        assert_eq!(faulty.answer_digest, clean.answer_digest, "degraded mode stays correct");
        assert_eq!(faulty.tree_digest, clean.tree_digest);
    }

    #[test]
    fn sou_outage_remaps_and_overflow_backpressures() {
        let clean_cfg = DcartConfig::default().scaled_for_keys(10_000);
        let mut cfg = clean_cfg;
        cfg.faults = FaultPlan {
            seed: 31,
            sou_outage_rate: 1.0,
            queue_overflow_rate: 1.0,
            ..FaultPlan::none()
        };
        let (faulty, faulty_t) = faulted_run(cfg);
        let (_, clean_t) = faulted_run(clean_cfg);
        assert!(faulty.recovery.sou_outages > 0);
        assert!(faulty.recovery.queue_overflows > 0);
        assert!(faulty.recovery.backpressure_cycles > 0);
        assert!(faulty_t > clean_t, "losing an SOU every batch must cost time");
    }
}
