//! Concrete rng implementations.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic rng: xoshiro256++ seeded through
/// SplitMix64. Fast, full 64-bit output, passes BigCrush — more than enough
/// for workload generation and simulation.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// Alias: the "small" rng is the same generator here.
pub type SmallRng = StdRng;

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, as the
        // xoshiro authors recommend.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
