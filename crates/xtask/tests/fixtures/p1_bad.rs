// Fixture: P1 must fire on every branch of the panic policy.
pub fn policy_violations(x: Option<u32>, r: Result<u32, String>, msg: &str) -> u32 {
    let a = x.unwrap();
    let b = r.expect(msg);
    if a > b {
        panic!("a exceeded b");
    }
    match a.checked_add(b) {
        Some(v) => v,
        None => unreachable!(),
    }
}

pub fn not_done() {
    todo!()
}

pub fn also_not_done() {
    unimplemented!()
}
