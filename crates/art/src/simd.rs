//! Vectorized kernels for the hot node-search paths, with portable
//! SWAR/scalar fallbacks.
//!
//! Three byte-level primitives dominate an ART traversal and are worth a
//! `std::arch` kernel each (the original ART paper's `_mm_cmpeq_epi8`
//! observation, and rart-rs's prior art for doing it in Rust):
//!
//! * [`search16`] — find a byte among the ≤16 sorted key lanes of an N16;
//! * [`present_bitmap`] — compress an N48's 256-byte index array into a
//!   256-bit occupancy bitmap, so ordered iteration walks set bits instead
//!   of probing all 256 slots;
//! * [`common_prefix_len`] — mismatch scan for path-compression prefixes
//!   and long-key comparisons.
//!
//! [`prefetch`] rounds the set out: a best-effort hint that the next tree
//! node will be needed, issued while the current node is still being
//! searched (the level-wise Traverse batches make the distance long enough
//! to matter).
//!
//! # Detection matrix
//!
//! Selection is purely compile-time — both supported ISAs guarantee their
//! vector baseline, so no runtime dispatch cost is paid:
//!
//! | target | kernel | gate |
//! |--------|--------|------|
//! | `x86_64` | SSE2 (`_mm_cmpeq_epi8` + `_mm_movemask_epi8`) | SSE2 is part of the `x86_64` baseline |
//! | `aarch64` | NEON (`vceqq_u8` + `vshrn_n_u16` mask) | NEON is part of the `aarch64` baseline |
//! | other targets | SWAR / scalar fallback | — |
//! | any target + `--features force-swar` | SWAR / scalar fallback | exercised by the CI `no-simd` job |
//!
//! Fallback guarantee: every kernel is a drop-in replacement for its
//! portable counterpart ([`search16_swar`], [`present_bitmap_scalar`],
//! [`common_prefix_len_swar`]); the unit tests here and the exhaustive
//! differential suite in `tests/simd_differential.rs` pin them equal at
//! every occupancy and byte value, so builds on any row of the matrix are
//! observationally identical.
//!
//! # Unsafe policy
//!
//! This module is the crate's **only** sanctioned home for `unsafe` (the
//! crate root carries `#![deny(unsafe_code)]`, opted back in here; the
//! workspace lint's P1 rule hard-errors on the `unsafe` token anywhere
//! outside `rules::UNSAFE_SANCTIONED`). The unsafety is confined to
//! `std::arch` loads/compares over fixed-size stack arrays with the bounds
//! spelled out at each site; no raw pointer escapes a kernel.
#![allow(unsafe_code)]

/// All-ones-per-lane constant for the SWAR search (`0x01` in each byte).
const LANE_LSB: u128 = u128::from_le_bytes([0x01; 16]);
/// High-bit-per-lane constant for the SWAR search (`0x80` in each byte).
const LANE_MSB: u128 = u128::from_le_bytes([0x80; 16]);

/// Lane of `byte` among the first `len` lanes of `keys`, or `None`.
///
/// Dispatches to the best compile-time kernel (see the module-level
/// detection matrix). The result is identical to [`search16_swar`] and to a
/// naive linear scan for every `(keys, len, byte)` with `len <= 16`; stale
/// bytes in lanes `len..` never influence the result.
#[inline]
pub fn search16(keys: &[u8; 16], len: usize, byte: u8) -> Option<usize> {
    imp::search16(keys, len, byte)
}

/// Portable SWAR [`search16`]: XOR with the splatted probe byte zeroes the
/// matching lanes of the `u128` view, and Mycroft's zero-byte detector
/// (`(x - 0x01…01) & !x & 0x80…80`) flags them. The detector can flag
/// false positives *above* a genuine zero lane, but never below one, so the
/// lowest flagged lane is always a true match; stale lanes past `len` are
/// rejected by the final bound check (live lanes precede stale lanes).
#[inline]
pub fn search16_swar(keys: &[u8; 16], len: usize, byte: u8) -> Option<usize> {
    debug_assert!(len <= 16);
    let lanes = u128::from_le_bytes(*keys);
    let diff = lanes ^ (LANE_LSB * u128::from(byte));
    let zeros = diff.wrapping_sub(LANE_LSB) & !diff & LANE_MSB;
    let lane = (zeros.trailing_zeros() / 8) as usize; // 16 when no lane matched
    (lane < len).then_some(lane)
}

/// Naive linear-scan [`search16`], the ground truth the vector kernels are
/// differentially tested against.
#[doc(hidden)]
#[inline]
pub fn search16_scalar(keys: &[u8; 16], len: usize, byte: u8) -> Option<usize> {
    debug_assert!(len <= 16);
    keys[..len].iter().position(|&k| k == byte)
}

/// 256-bit occupancy bitmap of a direct-mapped index array: bit `i` of the
/// result (word `i / 64`, bit `i % 64`) is set iff `index[i] != absent`.
///
/// This is the N48 ordered-iteration kernel: one vector sweep replaces 256
/// scalar sentinel probes, and iteration then walks only the set bits.
#[inline]
pub fn present_bitmap(index: &[u8; 256], absent: u8) -> [u64; 4] {
    imp::present_bitmap(index, absent)
}

/// Portable scalar [`present_bitmap`].
#[inline]
pub fn present_bitmap_scalar(index: &[u8; 256], absent: u8) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (i, &b) in index.iter().enumerate() {
        if b != absent {
            out[i >> 6] |= 1 << (i & 63);
        }
    }
    out
}

/// Length of the longest common prefix of two byte slices.
///
/// Vectorized in 16-byte strides where the ISA allows; the workloads' keys
/// are 4–24 bytes, but path-compression prefixes of deep DICT/IPGEO trees
/// and long-key comparisons benefit from the wide head.
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let i = imp::mismatch_head(a, b, n);
    common_prefix_tail(a, b, i, n)
}

/// Portable [`common_prefix_len`] (8-byte SWAR strides + byte tail).
#[inline]
pub fn common_prefix_len_swar(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    common_prefix_tail(a, b, 0, n)
}

/// Finishes a mismatch scan from offset `i`: 8-byte XOR strides locate the
/// first differing byte via `trailing_zeros`, then a byte loop handles the
/// tail. `n` is the comparable length (`min` of the two slice lengths).
#[inline]
fn common_prefix_tail(a: &[u8], b: &[u8], mut i: usize, n: usize) -> usize {
    while i + 8 <= n {
        let xa = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte window is in bounds"));
        let xb = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte window is in bounds"));
        let x = xa ^ xb;
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Best-effort hint that `t` will be read soon (into all cache levels).
///
/// A no-op on targets without a stable prefetch intrinsic (including
/// `aarch64`, where `_prefetch` is still unstable) and under `force-swar`;
/// correctness never depends on it.
#[inline]
pub fn prefetch<T>(t: &T) {
    imp::prefetch(std::ptr::from_ref(t).cast());
}

/// SSE2 kernels. SSE2 is part of the `x86_64` ABI baseline, so the
/// intrinsics are unconditionally available — no `is_x86_feature_detected!`
/// needed and no scalar dispatch branch paid.
#[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
mod imp {
    #[allow(clippy::wildcard_imports)] // the std::arch intrinsic namespace is designed for it
    use std::arch::x86_64::*;

    #[inline]
    pub(super) fn search16(keys: &[u8; 16], len: usize, byte: u8) -> Option<usize> {
        debug_assert!(len <= 16);
        // SAFETY: `_mm_loadu_si128` is an unaligned 16-byte load, and
        // `keys` is exactly 16 bytes; SSE2 is baseline on x86_64.
        let eq = unsafe {
            _mm_cmpeq_epi8(_mm_loadu_si128(keys.as_ptr().cast()), _mm_set1_epi8(byte as i8))
        };
        // SAFETY: register-only SSE2 op.
        let mask = unsafe { _mm_movemask_epi8(eq) } as u32 & lane_mask(len);
        (mask != 0).then(|| mask.trailing_zeros() as usize)
    }

    /// Low `len` bits set (`len <= 16`).
    #[inline]
    fn lane_mask(len: usize) -> u32 {
        (1u32 << len) - 1
    }

    #[inline]
    pub(super) fn present_bitmap(index: &[u8; 256], absent: u8) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (w, chunk) in index.chunks_exact(64).enumerate() {
            let mut bits = 0u64;
            for c in 0..4 {
                // SAFETY: `chunk` is 64 bytes, so the 16-byte unaligned
                // load at offset `c * 16 <= 48` is in bounds.
                let empty = unsafe {
                    let v = _mm_loadu_si128(chunk.as_ptr().add(c * 16).cast());
                    _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_set1_epi8(absent as i8)))
                } as u64;
                bits |= (!empty & 0xFFFF) << (c * 16);
            }
            out[w] = bits;
        }
        out
    }

    /// First mismatch offset in 16-byte strides; returns a position `i`
    /// that is either the exact mismatch or a stride boundary with fewer
    /// than 16 comparable bytes left (the caller's tail finishes there).
    #[inline]
    pub(super) fn mismatch_head(a: &[u8], b: &[u8], n: usize) -> usize {
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: both 16-byte unaligned loads are in bounds: the loop
            // condition guarantees `i + 16 <= n <= a.len(), b.len()`.
            let ne = unsafe {
                let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
                let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
                !(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32) & 0xFFFF
            };
            if ne != 0 {
                return i + ne.trailing_zeros() as usize;
            }
            i += 16;
        }
        i
    }

    #[inline]
    pub(super) fn prefetch(p: *const i8) {
        // SAFETY: `_mm_prefetch` is a hint with no memory effects; it is
        // architecturally defined to be valid for any address.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(p) }
    }
}

/// NEON kernels. NEON (ASIMD) is part of the `aarch64` baseline. The
/// movemask substitute is the `vshrn` nibble trick: narrowing each 16-bit
/// lane of the compare result by 4 packs one nibble per byte lane into a
/// `u64`, with all-ones nibbles marking matches.
#[cfg(all(target_arch = "aarch64", not(feature = "force-swar")))]
mod imp {
    #[allow(clippy::wildcard_imports)] // the std::arch intrinsic namespace is designed for it
    use std::arch::aarch64::*;

    /// One nibble per byte lane: nibble `i` is `0xF` iff `keys[i] == byte`.
    #[inline]
    fn eq_nibbles(keys: *const u8, byte: u8) -> u64 {
        // SAFETY: callers pass a pointer to at least 16 readable bytes;
        // NEON is baseline on aarch64 and these are register-only ops
        // after the load.
        unsafe {
            let eq = vceqq_u8(vld1q_u8(keys), vdupq_n_u8(byte));
            vget_lane_u64::<0>(vreinterpret_u64_u8(vshrn_n_u16::<4>(vreinterpretq_u16_u8(eq))))
        }
    }

    #[inline]
    pub(super) fn search16(keys: &[u8; 16], len: usize, byte: u8) -> Option<usize> {
        debug_assert!(len <= 16);
        let mask = eq_nibbles(keys.as_ptr(), byte) & nibble_mask(len);
        (mask != 0).then(|| (mask.trailing_zeros() / 4) as usize)
    }

    /// Low `len` nibbles set (`len <= 16`).
    #[inline]
    fn nibble_mask(len: usize) -> u64 {
        if len == 16 {
            u64::MAX
        } else {
            (1u64 << (len * 4)) - 1
        }
    }

    #[inline]
    pub(super) fn present_bitmap(index: &[u8; 256], absent: u8) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (w, chunk) in index.chunks_exact(64).enumerate() {
            let mut bits = 0u64;
            for c in 0..4 {
                let empty = eq_nibbles(chunk[c * 16..].as_ptr(), absent);
                // Compress 16 nibbles to 16 bits (bit i = nibble i's LSB).
                for i in 0..16 {
                    bits |= (!(empty >> (4 * i)) & 1) << (c * 16 + i);
                }
            }
            out[w] = bits;
        }
        out
    }

    #[inline]
    pub(super) fn mismatch_head(a: &[u8], b: &[u8], n: usize) -> usize {
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: both 16-byte loads are in bounds (`i + 16 <= n`) and
            // the rest is register-only NEON.
            let eq = unsafe {
                let va = vld1q_u8(a.as_ptr().add(i));
                let vb = vld1q_u8(b.as_ptr().add(i));
                vget_lane_u64::<0>(vreinterpret_u64_u8(vshrn_n_u16::<4>(vreinterpretq_u16_u8(
                    vceqq_u8(va, vb),
                ))))
            };
            let ne = !eq;
            if ne != 0 {
                return i + (ne.trailing_zeros() / 4) as usize;
            }
            i += 16;
        }
        i
    }

    /// No stable prefetch intrinsic on aarch64 yet (`_prefetch` is
    /// unstable); hardware prefetchers cover the sequential cases.
    #[inline]
    pub(super) fn prefetch(_p: *const i8) {}
}

/// Portable fallback: SWAR/scalar kernels only. Selected on targets
/// without a vector baseline and whenever `force-swar` is enabled (the CI
/// `no-simd` job runs the whole test suite through this path).
#[cfg(any(not(any(target_arch = "x86_64", target_arch = "aarch64")), feature = "force-swar"))]
mod imp {
    #[inline]
    pub(super) fn search16(keys: &[u8; 16], len: usize, byte: u8) -> Option<usize> {
        super::search16_swar(keys, len, byte)
    }

    #[inline]
    pub(super) fn present_bitmap(index: &[u8; 256], absent: u8) -> [u64; 4] {
        super::present_bitmap_scalar(index, absent)
    }

    #[inline]
    pub(super) fn mismatch_head(_a: &[u8], _b: &[u8], _n: usize) -> usize {
        0
    }

    #[inline]
    pub(super) fn prefetch(_p: *const i8) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search16_agrees_with_swar_and_scalar_on_edges() {
        // Boundary bytes: 0x00, the 0x7F/0x80 high-bit edge, 0xFF; every
        // occupancy. The exhaustive sweep lives in tests/simd_differential.
        for len in 0..=16usize {
            let mut keys = [0xABu8; 16];
            for (i, slot) in keys.iter_mut().enumerate().take(len) {
                *slot = (i as u8) * 17; // 0, 17, ..., 255: sorted, unique
            }
            for probe in [0u8, 1, 0x7F, 0x80, 0xAB, 0xFE, 0xFF] {
                let want = search16_scalar(&keys, len, probe);
                assert_eq!(search16(&keys, len, probe), want, "len={len} probe={probe:#04x}");
                assert_eq!(search16_swar(&keys, len, probe), want, "len={len} probe={probe:#04x}");
            }
        }
    }

    #[test]
    fn present_bitmap_matches_scalar() {
        let mut index = [0xFFu8; 256];
        // A spread of occupied slots, including both word boundaries.
        for (i, b) in [0usize, 1, 63, 64, 127, 128, 191, 192, 255].iter().zip(0u8..) {
            index[*i] = b;
        }
        let got = present_bitmap(&index, 0xFF);
        assert_eq!(got, present_bitmap_scalar(&index, 0xFF));
        let ones: u32 = got.iter().map(|w| w.count_ones()).sum();
        assert_eq!(ones, 9);
        assert_eq!(got[0] & 1, 1);
        assert_eq!(got[3] >> 63, 1);
    }

    #[test]
    fn common_prefix_len_all_lengths_and_positions() {
        // Every (length, mismatch position) pair through both kernels:
        // covers the 16-byte head, the 8-byte SWAR stride, and the tail.
        for n in 0..48usize {
            let a: Vec<u8> = (0..n as u8).map(|i| i.wrapping_mul(31)).collect();
            for pos in 0..=n {
                let mut b = a.clone();
                if pos < n {
                    b[pos] ^= 0x40;
                }
                let want = pos.min(n);
                assert_eq!(common_prefix_len(&a, &b), want, "n={n} pos={pos}");
                assert_eq!(common_prefix_len_swar(&a, &b), want, "n={n} pos={pos}");
            }
            // Unequal lengths clamp to the shorter slice.
            assert_eq!(common_prefix_len(&a, &a[..n / 2]), n / 2);
        }
    }

    #[test]
    fn prefetch_is_callable() {
        // Purely a hint; this pins that it is safe to call on any value.
        let v = [0u8; 64];
        prefetch(&v);
        prefetch(&v[63]);
    }
}
