//! Property-based tests of the CTT executor: functional equivalence with
//! operation-centric execution and conservation laws on its statistics,
//! under randomized workloads, mixes, batch sizes, and config knobs.

use dcart::{
    execute_ctt, execute_ctt_with, fold_digest, BatchEvent, CttConsumer, CttOpEvent, DcartConfig,
    FaultPlan, LockGroup, TraverseMode,
};
use dcart_art::Key;
use dcart_baselines::execute_with_traces;
use dcart_mem::BufferPolicy;
use dcart_workloads::{KeySet, Op, OpKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a small key set directly (no workload generator) so proptest
/// controls the shape.
fn key_set(keys: Vec<u64>, pool: Vec<u64>) -> KeySet {
    use rand::seq::SliceRandom;
    use std::collections::BTreeSet;
    let mut rng = StdRng::seed_from_u64(1);
    let keyset: BTreeSet<u64> = keys.into_iter().collect();
    let pool: Vec<Key> =
        pool.into_iter().filter(|p| !keyset.contains(p)).map(Key::from_u64).collect();
    let keys: Vec<Key> = keyset.into_iter().map(Key::from_u64).collect();
    let mut popularity: Vec<u32> = (0..keys.len() as u32).collect();
    popularity.shuffle(&mut rng);
    KeySet { name: "prop".to_string(), keys, insert_pool: pool, popularity }
}

#[derive(Default)]
struct Audit {
    ops: u64,
    hits: u64,
    misses: u64,
    group_members: u64,
    lock_groups: u64,
    batches_seen: Vec<usize>,
}

impl CttConsumer for Audit {
    fn op(&mut self, ev: &CttOpEvent<'_>) {
        self.ops += 1;
        if ev.shortcut_hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    fn lock_group(&mut self, group: &LockGroup) {
        self.lock_groups += 1;
        self.group_members += u64::from(group.size);
    }

    fn batch_end(&mut self, index: usize) {
        self.batches_seen.push(index);
    }
}

fn op_strategy() -> impl Strategy<Value = (u8, u64)> {
    // (kind selector, key selector)
    (0u8..10, 0u64..256)
}

/// Folds every observable of the event stream into one digest, so two runs
/// can be compared event-for-event without storing the streams.
#[derive(Default)]
struct StreamDigest {
    h: u64,
}

impl CttConsumer for StreamDigest {
    fn batch_start(&mut self, ev: &BatchEvent<'_>) {
        self.h = fold_digest(self.h, ev.index as u64);
        for &s in ev.bucket_sizes {
            self.h = fold_digest(self.h, u64::from(s));
        }
    }

    fn op(&mut self, ev: &CttOpEvent<'_>) {
        self.h = fold_digest(self.h, ev.bucket as u64);
        self.h = fold_digest(self.h, ev.key_id);
        self.h = fold_digest(self.h, u64::from(ev.shortcut_hit));
        self.h = fold_digest(self.h, ev.matches);
        self.h = fold_digest(self.h, ev.answer);
        for v in ev.visits {
            self.h = fold_digest(self.h, u64::from(v.node.index()));
            self.h = fold_digest(self.h, u64::from(v.footprint));
        }
    }

    fn lock_group(&mut self, group: &LockGroup) {
        self.h = fold_digest(self.h, u64::from(group.node.index()));
        self.h = fold_digest(self.h, u64::from(group.size));
    }

    fn batch_end(&mut self, index: usize) {
        self.h = fold_digest(self.h, !(index as u64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CTT execution ends in exactly the same tree as plain execution, for
    /// any batch size, mix, and shortcut setting.
    #[test]
    fn ctt_equals_plain_execution(
        loaded in proptest::collection::btree_set(0u64..256, 1..80),
        raw_ops in proptest::collection::vec(op_strategy(), 1..300),
        batch_size in 1usize..128,
        shortcuts in any::<bool>(),
        value_aware in any::<bool>(),
    ) {
        let keys = key_set(loaded.iter().copied().collect(), (256..320u64).collect());
        let ops: Vec<Op> = raw_ops
            .iter()
            .enumerate()
            .map(|(i, &(k, key))| {
                let kind = match k {
                    0..=3 => OpKind::Read,
                    4..=6 => OpKind::Update,
                    7..=8 => OpKind::Insert,
                    _ => OpKind::Remove,
                };
                let key = match kind {
                    OpKind::Insert => {
                        keys.insert_pool[(key as usize) % keys.insert_pool.len()].clone()
                    }
                    _ => keys.keys[(key as usize) % keys.keys.len()].clone(),
                };
                Op { kind, key, value: i as u64 }
            })
            .collect();

        let cfg = DcartConfig {
            shortcuts_enabled: shortcuts,
            tree_buffer_policy: if value_aware { BufferPolicy::ValueAware } else { BufferPolicy::Lru },
            ..Default::default()
        };

        let mut audit = Audit::default();
        let (ctt_tree, stats) = execute_ctt(&keys, &ops, &cfg, batch_size, &mut audit);
        let plain_tree = execute_with_traces(&keys, &ops, |_| {});

        // Functional equivalence: same keys, same order. (Values can differ
        // within a batch: concurrent same-key writes may serialize in any
        // order, which the CTT model exploits.)
        let a: Vec<Key> = ctt_tree.iter().map(|(k, _)| k.clone()).collect();
        let b: Vec<Key> = plain_tree.iter().map(|(k, _)| k.clone()).collect();
        prop_assert_eq!(a, b);
        prop_assert!(ctt_tree.check_invariants().is_empty());

        // Conservation laws.
        prop_assert_eq!(stats.ops, ops.len() as u64);
        prop_assert_eq!(audit.ops, stats.ops);
        prop_assert_eq!(stats.reads + stats.writes, stats.ops);
        prop_assert_eq!(audit.hits, stats.shortcut.hits);
        prop_assert_eq!(audit.lock_groups, stats.lock_groups);
        prop_assert!(stats.lock_groups <= stats.per_op_locks);
        if !shortcuts {
            prop_assert_eq!(stats.shortcut.hits, 0);
        }

        // Batch accounting.
        let expect_batches = ops.len().div_ceil(batch_size);
        prop_assert_eq!(stats.batches, expect_batches as u64);
        prop_assert_eq!(audit.batches_seen, (0..expect_batches).collect::<Vec<_>>());
    }

    /// Level-wise batched Traverse is observationally identical to per-op
    /// traversal: the full event stream (visit paths, lock groups, answers,
    /// shortcut hits), the statistics, and the final tree all match
    /// exactly, for any op stream, batch size, shortcut setting, fault
    /// plan, and worker count. The only sanctioned difference is the
    /// node-load counter, which may only ever *shrink* under wave sharing.
    #[test]
    fn traverse_modes_agree_on_random_streams(
        loaded in proptest::collection::btree_set(0u64..256, 1..80),
        raw_ops in proptest::collection::vec(op_strategy(), 1..300),
        batch_size in 1usize..128,
        shortcuts in any::<bool>(),
        chaos in any::<bool>(),
        threads_sel in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][threads_sel];
        let keys = key_set(loaded.iter().copied().collect(), (256..320u64).collect());
        let ops: Vec<Op> = raw_ops
            .iter()
            .enumerate()
            .map(|(i, &(k, key))| {
                let kind = match k {
                    0..=3 => OpKind::Read,
                    4..=5 => OpKind::Update,
                    6 => OpKind::Insert,
                    7 => OpKind::Remove,
                    _ => OpKind::Scan,
                };
                let key = match kind {
                    OpKind::Insert => {
                        keys.insert_pool[(key as usize) % keys.insert_pool.len()].clone()
                    }
                    _ => keys.keys[(key as usize) % keys.keys.len()].clone(),
                };
                // Scans carry their length in `value`; keep it small.
                let value = if kind == OpKind::Scan { (i as u64 % 7) + 1 } else { i as u64 };
                Op { kind, key, value }
            })
            .collect();
        let faults = if chaos {
            FaultPlan { seed: 42, shortcut_corrupt_rate: 0.05, ..FaultPlan::none() }
        } else {
            FaultPlan::none()
        };
        let cfg = DcartConfig { shortcuts_enabled: shortcuts, faults, ..Default::default() };

        let mut results = [TraverseMode::LevelWise, TraverseMode::PerOp].map(|mode| {
            let mut d = StreamDigest::default();
            let (tree, mut stats) =
                execute_ctt_with(&keys, &ops, &cfg, batch_size, threads, mode, &mut d);
            let loads = stats.shortcut.nodes_visited;
            stats.shortcut.nodes_visited = 0;
            let pairs: Vec<(Key, u64)> = tree.iter().map(|(k, &v)| (k.clone(), v)).collect();
            (format!("{stats:?}"), d.h, pairs, loads)
        });
        let (per_op_stats, per_op_digest, per_op_pairs, per_op_loads) =
            std::mem::take(&mut results[1]);
        let (lw_stats, lw_digest, lw_pairs, lw_loads) = std::mem::take(&mut results[0]);
        prop_assert_eq!(lw_stats, per_op_stats);
        prop_assert_eq!(lw_digest, per_op_digest);
        prop_assert_eq!(lw_pairs, per_op_pairs);
        prop_assert!(lw_loads <= per_op_loads,
            "wave grouping never loads more: {} > {}", lw_loads, per_op_loads);
    }

    /// Group memberships cover every write at least once (no write escapes
    /// the Trigger stage's lock accounting).
    #[test]
    fn lock_groups_cover_writes(
        loaded in proptest::collection::btree_set(0u64..128, 1..50),
        n_ops in 1usize..200,
        batch_size in 1usize..64,
    ) {
        let keys = key_set(loaded.iter().copied().collect(), (128..160u64).collect());
        let ops: Vec<Op> = (0..n_ops)
            .map(|i| Op {
                kind: OpKind::Update,
                key: keys.keys[i % keys.keys.len()].clone(),
                value: i as u64,
            })
            .collect();
        let mut audit = Audit::default();
        let (_, stats) = execute_ctt(&keys, &ops, &DcartConfig::default(), batch_size, &mut audit);
        prop_assert_eq!(stats.writes, n_ops as u64);
        prop_assert!(audit.group_members >= stats.writes,
            "members {} < writes {}", audit.group_members, stats.writes);
    }
}
