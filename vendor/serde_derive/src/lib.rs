//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` with no syn
//! or quote dependency: the item is parsed directly off the `TokenStream`
//! and the impl is emitted as a source string. Supported item shapes — the
//! only ones this workspace uses — are:
//!
//! - structs with named fields,
//! - tuple structs (newtype and multi-field),
//! - unit structs,
//! - enums whose variants are unit or tuple variants.
//!
//! Generic items, struct enum variants, and `#[serde(...)]` attributes are
//! not supported and abort compilation with a clear message.
//!
//! Deserialization codegen never needs field types: the input is captured
//! into `serde::__private::Content` and each field is decoded with
//! `serde::__private::from_content`, whose target type is inferred from the
//! constructed struct/variant.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item being derived for.
enum Item {
    /// `struct Name { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(A, B);` — `arity` counts the fields.
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { Unit, Newtype(T), Tuple(A, B) }`
    Enum { name: String, variants: Vec<(String, usize)> },
}

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => serialize_named_struct(name, fields),
        Item::TupleStruct { name, arity } => serialize_tuple_struct(name, *arity),
        Item::UnitStruct { name } => serialize_unit_struct(name),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => deserialize_named_struct(name, fields),
        Item::TupleStruct { name, arity } => deserialize_tuple_struct(name, *arity),
        Item::UnitStruct { name } => deserialize_unit_struct(name),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(crate)`, ...).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => panic!("serde_derive: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic items are not supported by the offline serde stub ({name})");
    }

    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct { name, arity: count_top_level_items(g.stream()) }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Item::UnitStruct { name },
        ("struct", None) => Item::UnitStruct { name },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        (k, other) => panic!("serde_derive: unsupported item shape `{k}` ({other:?})"),
    }
}

/// Extracts field names from the body of a named-field struct.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before each field.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            tokens.next();
        }
    }
    fields
}

/// Counts comma-separated items at angle-bracket depth 0 (tuple-struct
/// fields or tuple-variant payload fields).
fn count_top_level_items(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Extracts `(variant_name, payload_arity)` pairs from an enum body.
/// Arity 0 means a unit variant.
fn parse_variants(body: TokenStream) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes before each variant.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let arity = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                tokens.next();
                arity
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: struct enum variants are not supported ({name})")
            }
            _ => 0,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            tokens.next();
        }
        variants.push((name, arity));
    }
    variants
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn serialize_header(name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: serde::ser::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n"
    )
}

fn serialize_named_struct(name: &str, fields: &[String]) -> String {
    let mut src = serialize_header(name);
    src.push_str(&format!(
        "let mut __state = serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
        fields.len()
    ));
    for field in fields {
        src.push_str(&format!(
            "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{field}\", &self.{field})?;\n"
        ));
    }
    src.push_str("serde::ser::SerializeStruct::end(__state)\n}\n}\n");
    src
}

fn serialize_tuple_struct(name: &str, arity: usize) -> String {
    let mut src = serialize_header(name);
    if arity == 1 {
        src.push_str(&format!(
            "serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n"
        ));
    } else {
        src.push_str(&format!(
            "let mut __state = serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {arity})?;\n"
        ));
        for i in 0..arity {
            src.push_str(&format!(
                "serde::ser::SerializeTuple::serialize_field(&mut __state, &self.{i})?;\n"
            ));
        }
        src.push_str("serde::ser::SerializeTuple::end(__state)\n");
    }
    src.push_str("}\n}\n");
    src
}

fn serialize_unit_struct(name: &str) -> String {
    let mut src = serialize_header(name);
    src.push_str("serde::ser::Serializer::serialize_unit(__serializer)\n}\n}\n");
    src
}

fn serialize_enum(name: &str, variants: &[(String, usize)]) -> String {
    let mut src = serialize_header(name);
    src.push_str("match self {\n");
    for (index, (variant, arity)) in variants.iter().enumerate() {
        match *arity {
            0 => src.push_str(&format!(
                "{name}::{variant} => serde::ser::Serializer::serialize_unit_variant(\
                 __serializer, \"{name}\", {index}u32, \"{variant}\"),\n"
            )),
            1 => src.push_str(&format!(
                "{name}::{variant}(__f0) => serde::ser::Serializer::serialize_newtype_variant(\
                 __serializer, \"{name}\", {index}u32, \"{variant}\", __f0),\n"
            )),
            n => {
                let binders: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                src.push_str(&format!(
                    "{name}::{variant}({}) => {{\n\
                     let mut __state = serde::ser::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {index}u32, \"{variant}\", {n})?;\n",
                    binders.join(", ")
                ));
                for b in &binders {
                    src.push_str(&format!(
                        "serde::ser::SerializeTuple::serialize_field(&mut __state, {b})?;\n"
                    ));
                }
                src.push_str("serde::ser::SerializeTuple::end(__state)\n},\n");
            }
        }
    }
    src.push_str("}\n}\n}\n");
    src
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn deserialize_header(name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::de::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         let __content = <serde::__private::Content as serde::de::Deserialize>::deserialize(__deserializer)?;\n"
    )
}

fn deserialize_named_struct(name: &str, fields: &[String]) -> String {
    let mut src = deserialize_header(name);
    src.push_str(
        "let __entries = __content.into_map().map_err(<__D::Error as serde::de::Error>::custom)?;\n",
    );
    for field in fields {
        src.push_str(&format!(
            "let mut __v_{field}: ::std::option::Option<serde::__private::Content> = ::std::option::Option::None;\n"
        ));
    }
    src.push_str("for (__k, __v) in __entries {\nmatch __k.as_str() {\n");
    for field in fields {
        src.push_str(&format!(
            "::std::option::Option::Some(\"{field}\") => __v_{field} = ::std::option::Option::Some(__v),\n"
        ));
    }
    src.push_str("_ => {}\n}\n}\n");
    src.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
    for field in fields {
        src.push_str(&format!(
            "{field}: match __v_{field} {{\n\
             ::std::option::Option::Some(__c) => serde::__private::from_content(__c)?,\n\
             ::std::option::Option::None => return ::std::result::Result::Err(\
             <__D::Error as serde::de::Error>::custom(\
             \"missing field `{field}` in {name}\")),\n\
             }},\n"
        ));
    }
    src.push_str("})\n}\n}\n");
    src
}

fn deserialize_tuple_struct(name: &str, arity: usize) -> String {
    let mut src = deserialize_header(name);
    if arity == 1 {
        src.push_str(&format!(
            "::std::result::Result::Ok({name}(serde::__private::from_content(__content)?))\n"
        ));
    } else {
        src.push_str(&format!(
            "let __seq = __content.into_seq().map_err(<__D::Error as serde::de::Error>::custom)?;\n\
             if __seq.len() != {arity} {{\n\
             return ::std::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
             \"wrong number of fields for tuple struct {name}\"));\n\
             }}\n\
             let mut __it = __seq.into_iter();\n"
        ));
        src.push_str(&format!("::std::result::Result::Ok({name}(\n"));
        for _ in 0..arity {
            src.push_str("serde::__private::from_content(__it.next().unwrap())?,\n");
        }
        src.push_str("))\n");
    }
    src.push_str("}\n}\n");
    src
}

fn deserialize_unit_struct(name: &str) -> String {
    let mut src = deserialize_header(name);
    src.push_str(&format!("let _ = __content;\n::std::result::Result::Ok({name})\n}}\n}}\n"));
    src
}

fn deserialize_enum(name: &str, variants: &[(String, usize)]) -> String {
    let mut src = deserialize_header(name);
    src.push_str("match __content {\n");

    // Unit variants arrive as plain strings.
    src.push_str("serde::__private::Content::Str(__s) => match __s.as_str() {\n");
    for (variant, arity) in variants {
        if *arity == 0 {
            src.push_str(&format!(
                "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),\n"
            ));
        }
    }
    src.push_str(&format!(
        "__other => ::std::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
         ::std::format!(\"unknown variant `{{}}` for enum {name}\", __other))),\n\
         }},\n"
    ));

    // Data variants arrive as single-entry maps `{variant: payload}`.
    src.push_str(&format!(
        "serde::__private::Content::Map(__m) => {{\n\
         if __m.len() != 1 {{\n\
         return ::std::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
         \"expected a single-entry map for enum {name}\"));\n\
         }}\n\
         let (__k, __v) = __m.into_iter().next().unwrap();\n\
         match __k.as_str() {{\n"
    ));
    for (variant, arity) in variants {
        match *arity {
            0 => {}
            1 => src.push_str(&format!(
                "::std::option::Option::Some(\"{variant}\") => \
                 ::std::result::Result::Ok({name}::{variant}(serde::__private::from_content(__v)?)),\n"
            )),
            n => {
                src.push_str(&format!(
                    "::std::option::Option::Some(\"{variant}\") => {{\n\
                     let __seq = __v.into_seq().map_err(<__D::Error as serde::de::Error>::custom)?;\n\
                     if __seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
                     \"wrong payload arity for variant {variant} of {name}\"));\n\
                     }}\n\
                     let mut __it = __seq.into_iter();\n\
                     ::std::result::Result::Ok({name}::{variant}(\n"
                ));
                for _ in 0..n {
                    src.push_str("serde::__private::from_content(__it.next().unwrap())?,\n");
                }
                src.push_str("))\n},\n");
            }
        }
    }
    src.push_str(&format!(
        "__other => ::std::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
         ::std::format!(\"unknown variant `{{:?}}` for enum {name}\", __other))),\n\
         }}\n\
         }},\n"
    ));

    src.push_str(&format!(
        "__other => ::std::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
         ::std::format!(\"unexpected {{}} for enum {name}\", __other.kind()))),\n\
         }}\n}}\n}}\n"
    ));
    src
}
