//! Generation of strings matching simple regex-like patterns.
//!
//! Supports the pattern subset used as inline strategies in this workspace:
//! a sequence of atoms, where an atom is a literal character or a character
//! class `[a-z0-9_]`, optionally followed by a `{m}`, `{m,n}`, `+`, `*`, or
//! `?` quantifier.

use rand::Rng;

use crate::test_runner::TestRng;

/// One pattern atom plus its repetition bounds.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates a string matching `pattern`. Panics on syntax this mini
/// implementation doesn't support — extend it rather than silently
/// mis-generating.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let reps = rng.gen_range(atom.min..=atom.max);
        for _ in 0..reps {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| panic!("trailing `\\` in {pattern:?}"));
                i += 1;
                vec![c]
            }
            c if !"{}+*?".contains(c) => {
                i += 1;
                vec![c]
            }
            c => panic!("unsupported pattern syntax `{c}` in {pattern:?}"),
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("bad quantifier");
                        (m, m)
                    }
                }
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class in pattern {pattern:?}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_counted_repeat() {
        let mut rng = TestRng::for_case("string_test", 0);
        for _ in 0..200 {
            let s = generate_matching("[a-d]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::for_case("string_test2", 0);
        for _ in 0..50 {
            let s = generate_matching("ab[0-1]?c", &mut rng);
            assert!(s == "abc" || s == "ab0c" || s == "ab1c", "{s:?}");
        }
    }
}
