// Fixture: D2 must fire on wall-clock reads in the *server library* —
// deadlines there are written against the injected `time::Clock` trait,
// and a stray real-clock read would silently break every TestClock test.
use std::time::Instant;

pub fn deadline_from_real_clock(budget_ns: u64) -> u64 {
    let now = Instant::now();
    let epoch = std::time::SystemTime::now();
    let _ = epoch;
    now.elapsed().as_nanos() as u64 + budget_ns
}
