//! Fig. 3 — operation distribution of the real-world workloads
//! (paper §II-C).
//!
//! The paper plots operations per key prefix (0x00–0xFF) for IPGEO, DICT,
//! and EA, and reports two observations: hot prefixes draw tens of
//! thousands of operations (temporal similarity), and >96.65 % of tree
//! traversals touch only 5 % of ART nodes (spatial similarity).

use std::collections::BTreeMap;
use std::path::Path;

use dcart_baselines::execute_with_traces;
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// Fig. 3 report for one workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3Workload {
    /// Workload name.
    pub workload: String,
    /// Operations per first key byte (the paper's x-axis).
    pub ops_per_prefix: Vec<u64>,
    /// The hottest prefix and its op count.
    pub hottest: (u8, u64),
    /// Median per-prefix op count over non-empty prefixes.
    pub median_nonzero: u64,
    /// Fraction of node visits landing on the hottest 5 % of nodes.
    pub top5pct_visit_share: f64,
}

/// Full Fig. 3 report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3Report {
    /// One entry per real-world workload.
    pub workloads: Vec<Fig3Workload>,
}

fn analyze(workload: Workload, scale: &Scale) -> Fig3Workload {
    let keys = workload.generate(scale.keys, scale.seed);
    let ops = generate_ops(
        &keys,
        &OpStreamConfig { count: scale.ops, mix: Mix::C, theta: 0.99, seed: scale.seed },
    );

    let mut ops_per_prefix = vec![0u64; 256];
    for op in &ops {
        ops_per_prefix[usize::from(op.key.as_bytes()[0])] += 1;
    }

    // Node-visit skew from the actual traversals.
    let mut visits_per_node: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total_visits = 0u64;
    execute_with_traces(&keys, &ops, |op| {
        for v in &op.trace.visits {
            *visits_per_node.entry(v.node.index()).or_insert(0) += 1;
            total_visits += 1;
        }
    });
    let mut counts: Vec<u64> = visits_per_node.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top = (counts.len() / 20).max(1);
    let top_visits: u64 = counts[..top].iter().sum();
    let top5pct_visit_share = top_visits as f64 / total_visits.max(1) as f64;

    let hottest = ops_per_prefix
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(p, &c)| (p as u8, c))
        .expect("256 prefixes");
    let mut nonzero: Vec<u64> = ops_per_prefix.iter().copied().filter(|&c| c > 0).collect();
    nonzero.sort_unstable();
    let median_nonzero = nonzero.get(nonzero.len() / 2).copied().unwrap_or(0);

    Fig3Workload {
        workload: workload.name().to_string(),
        ops_per_prefix,
        hottest,
        median_nonzero,
        top5pct_visit_share,
    }
}

/// Runs the Fig. 3 analysis and writes `fig3.json`.
pub fn run(scale: &Scale, out_dir: &Path) -> Fig3Report {
    println!("== Fig. 3: operation distribution of the real-world workloads ==");
    let mut t = Table::new(&[
        "workload",
        "hottest prefix",
        "ops@hottest",
        "median ops/prefix",
        "top-5% node share %",
    ]);
    let workloads = crate::parallel::par_map(Workload::REAL_WORLD.to_vec(), |w| analyze(w, scale));
    for a in &workloads {
        t.row(&[
            a.workload.clone(),
            format!("0x{:02x}", a.hottest.0),
            a.hottest.1.to_string(),
            a.median_nonzero.to_string(),
            format!("{:.2}", a.top5pct_visit_share * 100.0),
        ]);
    }
    t.print();
    println!(
        "paper: IPGEO's 0x67 prefix draws >24,000 ops; >96.65 % of traversals touch 5 % of nodes\n"
    );
    let report = Fig3Report { workloads };
    write_report(out_dir, "fig3", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_statistics_match_paper_direction() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-fig3-test");
        let r = run(&scale, &tmp);
        assert_eq!(r.workloads.len(), 3);
        for w in &r.workloads {
            // Spatial similarity: the hot 5 % of nodes absorb the large
            // majority of traversals (paper: >96.65 %).
            assert!(
                w.top5pct_visit_share > 0.7,
                "{}: top-5% share {}",
                w.workload,
                w.top5pct_visit_share
            );
            // Temporal similarity: the hottest prefix is a clear spike.
            assert!(
                w.hottest.1 > 4 * w.median_nonzero.max(1),
                "{}: hottest {} vs median {}",
                w.workload,
                w.hottest.1,
                w.median_nonzero
            );
        }
        // IPGEO's spike is the calibrated 0x67 one.
        let ipgeo = &r.workloads[0];
        assert_eq!(ipgeo.hottest.0, 0x67, "IPGEO hottest prefix");
    }
}
