//! Proves every rule ID is live: each rule fires on its known-bad
//! fixture and stays quiet on its known-good twin. A rule that silently
//! stops matching (lexer regression, parser scoping typo, automaton
//! drift) fails here before it fails to protect the workspace.
//!
//! The flow rules care *where* a file lives — the O2 automata are armed
//! on specific workspace paths, C1/A1 only inside library crates — so
//! each fixture is analyzed at the path its rule watches.

use std::collections::BTreeSet;
use std::path::Path;

/// The workspace-relative path a rule's fixtures are analyzed at.
fn analysis_path(rule: &str) -> &'static str {
    match rule {
        // The durable-ack automaton is armed on the server core loop.
        "O2" => "crates/server/src/core_loop.rs",
        // Lock discipline and atomic-ordering audits run in lib crates;
        // `engine` is where the real pool/queue locks live.
        "C1" | "A1" => "crates/engine/src/fixture_under_test.rs",
        _ => "crates/core/src/fixture_under_test.rs",
    }
}

fn read_fixture(fixture: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Analyzes a fixture at `rule`'s watched path and returns the fired IDs.
fn fired(rule: &str, fixture: &str) -> BTreeSet<&'static str> {
    xtask::analyze_source(analysis_path(rule), &read_fixture(fixture))
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn every_rule_id_fires_on_its_bad_fixture() {
    for rule in xtask::RULE_IDS {
        let fixture = format!("{}_bad.rs", rule.to_lowercase());
        let rules = fired(rule, &fixture);
        assert!(rules.contains(rule), "rule {rule} did not fire on {fixture}; fired: {rules:?}");
    }
}

#[test]
fn every_rule_stays_quiet_on_its_good_fixture() {
    for rule in xtask::RULE_IDS {
        let fixture = format!("{}_good.rs", rule.to_lowercase());
        let rules = fired(rule, &fixture);
        assert!(
            !rules.contains(rule),
            "rule {rule} fired on the known-good {fixture}; fired: {rules:?}"
        );
    }
}

#[test]
fn bad_fixtures_fire_only_their_own_rule() {
    // Keeps the fixtures minimal: a D1 fixture that also trips P1 would
    // blur which rule a future regression broke. (The P1 fixture uses
    // plain std types, so it genuinely only trips P1, etc.)
    for rule in xtask::RULE_IDS {
        let fixture = format!("{}_bad.rs", rule.to_lowercase());
        let rules = fired(rule, &fixture);
        assert_eq!(rules, BTreeSet::from([rule]), "{fixture} should trip exactly its own rule");
    }
}

#[test]
fn good_fixtures_are_fully_clean() {
    // Stronger than rule-quiet: the good twins model code as it should be
    // written, so *no* rule may fire on them.
    for rule in xtask::RULE_IDS {
        let fixture = format!("{}_good.rs", rule.to_lowercase());
        let diags = xtask::analyze_source(analysis_path(rule), &read_fixture(&fixture));
        assert!(diags.is_empty(), "{fixture} should be fully clean: {diags:?}");
    }
}

#[test]
fn diagnostics_carry_real_spans() {
    let source = read_fixture("d1_bad.rs");
    let diags = xtask::lint_source("crates/core/src/fixture_under_test.rs", &source);
    for d in &diags {
        let line = source.lines().nth(d.line - 1).expect("diagnostic line exists");
        let name = if d.rule == "D1" { "Hash" } else { "" };
        assert!(
            line[d.col - 1..].starts_with(name),
            "span {}:{} does not point at the offending token in {line:?}",
            d.line,
            d.col
        );
    }
    assert!(diags.len() >= 5, "all five D1 sites in the fixture are reported");
}

#[test]
fn unsafe_fires_despite_allow_markers_and_test_regions() {
    // The unsafe confinement check is deliberately harder than the rest of
    // P1: the fixture wraps its `unsafe` blocks in an allow_file marker, a
    // line marker, and a #[cfg(test)] region — all three must fail to
    // silence it.
    let source = read_fixture("p1_unsafe_bad.rs");
    let diags = xtask::lint_source("crates/core/src/fixture_under_test.rs", &source);
    let unsafe_hits: Vec<_> =
        diags.iter().filter(|d| d.rule == "P1" && d.msg.contains("unsafe")).collect();
    assert_eq!(unsafe_hits.len(), 2, "both unsafe blocks must be reported: {diags:?}");
    for d in &unsafe_hits {
        let line = source.lines().nth(d.line - 1).expect("diagnostic line exists");
        assert!(line[d.col - 1..].starts_with("unsafe"), "span points at the token: {line:?}");
    }
}

#[test]
fn unsafe_is_quiet_in_the_sanctioned_kernel_file() {
    // The same source lints clean (of unsafe findings) at a sanctioned path.
    let source = read_fixture("p1_unsafe_bad.rs");
    for sanctioned in xtask::rules::UNSAFE_SANCTIONED {
        let diags = xtask::lint_source(sanctioned, &source);
        assert!(
            !diags.iter().any(|d| d.msg.contains("unsafe")),
            "sanctioned path {sanctioned} must permit unsafe: {diags:?}"
        );
    }
}

#[test]
fn per_rule_allow_markers_silence_bad_fixtures() {
    for rule in xtask::RULE_IDS {
        let fixture = format!("{}_bad.rs", rule.to_lowercase());
        let source = read_fixture(&fixture);
        let allowed = format!("// dcart_lint::allow_file({rule}) -- fixture self-test\n{source}");
        let rules: BTreeSet<&str> = xtask::analyze_source(analysis_path(rule), &allowed)
            .into_iter()
            .map(|d| d.rule)
            .collect();
        assert!(!rules.contains(rule), "allow_file({rule}) did not silence {fixture}");
    }
}

#[test]
fn d2_fires_in_the_server_library_but_not_its_binary() {
    // The serving layer's whole determinism story rests on this scoping:
    // wall-clock reads are banned in `crates/server/src/` (deadlines go
    // through the injected `time::Clock`) and sanctioned only under
    // `crates/server/src/bin/`, where the real clock is constructed.
    let bad = read_fixture("d2_server_bad.rs");
    let good = read_fixture("d2_server_good.rs");

    let in_lib: BTreeSet<&str> = xtask::lint_source("crates/server/src/core_loop.rs", &bad)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    assert!(in_lib.contains("D2"), "wall-clock reads in the server library must fire D2");

    let in_bin = xtask::lint_source("crates/server/src/bin/dcart-server/clock.rs", &good);
    assert!(in_bin.is_empty(), "the server binary is D2-whitelisted: {in_bin:?}");

    // And the whitelist is exactly the bin directory: the same good
    // fixture still fires when placed one level up, in the library.
    let good_in_lib: BTreeSet<&str> = xtask::lint_source("crates/server/src/clock.rs", &good)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    assert!(good_in_lib.contains("D2"), "only src/bin is whitelisted, not the server lib");
}

#[test]
fn flow_rules_are_scoped_to_their_paths() {
    // The same bad sources are *quiet* outside the paths their rules
    // watch: the O2 automaton is not armed in `crates/core/src/lib.rs`,
    // and C1/A1 do not run in the bench harness (not a LIB_CRATE).
    let o2 = read_fixture("o2_bad.rs");
    let diags = xtask::analyze_source("crates/core/src/lib.rs", &o2);
    assert!(
        !diags.iter().any(|d| d.rule == "O2"),
        "O2 must only arm on its automaton files: {diags:?}"
    );

    let a1 = read_fixture("a1_bad.rs");
    let diags = xtask::analyze_source("crates/bench/src/lib.rs", &a1);
    assert!(!diags.iter().any(|d| d.rule == "A1"), "A1 is scoped to lib crates: {diags:?}");
}
