//! Seeded deterministic arrival processes for the serving layer's
//! closed-loop load generator.
//!
//! Everything here is integer arithmetic over a splitmix64 stream — no
//! floats, no transcendental functions — so a `(seed, qps, pattern)`
//! triple produces the *same byte-identical timestamp stream on every
//! platform*, which is what lets `BENCH_serve.json` cells be compared
//! across machines and lets the chaos experiment replay the exact offered
//! load that preceded a kill.
//!
//! Two shapes:
//!
//! * [`ArrivalPattern::Uniform`] — independent gaps drawn uniformly in
//!   `[0, 2·mean]`; steady offered load with per-request jitter.
//! * [`ArrivalPattern::Bursty`] — a Poisson-like clumped process:
//!   geometrically-sized bursts (mean ≈ 2, capped at 64) arrive together,
//!   separated by gaps sized to the burst so the *long-run* rate still
//!   matches the target QPS. This is the overload cell's stressor: the
//!   instantaneous rate swings far above the mean while the average stays
//!   honest.

/// Arrival process shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalPattern {
    /// Jittered-uniform gaps: each inter-arrival time is uniform in
    /// `[0, 2·mean_gap]`, so the mean rate is the target QPS and the
    /// instantaneous rate never strays far.
    Uniform,
    /// Clumped, Poisson-like arrivals: bursts of geometric size share one
    /// instant, and the gap after a burst of `s` requests is uniform in
    /// `[0, 2·s·mean_gap]` — mean-preserving, but with a heavy-tailed
    /// instantaneous rate.
    Bursty,
}

/// An infinite, deterministic stream of absolute arrival timestamps
/// (nanoseconds from an arbitrary 0 origin), monotone non-decreasing.
///
/// # Examples
///
/// ```
/// use dcart_workloads::{ArrivalPattern, Arrivals};
///
/// let mut a = Arrivals::new(42, 10_000, ArrivalPattern::Uniform);
/// let first: Vec<u64> = (&mut a).take(3).collect();
/// let again: Vec<u64> = Arrivals::new(42, 10_000, ArrivalPattern::Uniform)
///     .take(3)
///     .collect();
/// assert_eq!(first, again, "same seed, same stream");
/// ```
#[derive(Clone, Debug)]
pub struct Arrivals {
    state: u64,
    now_ns: u64,
    mean_gap_ns: u64,
    pattern: ArrivalPattern,
    /// Arrivals still owed at the current instant (bursty mode).
    burst_left: u32,
}

impl Arrivals {
    /// A stream targeting `qps` requests per second on average (clamped to
    /// at least 1), shaped by `pattern`, fully determined by `seed`.
    pub fn new(seed: u64, qps: u64, pattern: ArrivalPattern) -> Self {
        Arrivals {
            // Decorrelate the raw seed so seeds 1, 2, 3 ... give unrelated
            // streams (same rationale as the fault injector's site salts).
            state: splitmix64(seed ^ 0xa2c1_5a11_d0c4_11e7),
            now_ns: 0,
            mean_gap_ns: 1_000_000_000 / qps.max(1),
            pattern,
            burst_left: 0,
        }
    }

    fn draw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, bound]` (inclusive). The modulo bias is ~2⁻⁴⁴ at
    /// serving-relevant bounds — irrelevant next to the jitter itself.
    fn uniform(&mut self, bound: u64) -> u64 {
        let r = self.draw();
        r % (bound + 1)
    }

    /// The next arrival's absolute timestamp in nanoseconds.
    pub fn next_ns(&mut self) -> u64 {
        match self.pattern {
            ArrivalPattern::Uniform => {
                self.now_ns += self.uniform(2 * self.mean_gap_ns);
            }
            ArrivalPattern::Bursty => {
                if self.burst_left > 0 {
                    // Mid-burst: same instant.
                    self.burst_left -= 1;
                } else {
                    // Geometric burst size (mean ≈ 2, capped): count the
                    // trailing zeros of one draw.
                    let size = 1 + self.draw().trailing_zeros().min(6);
                    // The gap carries the whole burst's rate budget, so
                    // the long-run mean stays `mean_gap` per arrival.
                    let budget = 2 * u64::from(size) * self.mean_gap_ns;
                    self.now_ns += self.uniform(budget);
                    self.burst_left = size - 1;
                }
            }
        }
        self.now_ns
    }
}

impl Iterator for Arrivals {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_ns())
    }
}

/// The splitmix64 finalizer (same constants as the engine's fault
/// streams): a bijective avalanche over the counter state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The streams are part of the bench format's reproducibility story:
    /// if this pin moves, every archived BENCH_serve.json offered-load
    /// trace silently changes meaning. Update deliberately or never.
    #[test]
    fn pinned_streams_for_seed_7() {
        let uni: Vec<u64> = Arrivals::new(7, 100_000, ArrivalPattern::Uniform).take(6).collect();
        let bur: Vec<u64> = Arrivals::new(7, 100_000, ArrivalPattern::Bursty).take(6).collect();
        assert_eq!(uni, [11872, 25446, 31757, 32657, 44958, 64252]);
        assert_eq!(bur, [13574, 48726, 48726, 68020, 78525, 78525]);
    }

    #[test]
    fn monotone_and_deterministic() {
        for pattern in [ArrivalPattern::Uniform, ArrivalPattern::Bursty] {
            let a: Vec<u64> = Arrivals::new(99, 50_000, pattern).take(10_000).collect();
            let b: Vec<u64> = Arrivals::new(99, 50_000, pattern).take(10_000).collect();
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{pattern:?} went backwards");
            let c: Vec<u64> = Arrivals::new(100, 50_000, pattern).take(10_000).collect();
            assert_ne!(a, c, "{pattern:?} ignores the seed");
        }
    }

    #[test]
    fn long_run_rate_matches_target() {
        for pattern in [ArrivalPattern::Uniform, ArrivalPattern::Bursty] {
            let n = 200_000u64;
            let last =
                Arrivals::new(3, 25_000, pattern).take(n as usize).last().expect("infinite stream");
            let mean_gap = last / n;
            let target = 1_000_000_000 / 25_000;
            let err_pct = mean_gap.abs_diff(target) * 100 / target;
            assert!(err_pct <= 3, "{pattern:?}: mean gap {mean_gap} vs target {target}");
        }
    }

    #[test]
    fn bursty_actually_bursts() {
        let a: Vec<u64> = Arrivals::new(11, 100_000, ArrivalPattern::Bursty).take(10_000).collect();
        let coincident = a.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(coincident > 1_000, "only {coincident} coincident pairs in 10k arrivals");
        let u: Vec<u64> =
            Arrivals::new(11, 100_000, ArrivalPattern::Uniform).take(10_000).collect();
        let uni_coincident = u.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(uni_coincident < coincident, "uniform should clump less than bursty");
    }

    #[test]
    fn zero_qps_clamps_instead_of_dividing_by_zero() {
        let mut a = Arrivals::new(1, 0, ArrivalPattern::Uniform);
        let t = a.next_ns();
        assert!(t <= 2_000_000_000, "clamped to 1 qps: gap at most 2s");
    }
}
