//! Minimal aligned-column text tables for terminal output.

/// An aligned text table.
///
/// # Examples
///
/// ```
/// use dcart_bench::Table;
///
/// let mut t = Table::new(&["engine", "time"]);
/// t.row(&["ART", "1.00 s"]);
/// let s = t.render();
/// assert!(s.contains("ART"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align all but the first column (numbers read better).
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Numbers right-aligned in their column.
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
