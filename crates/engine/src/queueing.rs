//! Latency percentiles and open-loop queueing, for the throughput–latency
//! curves of the paper's Fig. 10.

use serde::{Deserialize, Serialize};

/// Records per-operation latencies and reports percentiles.
///
/// # Examples
///
/// ```
/// use dcart_engine::LatencyRecorder;
///
/// let mut rec = LatencyRecorder::new();
/// for l in 1..=100u64 {
///     rec.record(l as f64);
/// }
/// assert_eq!(rec.percentile(0.99), 99.0);
/// assert_eq!(rec.percentile(0.50), 50.0);
/// ```
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (any consistent unit).
    pub fn record(&mut self, latency: f64) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (`p` in `(0, 1]`), by nearest-rank.
    ///
    /// Returns `0.0` for an empty recorder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "percentile must be in (0, 1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((p * self.samples.len() as f64).ceil() as usize).max(1);
        self.samples[rank - 1]
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Open-loop M/D/c queueing estimate of waiting time.
///
/// For the Fig. 10 throughput–latency sweep we treat each engine as `c`
/// deterministic servers with mean service time `service`: as the offered
/// rate approaches capacity, queueing delay grows without bound. Uses the
/// standard M/D/1 waiting-time formula per server after splitting arrivals.
///
/// Returns `None` when the system is saturated (`rate >= c / service`).
pub fn mdc_wait(rate: f64, service: f64, servers: f64) -> Option<f64> {
    assert!(rate >= 0.0 && service > 0.0 && servers >= 1.0);
    let per_server_rate = rate / servers;
    let rho = per_server_rate * service;
    if rho >= 1.0 {
        return None;
    }
    // M/D/1: Wq = ρ · s / (2(1 − ρ)).
    Some(rho * service / (2.0 * (1.0 - rho)))
}

/// A bounded FIFO occupancy model with overflow accounting, used to model
/// queue-overflow backpressure: arrivals beyond the free space are rejected
/// and must be re-offered after the queue drains, costing stall cycles.
///
/// This is an occupancy counter, not an element store — items are
/// indistinguishable, only depth matters for timing.
#[derive(Clone, Debug)]
pub struct BoundedQueue {
    capacity: u64,
    depth: u64,
    overflows: u64,
    rejected: u64,
}

impl BoundedQueue {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "a queue needs nonzero capacity");
        BoundedQueue { capacity, depth: 0, overflows: 0, rejected: 0 }
    }

    /// Offers `items` arrivals at once; accepts up to the free space and
    /// returns the number rejected (the overflow). A nonzero overflow
    /// increments the overflow-event counter once.
    pub fn offer(&mut self, items: u64) -> u64 {
        let free = self.capacity - self.depth;
        let accepted = items.min(free);
        self.depth += accepted;
        let over = items - accepted;
        if over > 0 {
            self.overflows += 1;
            self.rejected += over;
        }
        over
    }

    /// Drains up to `items` from the queue, returning how many were removed.
    pub fn drain(&mut self, items: u64) -> u64 {
        let removed = items.min(self.depth);
        self.depth -= removed;
        removed
    }

    /// Current occupancy.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Number of offers that overflowed (≥ 1 rejection).
    pub fn overflow_events(&self) -> u64 {
        self.overflows
    }

    /// Total items rejected across all offers.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_accepts_until_full_then_overflows() {
        let mut q = BoundedQueue::new(10);
        assert_eq!(q.offer(6), 0);
        assert_eq!(q.offer(6), 2, "only 4 slots free");
        assert_eq!(q.depth(), 10);
        assert_eq!(q.overflow_events(), 1);
        assert_eq!(q.rejected(), 2);
        assert_eq!(q.drain(7), 7);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.offer(3), 0);
        assert_eq!(q.overflow_events(), 1, "no new overflow");
    }

    #[test]
    fn bounded_queue_drain_caps_at_depth() {
        let mut q = BoundedQueue::new(4);
        q.offer(2);
        assert_eq!(q.drain(100), 2);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.record(v);
        }
        assert_eq!(r.percentile(0.2), 1.0);
        assert_eq!(r.percentile(0.5), 3.0);
        assert_eq!(r.percentile(1.0), 5.0);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn empty_is_zero() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.percentile(0.99), 0.0);
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    fn mean_is_arithmetic() {
        let mut r = LatencyRecorder::new();
        r.record(2.0);
        r.record(4.0);
        assert_eq!(r.mean(), 3.0);
    }

    #[test]
    fn recording_after_percentile_stays_correct() {
        let mut r = LatencyRecorder::new();
        r.record(10.0);
        assert_eq!(r.percentile(1.0), 10.0);
        r.record(1.0);
        assert_eq!(r.percentile(0.5), 1.0);
    }

    #[test]
    fn wait_grows_toward_saturation() {
        let s = 1.0;
        let low = mdc_wait(0.1, s, 1.0).unwrap();
        let high = mdc_wait(0.9, s, 1.0).unwrap();
        assert!(high > 10.0 * low);
        assert_eq!(mdc_wait(1.0, s, 1.0), None, "saturated");
    }

    #[test]
    fn more_servers_reduce_wait() {
        let one = mdc_wait(0.8, 1.0, 1.0).unwrap();
        let many = mdc_wait(0.8, 1.0, 16.0).unwrap();
        assert!(many < one);
    }
}
