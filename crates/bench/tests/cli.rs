//! Shell-out tests for the `repro` CLI contract: bad invocations exit
//! non-zero with a one-line actionable message, good ones exit zero.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("spawn repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_arguments_is_an_error_with_guidance() {
    let out = repro(&[]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("missing exhibit"), "names the problem: {err}");
    assert!(err.contains("usage: repro"), "shows the fix: {err}");
}

#[test]
fn unknown_exhibit_is_an_error_naming_the_input() {
    let out = repro(&["fig99"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown exhibit 'fig99'"), "echoes the bad input: {err}");
    assert!(err.contains("crash"), "usage lists the durability exhibits: {err}");
}

#[test]
fn unknown_flag_is_an_error_naming_the_flag() {
    let out = repro(&["table1", "--bogus"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("unknown option '--bogus'"));
}

#[test]
fn invalid_flag_values_are_errors_with_the_expected_type() {
    for (args, needle) in [
        (vec!["table1", "--scale", "gigantic"], "unknown scale 'gigantic'"),
        (vec!["table1", "--scale"], "--scale needs a value"),
        (vec!["table1", "--jobs", "many"], "positive integer"),
        (vec!["table1", "--sou-threads", "-1"], "positive integer"),
        (vec!["soak", "--batches", "0"], "--batches must be at least 1"),
        (vec!["soak", "--batches", "x"], "positive integer"),
        (vec!["crash", "--seed", "abc"], "unsigned integer"),
        (vec!["table1", "--out"], "--out needs a directory"),
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr_of(&out);
        assert!(err.contains(needle), "{args:?}: expected '{needle}' in: {err}");
        assert_eq!(
            err.lines().take_while(|l| !l.starts_with("usage:")).count(),
            1,
            "{args:?}: the diagnostic itself is one line: {err}"
        );
    }
}

#[test]
fn help_exits_zero_and_prints_usage() {
    for flag in ["help", "--help", "-h"] {
        let out = repro(&[flag]);
        assert!(out.status.success(), "{flag} is not an error");
        assert!(stderr_of(&out).contains("usage: repro"));
    }
}

#[test]
fn a_real_exhibit_exits_zero() {
    let tmp = std::env::temp_dir().join("dcart-cli-test");
    let out = repro(&["table1", "--out", tmp.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    assert!(tmp.join("table1.json").exists());
}
