//! Known-bad: a suppression whose rule no longer fires anywhere near it.
//! The code it once excused was refactored away; the marker now silently
//! re-licenses the next real violation on this line.

// dcart_lint::allow(D1) -- stale: the map this excused is long gone
pub fn sum(values: &[u64]) -> u64 {
    values.iter().sum()
}
