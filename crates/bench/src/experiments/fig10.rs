//! Fig. 10 — throughput–latency curves (paper §IV-B).
//!
//! The paper sweeps the number of in-flight operations on the three
//! real-world workloads and plots throughput against P99 latency: DCART
//! sits down-and-right of every baseline (more throughput at lower tail
//! latency).

use std::path::Path;

use dcart_workloads::{Mix, Workload};
use serde::{Deserialize, Serialize};

use crate::matrix::run_engine;
use crate::{write_report, Scale, Table};

/// One point of a throughput–latency curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// In-flight operations at this point.
    pub concurrency: usize,
    /// Throughput in Mops/s.
    pub throughput_mops: f64,
    /// P99 latency in µs.
    pub p99_us: f64,
}

/// Full Fig. 10 report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig10Report {
    /// All curve points.
    pub points: Vec<CurvePoint>,
}

const CURVE_ENGINES: [&str; 6] = ["ART", "Heart", "SMART", "CuART", "DCART-C", "DCART"];

/// Runs the sweep and writes `fig10.json`.
pub fn run(scale: &Scale, out_dir: &Path) -> Fig10Report {
    println!("== Fig. 10: throughput vs P99 latency (real-world workloads) ==");
    let mut points = Vec::new();
    for workload in Workload::REAL_WORLD {
        println!("-- {} --", workload.name());
        let mut t = Table::new(&["engine", "in-flight ops", "Mops/s", "P99 us"]);
        for engine in CURVE_ENGINES {
            for conc in [4_096usize, 16_384, 65_536, 262_144] {
                let conc = conc.min(scale.ops);
                let mut s = *scale;
                s.concurrency = conc;
                let r = run_engine(engine, workload, &s, Mix::C);
                let p = CurvePoint {
                    engine: engine.to_string(),
                    workload: workload.name().to_string(),
                    concurrency: conc,
                    throughput_mops: r.throughput_mops(),
                    p99_us: r.latency_p99_us,
                };
                t.row(&[
                    engine.to_string(),
                    conc.to_string(),
                    format!("{:.2}", p.throughput_mops),
                    format!("{:.1}", p.p99_us),
                ]);
                points.push(p);
            }
        }
        t.print();
    }
    println!("paper: DCART achieves lower P99 latency at higher throughput than all baselines\n");
    let report = Fig10Report { points };
    write_report(out_dir, "fig10", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcart_dominates_the_curves() {
        let mut scale = Scale::smoke();
        scale.ops = 40_000;
        let tmp = std::env::temp_dir().join("dcart-fig10-test");
        let r = run(&scale, &tmp);
        for workload in Workload::REAL_WORLD {
            let best = |engine: &str| {
                r.points
                    .iter()
                    .filter(|p| p.engine == engine && p.workload == workload.name())
                    .map(|p| p.throughput_mops)
                    .fold(0.0f64, f64::max)
            };
            // DCART's best throughput beats every baseline's best.
            let dcart = best("DCART");
            for baseline in ["ART", "Heart", "SMART", "CuART", "DCART-C"] {
                assert!(
                    dcart > best(baseline),
                    "{}: DCART {dcart} vs {baseline} {}",
                    workload.name(),
                    best(baseline)
                );
            }
            // And its P99 at peak throughput is lower than the baselines'.
            let p99_at_peak = |engine: &str| {
                r.points
                    .iter()
                    .filter(|p| p.engine == engine && p.workload == workload.name())
                    .max_by(|a, b| a.throughput_mops.total_cmp(&b.throughput_mops))
                    .map(|p| p.p99_us)
                    .unwrap()
            };
            assert!(p99_at_peak("DCART") < p99_at_peak("ART"), "{}", workload.name());
        }
    }
}
