//! Integration tests for the serving core: batch determinism against the
//! offline repro path, zero acked-write loss across an injected kill,
//! deadline enforcement under a hand-driven clock, drain behavior, and a
//! TCP end-to-end smoke — all with `TestClock`, so nothing here depends
//! on wall time.

use std::sync::mpsc;
use std::sync::Arc;

use dcart::{CttConsumer, CttSession, DcartConfig, ExecOpts, TraverseMode};
use dcart_art::Key;
use dcart_engine::time::{Clock, TestClock};
use dcart_engine::{CrashPlan, CrashSite, RejectReason};
use dcart_server::wire::{Request, RequestKind, Status};
use dcart_server::{ServerConfig, ServerCore, ServerShared};
use dcart_workloads::{Op, OpKind};

struct Silent;
impl CttConsumer for Silent {}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded mixed op stream as `(wire kind, key, value)` triples.
fn mixed_ops(seed: u64, n: u64) -> Vec<(RequestKind, u64, u64)> {
    (0..n)
        .map(|i| {
            let mix = splitmix64(seed ^ i) % 100;
            let key = splitmix64(seed ^ 0xbeef ^ i) % 512;
            if mix < 45 {
                (RequestKind::Insert, key, splitmix64(key ^ i))
            } else if mix < 55 {
                (RequestKind::Remove, key, 0)
            } else if mix < 65 {
                (RequestKind::Scan, key, 8)
            } else {
                (RequestKind::Get, key, 0)
            }
        })
        .collect()
}

fn to_executor_ops(triples: &[(RequestKind, u64, u64)]) -> Vec<Op> {
    triples
        .iter()
        .map(|&(kind, key, value)| {
            let kind = match kind {
                RequestKind::Insert => OpKind::Insert,
                RequestKind::Remove => OpKind::Remove,
                RequestKind::Scan => OpKind::Scan,
                _ => OpKind::Read,
            };
            Op { kind, key: Key::from_u64(key), value }
        })
        .collect()
}

fn mem_config(batch_size: usize, threads: usize, steal: bool) -> ServerConfig {
    ServerConfig { batch_size, threads, steal, data_dir: None, ..ServerConfig::default() }
}

/// Runs `triples` through the server core in watermark-exact batches and
/// returns `(answer_digest, tree_digest)`.
fn server_digests(triples: &[(RequestKind, u64, u64)], config: ServerConfig) -> (u64, u64) {
    let clock = TestClock::new();
    let batch = config.batch_size;
    let shared = ServerShared::new(config.admission, Arc::new(clock));
    let mut core = ServerCore::open(config, Arc::clone(&shared), &[]).expect("open");
    let (tx, rx) = mpsc::channel();
    for chunk in triples.chunks(batch) {
        for (i, &(kind, key, value)) in chunk.iter().enumerate() {
            let req = Request { req_id: i as u64, kind, budget_ns: 1 << 40, key, value };
            assert!(shared.submit(req, &tx).is_none(), "admitted");
        }
        core.flush_now();
    }
    // Every submitted request got exactly one Ok answer.
    let mut answered = 0;
    while let Ok(resp) = rx.try_recv() {
        assert_eq!(resp.status, Status::Ok);
        answered += 1;
    }
    assert_eq!(answered, triples.len());
    let answer = core.answer_digest();
    let tree = core.into_tree_digest().expect("tree");
    (answer, tree)
}

/// The tentpole invariant: the server path and the offline repro path
/// produce byte-identical digests for the same ops and batch boundaries,
/// at every thread count and with stealing on.
#[test]
fn server_batches_match_repro_path_digests() {
    let batch = 64;
    let triples = mixed_ops(7, 640);
    let ops = to_executor_ops(&triples);

    let mut session = CttSession::from_pairs(
        &[],
        &DcartConfig::default(),
        &ExecOpts { threads: 1, mode: TraverseMode::LevelWise, steal: false },
        batch,
        0,
    )
    .expect("session");
    for chunk in ops.chunks(batch) {
        session.execute_batch(chunk, &mut Silent).expect("exec");
    }
    let repro_answer = session.answer_digest();
    let (tree, _, _) = session.finish().expect("finish");
    let repro_tree = dcart::tree_digest(&tree);

    for (threads, steal) in [(1, false), (2, false), (4, true)] {
        let (answer, tree) = server_digests(&triples, mem_config(batch, threads, steal));
        assert_eq!(
            answer, repro_answer,
            "answer digest diverged at threads={threads} steal={steal}"
        );
        assert_eq!(tree, repro_tree, "tree digest diverged at threads={threads} steal={steal}");
    }
}

/// The chaos invariant, in-process: kill the durability layer between a
/// batch's ops record and its commit mark, restart, and every
/// acknowledged insert must still be readable — while the killed batch
/// (answered with errors, never acked) must NOT have been replayed.
#[test]
fn acked_writes_survive_injected_kill_and_restart() {
    let dir = std::env::temp_dir().join(format!("dcart_srv_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let batch = 16usize;
    let crash_at = 5u64;
    let config = ServerConfig {
        batch_size: batch,
        data_dir: Some(dir.clone()),
        checkpoint_every: 3,
        crash: Some(CrashPlan { site: CrashSite::BeforeCommit, at: crash_at, seed: 9 }),
        ..ServerConfig::default()
    };
    let clock = TestClock::new();
    let shared = ServerShared::new(config.admission, Arc::new(clock));
    let mut core = ServerCore::open(config, Arc::clone(&shared), &[]).expect("open");

    let (tx, rx) = mpsc::channel();
    let mut acked_keys = Vec::new();
    let mut errored = 0u64;
    let total_batches = 8u64;
    for b in 0..total_batches {
        for i in 0..batch as u64 {
            let key = b * batch as u64 + i;
            let req = Request {
                req_id: key,
                kind: RequestKind::Insert,
                budget_ns: 1 << 40,
                key,
                value: key * 3 + 1,
            };
            if shared.submit(req, &tx).is_some() {
                errored += 1; // dead server answers immediately
            }
        }
        core.flush_now();
        while let Ok(resp) = rx.try_recv() {
            match resp.status {
                Status::Ok => acked_keys.push(resp.req_id),
                Status::Error => errored += 1,
                Status::Rejected => panic!("nothing should be rejected here"),
            }
        }
    }
    assert!(shared.is_dead(), "injected crash must kill the core");
    assert_eq!(acked_keys.len() as u64, crash_at * batch as u64, "acks stop at the kill");
    assert!(errored > 0, "the killed batch is answered with errors, not silence");

    // Restart on the same directory.
    let config2 =
        ServerConfig { batch_size: batch, data_dir: Some(dir.clone()), ..ServerConfig::default() };
    let clock2 = TestClock::new();
    let shared2 = ServerShared::new(config2.admission, Arc::new(clock2));
    let mut core2 = ServerCore::open(config2, Arc::clone(&shared2), &[]).expect("recover");
    let replayed = shared2.stats().core.replayed_batches;
    // Checkpoint at batch 3 absorbed the first batches; batches 3,4 are
    // committed in the WAL; batch 5 (killed before commit) must not be.
    assert_eq!(replayed, crash_at - 3, "only committed post-checkpoint batches replay");

    let (tx2, rx2) = mpsc::channel();
    for chunk in acked_keys.chunks(batch) {
        for &key in chunk {
            let req =
                Request { req_id: key, kind: RequestKind::Get, budget_ns: 1 << 40, key, value: 0 };
            assert!(shared2.submit(req, &tx2).is_none());
        }
        core2.flush_now();
    }
    let mut lost = Vec::new();
    let mut got = 0;
    while let Ok(resp) = rx2.try_recv() {
        got += 1;
        assert_eq!(resp.status, Status::Ok);
        if resp.value != Some(resp.req_id * 3 + 1) {
            lost.push(resp.req_id);
        }
    }
    assert_eq!(got, acked_keys.len());
    assert!(lost.is_empty(), "acked writes lost after recovery: {lost:?}");

    // And the killed batch really is gone: its keys read as absent.
    let killed_key = crash_at * batch as u64;
    let req = Request {
        req_id: killed_key,
        kind: RequestKind::Get,
        budget_ns: 1 << 40,
        key: killed_key,
        value: 0,
    };
    assert!(shared2.submit(req, &tx2).is_none());
    core2.flush_now();
    let resp = rx2.try_recv().expect("answered");
    assert_eq!(resp.value, None, "an unacked (killed) write must not be replayed");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Deadlines under a hand-driven clock: a request that expires while
/// queued is answered `DeadlineExceeded` at flush and never executed.
#[test]
fn queued_requests_past_deadline_are_expired_not_executed() {
    let config = mem_config(64, 1, false);
    let clock = TestClock::new();
    let shared = ServerShared::new(config.admission, Arc::new(clock.clone()));
    let mut core = ServerCore::open(config, Arc::clone(&shared), &[]).expect("open");

    let (tx, rx) = mpsc::channel();
    let insert =
        Request { req_id: 1, kind: RequestKind::Insert, budget_ns: 1_000, key: 7, value: 99 };
    assert!(shared.submit(insert, &tx).is_none(), "admitted at t=0");
    clock.advance(2_000); // past the 1 µs budget
    core.flush_now();
    let resp = rx.try_recv().expect("answered");
    assert_eq!(resp.status, Status::Rejected);
    assert_eq!(resp.reject, Some(RejectReason::DeadlineExceeded));
    assert_eq!(shared.stats().core.expired_in_queue, 1);
    assert_eq!(shared.stats().core.ops, 0, "expired request never reached the executor");

    // The same key is still absent: the expired insert did not run.
    let get = Request { req_id: 2, kind: RequestKind::Get, budget_ns: 1 << 40, key: 7, value: 0 };
    assert!(shared.submit(get, &tx).is_none());
    core.flush_now();
    let resp = rx.try_recv().expect("answered");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.value, None);

    // An already-expired budget is rejected at admission, before queueing.
    clock.advance(10);
    let late = Request { req_id: 3, kind: RequestKind::Get, budget_ns: 0, key: 7, value: 0 };
    // budget 0 → server default (50 ms), fine; now force expiry with the
    // minimum budget and a clock far ahead of... admission computes the
    // deadline from `now`, so only in-queue waits can expire it. Instead,
    // verify the draining path gives an immediate typed answer.
    shared.request_shutdown();
    let resp = shared.submit(late, &tx).expect("immediate");
    assert_eq!(resp.reject, Some(RejectReason::Draining));
    assert_eq!(shared.stats().admission.draining, 1);
}

/// The stats wire request answers immediately (no core round-trip) with
/// well-formed JSON reflecting the counters.
#[test]
fn stats_request_answers_immediately_with_json() {
    let config = mem_config(4, 1, false);
    let clock = TestClock::new();
    let shared = ServerShared::new(config.admission, Arc::new(clock));
    let mut core = ServerCore::open(config, Arc::clone(&shared), &[]).expect("open");

    let (tx, rx) = mpsc::channel();
    for i in 0..4u64 {
        let req =
            Request { req_id: i, kind: RequestKind::Insert, budget_ns: 1 << 40, key: i, value: i };
        assert!(shared.submit(req, &tx).is_none());
    }
    core.flush_now();
    while rx.try_recv().is_ok() {}

    let stats_req =
        Request { req_id: 99, kind: RequestKind::Stats, budget_ns: 0, key: 0, value: 0 };
    let resp = shared.submit(stats_req, &tx).expect("stats answers immediately");
    assert_eq!(resp.status, Status::Ok);
    let text = String::from_utf8(resp.payload).expect("utf8");
    assert!(text.contains("\"accepted\":4"), "{text}");
    assert!(text.contains("\"acked_writes\":4"), "{text}");
    assert!(text.contains("\"queue_depth\":0"), "{text}");
}

/// End-to-end over a real socket: requests go through the TCP front end,
/// coalesce in the core, and come back acknowledged; shutdown drains.
#[test]
fn tcp_end_to_end_roundtrip() {
    use dcart_server::wire::{decode_response, encode_request, read_frame, write_frame};
    use std::net::TcpStream;

    let batch = 8usize;
    let config = ServerConfig {
        batch_size: batch,
        linger_ns: u64::MAX, // watermark-only flushes under TestClock
        ..ServerConfig::default()
    };
    let clock: Arc<dyn Clock> = Arc::new(TestClock::new());
    let handle = dcart_server::serve(config, "127.0.0.1:0", clock).expect("serve");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    for i in 0..batch as u64 {
        let req = Request {
            req_id: i,
            kind: RequestKind::Insert,
            budget_ns: 1 << 40,
            key: i,
            value: i + 10,
        };
        write_frame(&mut stream, &encode_request(&req)).expect("send");
    }
    let mut acked = 0;
    while acked < batch {
        let body = read_frame(&mut stream).expect("frame").expect("open");
        let resp = decode_response(&body).expect("decode");
        assert_eq!(resp.status, Status::Ok);
        acked += 1;
    }

    let report = handle.shutdown_and_join().expect("drain");
    assert_ne!(report.answer_digest, 0, "batches executed");
}
