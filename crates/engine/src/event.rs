//! Discrete-event primitives: a generic event queue and a non-blocking
//! execution-unit simulator.
//!
//! [`NonBlockingUnit`] is the event-level twin of the accelerator model's
//! analytic SOU formula (`max(Σ occupancy, Σ latency / outstanding)`): it
//! simulates an issue port with a bounded window of in-flight operations,
//! so the closed form can be *validated* against event-accurate behaviour
//! (see the `analytic_sou_formula_is_tight` test).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue: events pop in time order, with
/// insertion order breaking ties.
///
/// # Examples
///
/// ```
/// use dcart_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(30, "late");
/// q.schedule(10, "early");
/// q.schedule(10, "early-too");
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((10, "early-too")));
/// assert_eq!(q.pop(), Some((30, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: std::collections::BTreeMap<(u64, u64), E>,
    seq: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::BTreeMap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current simulation time (events
    /// cannot be scheduled in the past).
    pub fn schedule(&mut self, time: u64, event: E) {
        assert!(time >= self.now, "event scheduled in the past ({time} < {})", self.now);
        let key = (time, self.seq);
        self.seq += 1;
        self.heap.push(Reverse(key));
        self.payloads.insert(key, event);
    }

    /// Pops the earliest event, advancing the simulation clock to it.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse(key) = self.heap.pop()?;
        self.now = key.0;
        let event = self.payloads.remove(&key).expect("heap and map in sync");
        Some((key.0, event))
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// An execution unit with a serial issue port and a bounded window of
/// in-flight operations (MSHR-style).
///
/// Each operation occupies the issue port for `occupancy` cycles and an
/// in-flight slot until `latency` cycles after its issue start. Issue
/// stalls when all slots are busy — the behaviour the accelerator model's
/// `max(Σ occupancy, Σ latency / outstanding)` formula approximates.
#[derive(Debug)]
pub struct NonBlockingUnit {
    outstanding: usize,
    /// Completion times of in-flight operations (min-heap).
    in_flight: BinaryHeap<Reverse<u64>>,
    issue_free: u64,
    last_completion: u64,
}

impl NonBlockingUnit {
    /// Creates an idle unit sustaining `outstanding` in-flight operations.
    ///
    /// # Panics
    ///
    /// Panics if `outstanding` is zero.
    pub fn new(outstanding: usize) -> Self {
        assert!(outstanding > 0, "at least one slot required");
        NonBlockingUnit {
            outstanding,
            in_flight: BinaryHeap::new(),
            issue_free: 0,
            last_completion: 0,
        }
    }

    /// Issues one operation; returns its completion cycle.
    pub fn issue(&mut self, occupancy: u64, latency: u64) -> u64 {
        // Wait for the issue port, then for a free slot.
        let mut start = self.issue_free;
        if self.in_flight.len() == self.outstanding {
            let Reverse(freed) = self.in_flight.pop().expect("window full implies entries");
            start = start.max(freed);
        }
        self.issue_free = start + occupancy;
        let done = start + latency.max(occupancy);
        self.in_flight.push(Reverse(done));
        self.last_completion = self.last_completion.max(done);
        done
    }

    /// Cycle at which every issued operation has completed.
    pub fn drain_cycle(&self) -> u64 {
        self.last_completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule(5, 'b');
        q.schedule(3, 'a');
        q.schedule(5, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), 5);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn unit_pipelines_up_to_window() {
        // 4 slots, occupancy 1, latency 10: the first 4 issue back to back,
        // the 5th waits for slot 1 to free.
        let mut u = NonBlockingUnit::new(4);
        let c: Vec<u64> = (0..5).map(|_| u.issue(1, 10)).collect();
        assert_eq!(c[..4], [10, 11, 12, 13]);
        assert_eq!(c[4], 20, "5th op waits for the first slot");
    }

    #[test]
    fn occupancy_bound_when_latency_small() {
        let mut u = NonBlockingUnit::new(8);
        for _ in 0..100 {
            u.issue(3, 4);
        }
        // Issue-port bound: ~3 cycles per op.
        assert!((297..=305).contains(&u.drain_cycle()), "{}", u.drain_cycle());
    }

    /// The accelerator model's closed form is a tight lower bound on the
    /// event-accurate unit: within [1.0, 1.5] across load shapes.
    #[test]
    fn analytic_sou_formula_is_tight() {
        let shapes: [&[(u64, u64)]; 4] = [
            // (occupancy, latency) per op, repeated.
            &[(1, 2)],                           // all on-chip hits
            &[(1, 25)],                          // all HBM misses
            &[(1, 2), (4, 60)],                  // mixed hit/deep-traversal
            &[(2, 2), (1, 25), (5, 80), (1, 2)], // irregular
        ];
        for shape in shapes {
            let outstanding = 16usize;
            let mut unit = NonBlockingUnit::new(outstanding);
            let (mut occ_sum, mut lat_sum) = (0u64, 0u64);
            for i in 0..2_000 {
                let (occ, lat) = shape[i % shape.len()];
                unit.issue(occ, lat);
                occ_sum += occ;
                lat_sum += lat;
            }
            let analytic = occ_sum.max(lat_sum / outstanding as u64);
            let simulated = unit.drain_cycle();
            let ratio = simulated as f64 / analytic as f64;
            assert!(
                (1.0..1.5).contains(&ratio),
                "shape {shape:?}: simulated {simulated} vs analytic {analytic} ({ratio:.3})"
            );
        }
    }
}
