//! # xtask — workspace automation for the DCART reproduction
//!
//! Two entry points:
//!
//! * `cargo run -p xtask -- lint` — the fast lexical pass: five per-file
//!   rules (D1 D2 P1 F1 O1) over the surface lexer in [`lexer`], plus S1
//!   stale-marker tracking for those rules. Results are content-hash
//!   cached ([`cache`]) and the scan is parallel, so the in-`cargo test`
//!   `workspace_lint_is_clean` check stays fast as rules grow.
//! * `cargo run -p xtask -- analyze` — everything lint does, plus the
//!   flow-aware pass: the item parser in [`parse`] builds per-function
//!   flow trees, [`graph`] assembles a conservative workspace call graph,
//!   and [`flow`] checks the protocol call-order automata (O2), the lock
//!   acquisition graph (C1), and [`rules::a1`] audits atomic orderings
//!   (A1).
//!
//! The pass is pure std — the build environment is offline, so instead of
//! `syn` the analysis runs over a hand-rolled lexer/parser that is precise
//! enough for identifier-level matching with real source spans. Both
//! commands emit deterministically sorted diagnostics, as human text or
//! SARIF ([`sarif`]) for CI annotation upload.
//!
//! The library surface exists so the fixture suite under `tests/` can
//! prove every rule ID fires on a known-bad snippet and stays quiet on a
//! known-good one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use rules::{Diagnostic, FLOW_RULE_IDS, LINT_RULE_IDS, RULE_IDS};

/// Lints one file's source as if it lived at workspace-relative `path`
/// (the path decides rule scoping: crate name, whitelists, definition
/// sites). Runs the lexical rules plus S1 over their markers; cross-file
/// checks (magic-definition presence, crate-root attributes) are the
/// workspace driver's job and the flow rules are [`analyze_source`]'s.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = lexer::scan(source);
    let ctx = rules::FileCtx::new(path, &lines);
    let mut out = Vec::new();
    rules::d1(&ctx, &mut out);
    rules::d2(&ctx, &mut out);
    rules::p1(&ctx, &mut out);
    rules::f1(&ctx, &mut out);
    rules::o1(&ctx, &mut out);
    rules::s1(&ctx, &LINT_RULE_IDS, &mut out);
    out.sort();
    out
}

/// Full analysis of a set of files as one unit: the lexical rules per
/// file, then the flow rules (O2, C1, A1) over the joint call graph, then
/// S1 over every marker. Hermetic — no filesystem access, no
/// workspace-presence checks — which is what the fixture and mutation
/// tests build on.
pub fn analyze_sources(inputs: &[(String, String)]) -> Vec<Diagnostic> {
    // Parallel lex + parse (the dominant cost); everything after shares
    // per-file marker state and runs on this thread.
    let prepared = par_map(inputs, |(path, source)| {
        let lines = lexer::scan(source);
        let parsed = parse::parse(&parse::tokenize(&lines));
        let in_test = rules::test_regions(&lines);
        (path.clone(), lines, parsed, in_test)
    });
    let files: Vec<(String, parse::ParsedFile, Vec<bool>)> = prepared
        .iter()
        .map(|(path, _, parsed, in_test)| (path.clone(), parsed.clone(), in_test.clone()))
        .collect();
    let ctxs: Vec<rules::FileCtx> =
        prepared.iter().map(|(path, lines, _, _)| rules::FileCtx::new(path, lines)).collect();

    let mut out = Vec::new();
    for ctx in &ctxs {
        rules::d1(ctx, &mut out);
        rules::d2(ctx, &mut out);
        rules::p1(ctx, &mut out);
        rules::f1(ctx, &mut out);
        rules::o1(ctx, &mut out);
        rules::a1(ctx, &mut out);
    }
    let g = graph::Graph::build(&files);
    flow::o2(&ctxs, &files, &mut out);
    flow::c1(&ctxs, &files, &g, &mut out);
    for ctx in &ctxs {
        rules::s1(ctx, &RULE_IDS, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

/// [`analyze_sources`] for a single file.
pub fn analyze_source(path: &str, source: &str) -> Vec<Diagnostic> {
    analyze_sources(&[(path.to_string(), source.to_string())])
}

/// Lints the whole workspace rooted at `root` (the lexical rules only —
/// see [`analyze_workspace`] for the flow rules).
///
/// Scans `crates/*/src/**/*.rs` (unit tests inside those files are
/// excluded by the `#[cfg(test)]` region tracker; integration tests,
/// benches and fixtures are not scanned at all) in parallel with
/// content-hash caching, then runs the workspace-level checks:
///
/// * every [`rules::LIB_CRATES`] root carries `#![forbid(unsafe_code)]`
///   — or, for the crate owning a [`rules::UNSAFE_SANCTIONED`] kernel
///   file, `#![deny(unsafe_code)]` (the sanctioned file re-allows it
///   module-locally; `forbid` cannot be overridden, so `deny` is the
///   strongest root attribute compatible with the exception) — and the
///   `deny(clippy::unwrap_used, clippy::panic)` cfg_attr;
/// * every [`rules::F1_MAGICS`] literal is actually defined at its single
///   source of truth.
///
/// Returns diagnostics sorted by (path, line, col, rule) and the number
/// of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let inputs = read_workspace(root)?;
    let per_file = par_map(&inputs, |(rel, source)| {
        let k = cache::key(rel, source);
        match cache::load(root, k) {
            Some(diags) => diags,
            None => {
                let diags = lint_source(rel, source);
                cache::store(root, k, &diags);
                diags
            }
        }
    });
    let mut out: Vec<Diagnostic> = per_file.into_iter().flatten().collect();
    workspace_checks(root, &inputs, &mut out)?;
    out.sort();
    Ok((out, inputs.len()))
}

/// Analyzes the whole workspace: everything [`lint_workspace`] checks plus
/// the flow rules over the joint call graph. Not cached — the flow pass is
/// cross-file by construction — but still parallel where the work is
/// per-file.
pub fn analyze_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let inputs = read_workspace(root)?;
    let mut out = analyze_sources(&inputs);
    workspace_checks(root, &inputs, &mut out)?;
    out.sort();
    out.dedup();
    Ok((out, inputs.len()))
}

/// Reads every scanned workspace file as (workspace-relative path, source),
/// sorted by path.
fn read_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut inputs = Vec::with_capacity(files.len());
    for file in &files {
        inputs.push((rel_path(root, file), std::fs::read_to_string(file)?));
    }
    Ok(inputs)
}

/// The cross-file presence checks shared by both workspace drivers.
fn workspace_checks(
    root: &Path,
    inputs: &[(String, String)],
    out: &mut Vec<Diagnostic>,
) -> std::io::Result<()> {
    for (magic, def) in rules::F1_MAGICS {
        let defined = inputs.iter().any(|(rel, source)| rel == def && source.contains(magic));
        if !defined {
            out.push(Diagnostic {
                path: def.to_string(),
                line: 1,
                col: 1,
                rule: "F1",
                msg: format!("magic `{magic}` is not defined at its single source of truth"),
                help: format!("define the `{magic}` header constant in `{def}` (or update the F1 table in crates/xtask/src/rules.rs if the module moved)"),
            });
        }
    }

    for name in rules::LIB_CRATES {
        let rel = format!("crates/{name}/src/lib.rs");
        let lib = root.join(&rel);
        let source = std::fs::read_to_string(&lib)?;
        let lines = lexer::scan(&source);
        let code: String =
            lines.iter().flat_map(|l| l.code.chars().filter(|c| !c.is_whitespace())).collect();
        let owns_sanctioned =
            rules::UNSAFE_SANCTIONED.iter().any(|p| p.starts_with(&format!("crates/{name}/src/")));
        if owns_sanctioned {
            if !code.contains("#![deny(unsafe_code)]") {
                out.push(root_diag(
                    &rel,
                    "missing `#![deny(unsafe_code)]` on the crate root (this crate owns a \
                     sanctioned unsafe kernel file, so the root downgrades forbid to deny and \
                     the kernel module carries the reviewed `#![allow(unsafe_code)]`)",
                ));
            }
        } else if !code.contains("#![forbid(unsafe_code)]") {
            out.push(root_diag(&rel, "missing `#![forbid(unsafe_code)]` on the crate root"));
        }
        if !(code.contains("clippy::unwrap_used") && code.contains("clippy::panic")) {
            out.push(root_diag(
                &rel,
                "missing `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]` on the crate root",
            ));
        }
    }
    Ok(())
}

/// Order-preserving parallel map over a slice (scoped threads, shared
/// cursor; falls back to serial for tiny inputs).
fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    if threads <= 1 || items.len() < 8 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                slots.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });
    let mut collected = slots.into_inner().unwrap_or_else(|e| e.into_inner());
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

fn root_diag(rel: &str, msg: &str) -> Diagnostic {
    Diagnostic {
        path: rel.to_string(),
        line: 1,
        col: 1,
        rule: "P1",
        msg: msg.to_string(),
        help: "every library crate root pins the unsafe/panic policy; copy the attribute \
               block from crates/core/src/lib.rs"
            .to_string(),
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // Fixture snippets are data for the lint's own tests, not code.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_snippet_produces_no_diagnostics() {
        let src = "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
        assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_render_with_spans() {
        let d = &lint_source("crates/core/src/x.rs", "use std::collections::HashMap;\n")[0];
        assert_eq!((d.rule, d.line, d.col), ("D1", 1, 23));
        let shown = d.to_string();
        assert!(shown.contains("error[D1]") && shown.contains("crates/core/src/x.rs:1:23"));
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let _: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
        assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_markers_silence_one_line() {
        let src = "// dcart_lint::allow(D1) -- interned keys, order never observed\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn stale_markers_are_flagged_and_suppressible() {
        // The D1 marker silences nothing: S1.
        let src = "// dcart_lint::allow(D1) -- stale\nuse std::collections::BTreeMap;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "S1");
        // Unknown rule IDs are S1 too.
        let src = "// dcart_lint::allow(Z9) -- typo\n";
        assert_eq!(lint_source("crates/core/src/x.rs", src)[0].rule, "S1");
        // An atomic marker is only S1-checked when A1 runs: quiet under
        // lint, stale under analyze (no atomic on the next line).
        let src = "// dcart_lint::atomic(orphaned)\nfn f() {}\n";
        assert!(lint_source("crates/engine/src/x.rs", src).is_empty());
        let diags = analyze_source("crates/engine/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "S1");
    }

    #[test]
    fn workspace_lint_is_clean() {
        // The repo must lint clean at all times — this is the same check CI
        // runs, pulled into the unit suite so `cargo test` catches drift.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (diags, files) = lint_workspace(&root).expect("workspace readable");
        assert!(files > 50, "expected to scan the whole workspace, got {files} files");
        assert!(
            diags.is_empty(),
            "dcart-lint found {} violation(s):\n{}",
            diags.len(),
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn workspace_analyze_is_clean() {
        // Same bar for the flow rules: protocol automata, lock graph, and
        // atomic-ordering audit hold on every commit.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (diags, files) = analyze_workspace(&root).expect("workspace readable");
        assert!(files > 50, "expected to scan the whole workspace, got {files} files");
        assert!(
            diags.is_empty(),
            "dcart-analyze found {} violation(s):\n{}",
            diags.len(),
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
