//! Flow-aware rules: O2 protocol-order automata and C1 lock discipline.
//!
//! Both rules walk the [`crate::parse::FlowNode`] trees produced by the
//! item parser. Branches (`if`/`else`, `match` arms) are explored as
//! alternatives and merged; loop bodies are checked as a fresh iteration
//! (the protocol sequence legitimately restarts every time around a
//! serving loop). Everything is conservative name matching — no type
//! information exists — so the matchers are written to be unambiguous in
//! this codebase (`writer.commit`, `Response::ok`, ...).

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::Graph;
use crate::parse::{CallExpr, FlowNode, ParsedFile};
use crate::rules::{Diagnostic, FileCtx, LIB_CRATES};

/// How a protocol stage recognizes its call sites.
enum Matcher {
    /// Callee name is one of these (any receiver).
    Callee(&'static [&'static str]),
    /// Callee name with this exact last receiver identifier
    /// (`writer.commit(..)`, `self.shutdown.store(..)`).
    CalleeRecvLast(&'static str, &'static str),
    /// Callee name with this `::`-path qualifier (`Response::ok`).
    CalleeQual(&'static str, &'static str),
}

impl Matcher {
    fn hits(&self, c: &CallExpr) -> bool {
        match self {
            Matcher::Callee(names) => names.contains(&c.callee.as_str()),
            Matcher::CalleeRecvLast(name, recv) => {
                c.callee == *name && c.recv.last().map(String::as_str) == Some(recv)
            }
            Matcher::CalleeQual(name, qual) => {
                c.callee == *name && c.path.last().map(String::as_str) == Some(qual)
            }
        }
    }
}

struct Stage {
    desc: &'static str,
    m: Matcher,
}

struct Automaton {
    name: &'static str,
    /// Exact workspace-relative paths the automaton is checked in.
    files: &'static [&'static str],
    stages: &'static [Stage],
}

/// The protocol automata. Stage numbers are 1-based positions in `stages`;
/// on any path through a function, a lower-numbered event must never
/// follow a higher-numbered one.
static AUTOMATA: [Automaton; 3] = [
    // PR-8's durability contract: nothing is acknowledged before it is
    // WAL-appended, executed, and fsync-committed.
    Automaton {
        name: "durable-ack",
        files: &["crates/server/src/core_loop.rs", "crates/core/src/durable.rs"],
        stages: &[
            Stage { desc: "WAL append", m: Matcher::Callee(&["append_batch"]) },
            Stage {
                desc: "execute",
                m: Matcher::Callee(&["execute_batch", "try_execute_ctt_resumed"]),
            },
            Stage { desc: "fsync commit", m: Matcher::CalleeRecvLast("commit", "writer") },
            Stage { desc: "acknowledge", m: Matcher::CalleeQual("ok", "Response") },
        ],
    },
    // PR-4's checkpoint install: the checkpoint file must be durably in
    // place (tmp → fsync → atomic rename) before the WAL cursor resets —
    // resetting first would leave a crash window with neither artifact.
    Automaton {
        name: "checkpoint-install",
        files: &["crates/server/src/core_loop.rs", "crates/core/src/durable.rs"],
        stages: &[
            Stage { desc: "checkpoint write", m: Matcher::Callee(&["write_checkpoint"]) },
            Stage { desc: "WAL reset", m: Matcher::CalleeRecvLast("reset", "writer") },
        ],
    },
    // PR-8's drain sequence: admission bounces first, then the shutdown
    // flag publishes, then sleeping workers wake — waking before the flag
    // is set would park them again and stall the drain.
    Automaton {
        name: "drain",
        files: &["crates/server/src/core_loop.rs"],
        stages: &[
            Stage { desc: "admission drain", m: Matcher::Callee(&["start_drain"]) },
            Stage { desc: "shutdown flag", m: Matcher::CalleeRecvLast("store", "shutdown") },
            Stage { desc: "wake workers", m: Matcher::Callee(&["notify_all"]) },
        ],
    },
];

/// The running automaton state: the highest stage witnessed so far.
#[derive(Clone, Copy, Default)]
struct O2State {
    stage: usize, // 1-based; 0 = nothing seen
    line: usize,
    desc: &'static str,
}

/// O2 — protocol call-order automata.
///
/// `ctxs[i]` and `files[i]` describe the same file.
pub fn o2(ctxs: &[FileCtx], files: &[(String, ParsedFile, Vec<bool>)], out: &mut Vec<Diagnostic>) {
    for (fi, (path, parsed, _)) in files.iter().enumerate() {
        for auto in &AUTOMATA {
            if !auto.files.contains(&path.as_str()) {
                continue;
            }
            for f in &parsed.fns {
                o2_walk(auto, &f.body, O2State::default(), &ctxs[fi], out);
            }
        }
    }
}

fn stage_of(auto: &Automaton, c: &CallExpr) -> Option<(usize, &'static str)> {
    auto.stages.iter().position(|s| s.m.hits(c)).map(|i| (i + 1, auto.stages[i].desc))
}

fn o2_walk(
    auto: &Automaton,
    nodes: &[FlowNode],
    mut st: O2State,
    ctx: &FileCtx,
    out: &mut Vec<Diagnostic>,
) -> O2State {
    for n in nodes {
        match n {
            FlowNode::Stmt(s) => {
                for c in &s.calls {
                    let Some((k, desc)) = stage_of(auto, c) else { continue };
                    if k < st.stage {
                        ctx.emit(
                            out,
                            "O2",
                            c.line - 1,
                            c.col,
                            format!(
                                "protocol `{}`: {desc} (stage {k}) reached after {} \
                                 (stage {}) at line {}",
                                auto.name, st.desc, st.stage, st.line
                            ),
                            format!(
                                "the `{}` sequence is {}; reorder so every path runs the \
                                 stages in ascending order",
                                auto.name,
                                auto.stages.iter().map(|s| s.desc).collect::<Vec<_>>().join(" -> ")
                            ),
                        );
                    } else {
                        st = O2State { stage: k, line: c.line, desc };
                    }
                }
            }
            FlowNode::Alt(branches) => {
                let mut merged = st;
                for b in branches {
                    let end = o2_walk(auto, b, st, ctx, out);
                    if end.stage > merged.stage {
                        merged = end;
                    }
                }
                st = merged;
            }
            FlowNode::Block(b) => {
                st = o2_walk(auto, b, st, ctx, out);
            }
            FlowNode::Loop(b) => {
                // Each iteration restarts the protocol (a serving loop runs
                // the full sequence per batch), so the body is checked from
                // a fresh state; the loop's last iteration still
                // contributes its end state to what follows.
                let end = o2_walk(auto, b, O2State::default(), ctx, out);
                if end.stage > st.stage {
                    st = end;
                }
            }
        }
    }
    st
}

/// Method names that merely unwrap a `LockResult` without releasing the
/// guard: a `let g = x.lock().unwrap_or_else(|e| e.into_inner());`
/// statement still binds the guard. Any *other* call chained in the same
/// statement consumes the guard, which then drops at the statement's end.
const GUARD_ADAPTERS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "into_inner"];

/// Callee names that acquire a lock.
const LOCK_CALLEES: [&str; 2] = ["lock", "try_lock"];

/// A held lock during the C1 walk.
#[derive(Clone)]
struct Hold {
    id: String,
    binding: Option<String>,
    line: usize,
}

/// A lock-order edge: while holding `from`, `to` was acquired.
type EdgeMap = BTreeMap<(String, String), (usize, usize, usize)>; // -> (file, line, col)

/// C1 — lock discipline over the acquisition graph.
///
/// Walks every non-test function in [`LIB_CRATES`] (binaries included: the
/// client harness threads lock too). A lock is identified by
/// `crate/receiver` (`server/admission`, `engine/cells`); acquiring a lock
/// already in the held set — directly or through any resolvable callee —
/// is a double-acquire error, and the global acquisition-order graph must
/// stay acyclic.
pub fn c1(
    ctxs: &[FileCtx],
    files: &[(String, ParsedFile, Vec<bool>)],
    graph: &Graph,
    out: &mut Vec<Diagnostic>,
) {
    // Direct acquisitions per graph fn, then the transitive closure.
    let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.fns.len()];
    for (i, f) in graph.fns.iter().enumerate() {
        if !in_scope(f.path) {
            continue;
        }
        let mut calls = Vec::new();
        Graph::calls_in(&f.item.body, &mut calls);
        for c in calls {
            if let Some(id) = lock_id(f.path, c) {
                direct[i].insert(id);
            }
        }
    }
    let closure = graph.transitive_closure(&direct);

    let mut edges: EdgeMap = BTreeMap::new();
    for f in graph.fns.iter() {
        if !in_scope(f.path) {
            continue;
        }
        let cx = C1Cx { ctx: &ctxs[f.file], file: f.file, path: f.path, graph, closure: &closure };
        c1_walk(&f.item.body, &mut Vec::new(), &cx, &mut edges, out);
    }

    // Acquisition-order cycles: SCCs of the edge graph with more than one
    // node (self-edges were already reported as double-acquires).
    for cycle in cycles(&edges) {
        // Anchor the diagnostic at the lexicographically-first edge inside
        // the cycle.
        let mut site: Option<(usize, usize, usize)> = None;
        for ((from, to), s) in &edges {
            if cycle.contains(from) && cycle.contains(to) {
                let better = match site {
                    None => true,
                    Some(cur) => {
                        (files[s.0].0.as_str(), s.1, s.2) < (files[cur.0].0.as_str(), cur.1, cur.2)
                    }
                };
                if better {
                    site = Some(*s);
                }
            }
        }
        let Some((fi, line, col)) = site else { continue };
        let order: Vec<&str> = cycle.iter().map(String::as_str).collect();
        ctxs[fi].emit(
            out,
            "C1",
            line - 1,
            col,
            format!("lock acquisition-order cycle between {{{}}}", order.join(", ")),
            "pick one global order for these locks and acquire them in it on every path \
             (the cycle means two paths disagree, which deadlocks under contention)",
        );
    }
}

fn in_scope(path: &str) -> bool {
    let crate_name = path.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("");
    LIB_CRATES.contains(&crate_name)
}

/// `crate/receiver` id for a lock acquisition, if the call is one.
fn lock_id(path: &str, c: &CallExpr) -> Option<String> {
    if !LOCK_CALLEES.contains(&c.callee.as_str()) {
        return None;
    }
    let recv = c.recv.last()?;
    let crate_name = path.strip_prefix("crates/").and_then(|r| r.split('/').next())?;
    Some(format!("{crate_name}/{recv}"))
}

struct C1Cx<'a> {
    ctx: &'a FileCtx<'a>,
    file: usize,
    path: &'a str,
    graph: &'a Graph<'a>,
    closure: &'a [BTreeSet<String>],
}

fn c1_walk(
    nodes: &[FlowNode],
    held: &mut Vec<Hold>,
    cx: &C1Cx,
    edges: &mut EdgeMap,
    out: &mut Vec<Diagnostic>,
) {
    for n in nodes {
        match n {
            FlowNode::Stmt(s) => {
                let mut stmt_temp: Vec<String> = Vec::new();
                for (ci, c) in s.calls.iter().enumerate() {
                    if let Some(id) = lock_id(cx.path, c) {
                        for h in held.iter() {
                            if h.id == id {
                                cx.ctx.emit(
                                    out,
                                    "C1",
                                    c.line - 1,
                                    c.col,
                                    format!(
                                        "lock `{id}` acquired while already held \
                                         (first taken at line {})",
                                        h.line
                                    ),
                                    "a second acquisition of a non-reentrant mutex on the same \
                                     path self-deadlocks; drop the guard first or pass it down",
                                );
                            } else {
                                edges
                                    .entry((h.id.clone(), id.clone()))
                                    .or_insert((cx.file, c.line, c.col));
                            }
                        }
                        // Guard lifetime: a `let`-bound lock whose trailing
                        // chain is only LockResult adapters stays held to
                        // the end of the enclosing block; anything else
                        // releases at the statement's end.
                        let consumed = s.calls[ci + 1..]
                            .iter()
                            .any(|later| !GUARD_ADAPTERS.contains(&later.callee.as_str()));
                        let bound = !s.lets.is_empty() && !consumed;
                        held.push(Hold {
                            id: id.clone(),
                            binding: bound.then(|| s.lets[0].clone()),
                            line: c.line,
                        });
                        if !bound {
                            stmt_temp.push(id);
                        }
                    } else if c.callee == "drop" {
                        if let Some(arg) = &c.first_arg {
                            if let Some(pos) =
                                held.iter().position(|h| h.binding.as_deref() == Some(arg))
                            {
                                held.remove(pos);
                            }
                        }
                    } else if !held.is_empty() {
                        // A call made while holding locks: fold in the
                        // callee's transitive acquisitions.
                        for target in cx.graph.resolve(c) {
                            for lid in &cx.closure[target] {
                                for h in held.iter() {
                                    if &h.id == lid {
                                        cx.ctx.emit(
                                            out,
                                            "C1",
                                            c.line - 1,
                                            c.col,
                                            format!(
                                                "call to `{}` re-acquires lock `{lid}` already \
                                                 held here (taken at line {})",
                                                c.callee, h.line
                                            ),
                                            "the callee (or something it calls) locks a mutex \
                                             this path already holds — self-deadlock under \
                                             contention; release before calling or split the \
                                             callee",
                                        );
                                    } else {
                                        edges
                                            .entry((h.id.clone(), lid.clone()))
                                            .or_insert((cx.file, c.line, c.col));
                                    }
                                }
                            }
                        }
                    }
                }
                // Statement end: unbound guards drop.
                for id in stmt_temp {
                    if let Some(pos) = held.iter().rposition(|h| h.id == id && h.binding.is_none())
                    {
                        held.remove(pos);
                    }
                }
            }
            FlowNode::Alt(branches) => {
                for b in branches {
                    let mut scoped = held.clone();
                    c1_walk(b, &mut scoped, cx, edges, out);
                }
            }
            FlowNode::Block(b) | FlowNode::Loop(b) => {
                let mut scoped = held.clone();
                c1_walk(b, &mut scoped, cx, edges, out);
            }
        }
    }
}

/// Strongly connected components with more than one node, as sorted lock
/// id sets (deduplicated and deterministic).
fn cycles(edges: &EdgeMap) -> Vec<BTreeSet<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
        nodes.insert(from);
        nodes.insert(to);
    }
    // Kosaraju: order by finish time on the forward graph, then collect
    // components on the reverse graph.
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &n in &nodes {
        if seen.contains(n) {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack: Vec<(&str, bool)> = vec![(n, false)];
        while let Some((v, done)) = stack.pop() {
            if done {
                order.push(v);
                continue;
            }
            if !seen.insert(v) {
                continue;
            }
            stack.push((v, true));
            if let Some(next) = adj.get(v) {
                for &w in next {
                    if !seen.contains(w) {
                        stack.push((w, false));
                    }
                }
            }
        }
    }
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        radj.entry(to).or_default().insert(from);
    }
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut comps: Vec<BTreeSet<String>> = Vec::new();
    for &n in order.iter().rev() {
        if comp.contains_key(n) {
            continue;
        }
        let id = comps.len();
        let mut members = BTreeSet::new();
        let mut stack = vec![n];
        while let Some(v) = stack.pop() {
            if comp.contains_key(v) {
                continue;
            }
            comp.insert(v, id);
            members.insert(v.to_string());
            if let Some(prev) = radj.get(v) {
                for &w in prev {
                    if !comp.contains_key(w) {
                        stack.push(w);
                    }
                }
            }
        }
        comps.push(members);
    }
    comps.retain(|c| c.len() > 1);
    comps
}
