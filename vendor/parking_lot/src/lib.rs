//! Offline stand-in for [parking_lot](https://docs.rs/parking_lot),
//! implementing the subset this workspace uses (`RwLock`, `Mutex`) on top of
//! `std::sync`. The parking_lot API differs from std in two ways that matter
//! here: lock methods return guards directly (no `LockResult`), and
//! `try_read`/`try_write` return `Option`. Poisoning is absorbed: a
//! poisoned std lock simply yields its inner guard, matching parking_lot's
//! poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Reader–writer lock with parking_lot's panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Tries to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard { inner: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { inner: p.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn try_write_fails_under_read() {
        let lock = RwLock::new(0);
        let _r = lock.read();
        assert!(lock.try_write().is_none());
        assert!(lock.try_read().is_some());
    }
}
