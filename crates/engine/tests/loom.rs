//! Model-checked concurrency invariants, run with
//! `cargo test -p dcart-engine --features loom`.
//!
//! The vendored loom explores every (preemption-bounded) thread
//! interleaving of each model, so these tests pin properties that a single
//! lucky schedule under `cargo test` cannot: the pool's exactly-once visit
//! contract and panic propagation under arbitrary worker schedules, and
//! the SOU response queue's backpressure latch never losing an overflow
//! signal in a producer/consumer race.
#![cfg(feature = "loom")]

use dcart_engine::{par_for_each_mut, BoundedQueue};
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Arc, Mutex};

/// The pool's determinism contract, under every schedule: each slot is
/// handed to `work` exactly once, whichever worker claims it.
#[test]
fn pool_visits_every_slot_exactly_once_in_all_schedules() {
    loom::model(|| {
        let mut slots = vec![0u32; 3];
        par_for_each_mut(&mut slots, 2, |i, s| {
            // `+=` (not `=`) so a double visit would be visible as i+1 extra.
            *s += i as u32 + 1;
        });
        assert_eq!(slots, vec![1, 2, 3]);
    });
}

/// A panicking worker must propagate out of `par_for_each_mut` (via the
/// scope join) in every schedule, and must never cause a sibling worker to
/// run a slot twice — siblings either finish their claimed slots or bail
/// out on the poisoned cell lock.
#[test]
fn pool_propagates_worker_panic_in_all_schedules() {
    // Each exploding execution prints a panic report; hundreds of schedules
    // would flood the log, so silence the hook for the duration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    loom::model(|| {
        let mut slots = vec![0u32; 2];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_for_each_mut(&mut slots, 2, |i, s| {
                if i == 1 {
                    panic!("worker failure injected by the model");
                }
                *s += 1;
            });
        }));
        assert!(result.is_err(), "the worker panic must reach the caller");
        assert!(slots[0] <= 1, "slot 0 visited at most once even while unwinding");
    });
    std::panic::set_hook(prev_hook);
}

/// The SOU response-queue degradation protocol from `dcart::accel`: a
/// producer that observes overflow trips a latch *after* releasing the
/// queue lock. Under every producer/drainer interleaving the latch must
/// agree with the queue's overflow accounting — an overflow signal is
/// never lost, occupancy never exceeds capacity, and every offered item is
/// either accepted (then possibly drained) or rejected.
#[test]
fn bounded_queue_backpressure_latch_never_loses_an_overflow() {
    loom::model(|| {
        let queue = Arc::new(Mutex::new(BoundedQueue::new(2)));
        let latch = Arc::new(AtomicBool::new(false));

        let producers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let latch = Arc::clone(&latch);
                loom::thread::spawn(move || {
                    let over = {
                        let mut q = queue.lock().expect("no producer panics");
                        q.offer(2)
                    };
                    // The racy window under test: the latch store happens
                    // outside the queue lock, as in the accelerator model.
                    if over > 0 {
                        latch.store(true, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        let drainer = {
            let queue = Arc::clone(&queue);
            loom::thread::spawn(move || queue.lock().expect("no producer panics").drain(1))
        };

        for p in producers {
            p.join().expect("producer ran to completion");
        }
        let drained = drainer.join().expect("drainer ran to completion");

        let q = queue.lock().expect("all users joined");
        assert!(q.depth() <= 2, "occupancy within capacity");
        assert_eq!(
            q.depth() + drained + q.rejected(),
            4,
            "every offered item is accepted-and-held, drained, or rejected"
        );
        assert_eq!(
            latch.load(Ordering::SeqCst),
            q.rejected() > 0,
            "the latch fires iff an offer overflowed, in every schedule"
        );
    });
}
