//! Typed errors for the DCART model crates.
//!
//! Library code on fallible paths (workload/trace ingestion, tree
//! construction, executor entry points, the durability layer) returns
//! [`DcartError`] instead of panicking, so malformed input or an injected
//! fault surfaces as a value the caller can handle — a process abort is
//! reserved for genuine programming errors (violated internal invariants).

use std::fmt;

use dcart_art::{ArtError, SnapshotError};
use dcart_engine::{CrashSite, WalError};
use dcart_workloads::TraceError;

/// Top-level error of the DCART model.
#[derive(Debug)]
#[non_exhaustive]
pub enum DcartError {
    /// The adaptive radix tree rejected an input (prefix key, unsorted
    /// bulk load).
    Art(ArtError),
    /// An operation trace could not be read (I/O, malformed or truncated
    /// line, empty file).
    Trace(TraceError),
    /// An executor was configured with a zero batch size.
    InvalidBatchSize,
    /// The write-ahead log failed (I/O, foreign file, future format
    /// version) — or a planned crash fired inside it, which callers unwrap
    /// via [`DcartError::injected_crash`].
    Wal(WalError),
    /// A checkpoint snapshot could not be loaded (corruption, truncation,
    /// future format version).
    Snapshot(SnapshotError),
    /// Durability-layer file I/O outside the WAL itself (checkpoint
    /// files, directory creation).
    Io(std::io::Error),
    /// Crash recovery found state it must not replay: a non-contiguous
    /// batch sequence, a malformed ops payload, or a replayed batch whose
    /// digest diverges from its commit record.
    Recovery(String),
}

impl DcartError {
    /// The crash site of a planned, injected crash — `None` for every
    /// real error. The crash-point matrix uses this to tell "the simulated
    /// process died exactly where planned" apart from genuine failures.
    pub fn injected_crash(&self) -> Option<CrashSite> {
        match self {
            DcartError::Wal(WalError::InjectedCrash(site)) => Some(*site),
            _ => None,
        }
    }
}

impl fmt::Display for DcartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcartError::Art(e) => write!(f, "tree error: {e}"),
            DcartError::Trace(e) => write!(f, "trace error: {e}"),
            DcartError::InvalidBatchSize => write!(f, "batch size must be positive"),
            DcartError::Wal(e) => write!(f, "write-ahead log error: {e}"),
            DcartError::Snapshot(e) => write!(f, "checkpoint snapshot error: {e}"),
            DcartError::Io(e) => write!(f, "durability I/O error: {e}"),
            DcartError::Recovery(msg) => write!(f, "crash recovery error: {msg}"),
        }
    }
}

impl std::error::Error for DcartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcartError::Art(e) => Some(e),
            DcartError::Trace(e) => Some(e),
            DcartError::Wal(e) => Some(e),
            DcartError::Snapshot(e) => Some(e),
            DcartError::Io(e) => Some(e),
            DcartError::InvalidBatchSize | DcartError::Recovery(_) => None,
        }
    }
}

impl From<ArtError> for DcartError {
    fn from(e: ArtError) -> Self {
        DcartError::Art(e)
    }
}

impl From<TraceError> for DcartError {
    fn from(e: TraceError) -> Self {
        DcartError::Trace(e)
    }
}

impl From<WalError> for DcartError {
    fn from(e: WalError) -> Self {
        DcartError::Wal(e)
    }
}

impl From<SnapshotError> for DcartError {
    fn from(e: SnapshotError) -> Self {
        DcartError::Snapshot(e)
    }
}

impl From<std::io::Error> for DcartError {
    fn from(e: std::io::Error) -> Self {
        DcartError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = DcartError::from(ArtError::NotSortedUnique);
        assert!(e.to_string().starts_with("tree error:"), "{e}");
        let e = DcartError::from(TraceError::Truncated { line: 7 });
        assert!(e.to_string().contains("line 7"), "{e}");
        assert!(DcartError::InvalidBatchSize.to_string().contains("batch size"));
        let e = DcartError::from(WalError::BadMagic);
        assert!(e.to_string().contains("write-ahead log"), "{e}");
        let e = DcartError::from(SnapshotError::BadMagic);
        assert!(e.to_string().contains("snapshot"), "{e}");
        let e = DcartError::Recovery("batch 3 diverged".into());
        assert!(e.to_string().contains("batch 3"), "{e}");
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = DcartError::from(ArtError::NotSortedUnique);
        assert!(e.source().is_some());
        assert!(DcartError::InvalidBatchSize.source().is_none());
        assert!(DcartError::from(WalError::BadMagic).source().is_some());
        assert!(DcartError::from(SnapshotError::Truncated).source().is_some());
        let io = std::io::Error::other("disk gone");
        assert!(DcartError::from(io).source().is_some());
    }

    #[test]
    fn injected_crashes_are_distinguishable_from_real_errors() {
        let crash = DcartError::from(WalError::InjectedCrash(CrashSite::MidRecord));
        assert_eq!(crash.injected_crash(), Some(CrashSite::MidRecord));
        assert_eq!(DcartError::from(WalError::BadMagic).injected_crash(), None);
        assert_eq!(DcartError::InvalidBatchSize.injected_crash(), None);
    }
}
