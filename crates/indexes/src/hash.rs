//! A chained hash index — the paper's other related-work family (§V):
//! "flat data structures that support fast point access within constant
//! lookup time complexity, i.e., O(1). However, because hash tables
//! scatter the keys randomly, they are unable to support range queries
//! efficiently."
//!
//! The type deliberately exposes **no range method**: the absence is the
//! §V point, made at the API level. What it does expose is the same
//! instrumentation as [`BPlusTree`](crate::BPlusTree), so point-op costs
//! and rehashing write amplification are comparable.

use dcart_art::Key;

use crate::WriteStats;

/// An instrumented chained hash index over [`Key`]s.
///
/// # Examples
///
/// ```
/// use dcart_art::Key;
/// use dcart_indexes::HashIndex;
///
/// let mut h = HashIndex::new();
/// h.insert(Key::from_u64(7), "seven");
/// assert_eq!(h.get(&Key::from_u64(7)), Some(&"seven"));
/// assert_eq!(h.get(&Key::from_u64(8)), None);
/// ```
#[derive(Debug)]
pub struct HashIndex<V> {
    buckets: Vec<Vec<(Key, V)>>,
    len: usize,
    stats: WriteStats,
}

/// FNV-1a, as in the hardware's Key_ID path.
fn hash(key: &Key) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn entry_bytes(key: &Key) -> u64 {
    key.len() as u64 + 8
}

impl<V> Default for HashIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> HashIndex<V> {
    /// Creates an empty index.
    pub fn new() -> Self {
        HashIndex {
            buckets: (0..16).map(|_| Vec::new()).collect(),
            len: 0,
            stats: WriteStats::default(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The accumulated instrumentation counters.
    pub fn stats(&self) -> WriteStats {
        self.stats
    }

    /// Current bucket count.
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// Total modelled memory footprint in bytes.
    pub fn memory_footprint(&self) -> u64 {
        self.buckets.len() as u64 * 8
            + self.buckets.iter().flatten().map(|(k, _)| entry_bytes(k)).sum::<u64>()
    }

    fn bucket_of(&self, key: &Key) -> usize {
        (hash(key) % self.buckets.len() as u64) as usize
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &Key) -> Option<&V> {
        self.stats.node_accesses += 1;
        let b = self.bucket_of(key);
        let bucket = &self.buckets[b];
        let pos = bucket.iter().position(|(k, _)| k == key)?;
        self.stats.comparisons += pos as u64 + 1;
        Some(&self.buckets[b][pos].1)
    }

    /// Inserts `key` → `value`, returning the previous value if present.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        self.stats.bytes_logical += entry_bytes(&key);
        self.stats.node_accesses += 1;
        let b = self.bucket_of(&key);
        if let Some(slot) = self.buckets[b].iter_mut().find(|(k, _)| *k == key) {
            self.stats.bytes_written += 8;
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.stats.bytes_written += entry_bytes(&key);
        self.buckets[b].push((key, value));
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.grow();
        }
        None
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &Key) -> Option<V> {
        self.stats.node_accesses += 1;
        let b = self.bucket_of(key);
        let pos = self.buckets[b].iter().position(|(k, _)| k == key)?;
        self.len -= 1;
        Some(self.buckets[b].swap_remove(pos).1)
    }

    /// Doubles the bucket array and rehashes everything — the hash index's
    /// write-amplification event.
    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        let fresh: Vec<Vec<(Key, V)>> = (0..new_size).map(|_| Vec::new()).collect();
        let old: Vec<Vec<(Key, V)>> = std::mem::replace(&mut self.buckets, fresh);
        for bucket in old {
            for (key, value) in bucket {
                self.stats.bytes_written += entry_bytes(&key);
                let b = (hash(&key) % new_size as u64) as usize;
                self.buckets[b].push((key, value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key::from_u64(v)
    }

    #[test]
    fn roundtrip_with_growth() {
        let mut h = HashIndex::new();
        for v in 0..10_000u64 {
            assert_eq!(h.insert(k(v), v), None);
        }
        assert_eq!(h.len(), 10_000);
        assert!(h.capacity() >= 5_000, "table grew: {}", h.capacity());
        for v in (0..10_000u64).step_by(17) {
            assert_eq!(h.get(&k(v)), Some(&v));
        }
        assert_eq!(h.get(&k(10_001)), None);
    }

    #[test]
    fn insert_replaces_and_remove_works() {
        let mut h = HashIndex::new();
        assert_eq!(h.insert(k(5), 1), None);
        assert_eq!(h.insert(k(5), 2), Some(1));
        assert_eq!(h.remove(&k(5)), Some(2));
        assert_eq!(h.remove(&k(5)), None);
        assert!(h.is_empty());
    }

    #[test]
    fn rehashing_amplifies_writes() {
        let mut h = HashIndex::new();
        for v in 0..50_000u64 {
            h.insert(k(v), v);
        }
        // Each doubling rewrites the whole table: amplification > 1.
        let amp = h.stats().amplification();
        assert!(amp > 1.5, "hash rehash amplification {amp}");
    }

    #[test]
    fn point_lookups_are_constant_accesses() {
        let mut h = HashIndex::new();
        for v in 0..20_000u64 {
            h.insert(k(v), v);
        }
        let before = h.stats().node_accesses;
        for v in 0..1_000u64 {
            h.get(&k(v));
        }
        let per_lookup = (h.stats().node_accesses - before) as f64 / 1_000.0;
        assert!((per_lookup - 1.0).abs() < 1e-9, "O(1) accesses: {per_lookup}");
    }
}
