//! Event-driven HBM channel simulation.
//!
//! The analytic [`MemoryModel`](crate::MemoryModel) converts aggregate
//! traffic into time with closed-form bounds; this module simulates the
//! same memory at the next level of fidelity — per-pseudo-channel request
//! queues with service latency and per-channel bandwidth — so the analytic
//! shortcut can be *validated* instead of trusted (see the
//! `analytic_vs_event_driven` test and the `hbm` bench).
//!
//! Addresses map to channels by address-interleaving, as on the U280
//! (256-byte granularity across 32 pseudo-channels).

use dcart_engine::faults::{FaultInjector, FaultPlan, FaultSite, RecoveryStats, RetryOutcome};
use serde::{Deserialize, Serialize};

/// Configuration of the channel-level simulator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HbmSimConfig {
    /// Pseudo-channels.
    pub channels: usize,
    /// Interleave granularity in bytes.
    pub interleave_bytes: u64,
    /// Unloaded request latency (queue-empty round trip), ns.
    pub latency_ns: f64,
    /// Per-channel service time per request once pipelined (the inverse of
    /// a channel's request rate), ns.
    pub service_ns: f64,
    /// Per-channel data rate, bytes/ns.
    pub channel_bw_gbps: f64,
}

impl HbmSimConfig {
    /// The Alveo U280's 8 GB HBM2: 32 pseudo-channels of ~14.4 GB/s.
    pub fn u280() -> Self {
        HbmSimConfig {
            channels: 32,
            interleave_bytes: 256,
            latency_ns: 106.0,
            service_ns: 4.5,
            channel_bw_gbps: 14.4,
        }
    }
}

/// One completed request's timing.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// When the request was issued, ns.
    pub issue_ns: f64,
    /// When its data returned, ns.
    pub done_ns: f64,
}

/// An event-driven multi-channel memory.
///
/// Requests are issued with a timestamp; each lands in its channel's queue
/// and completes after max(queue drain, service) + latency. The simulator
/// is deterministic and processes requests in issue order.
///
/// # Examples
///
/// ```
/// use dcart_mem::{HbmSim, HbmSimConfig};
///
/// let mut hbm = HbmSim::new(HbmSimConfig::u280());
/// let first = hbm.request(0.0, 0x0000, 64);
/// let conflicting = hbm.request(0.0, 0x0000, 64); // same channel: queues
/// let parallel = hbm.request(0.0, 0x0100, 64);    // next channel: overlaps
/// assert!(conflicting.done_ns > first.done_ns);
/// assert!((parallel.done_ns - first.done_ns).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct HbmSim {
    config: HbmSimConfig,
    /// Time each channel becomes free.
    channel_free_ns: Vec<f64>,
    requests: u64,
    bytes: u64,
    busy_ns_total: f64,
    last_done_ns: f64,
    faults: Option<FaultState>,
}

/// Fault-injection state (present only when a plan is active).
#[derive(Clone, Debug)]
struct FaultState {
    plan: FaultPlan,
    injector: FaultInjector,
    recovery: RecoveryStats,
}

impl HbmSim {
    /// Creates an idle memory.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no channels.
    pub fn new(config: HbmSimConfig) -> Self {
        assert!(config.channels > 0, "at least one channel required");
        HbmSim {
            config,
            channel_free_ns: vec![0.0; config.channels],
            requests: 0,
            bytes: 0,
            busy_ns_total: 0.0,
            last_done_ns: 0.0,
            faults: None,
        }
    }

    /// Creates an idle memory with deterministic fault injection per
    /// `plan`: per-channel stalls (`hbm_stall_rate` / `hbm_stall_ns`) and
    /// transient read errors (`hbm_transient_rate`) recovered by bounded
    /// retry-with-backoff, failing over to a doubled re-issue when retries
    /// are exhausted. An inactive plan behaves exactly like [`HbmSim::new`].
    pub fn with_faults(config: HbmSimConfig, plan: FaultPlan) -> Self {
        let mut sim = HbmSim::new(config);
        if plan.is_active() {
            sim.faults = Some(FaultState {
                plan,
                injector: FaultInjector::for_plan(&plan),
                recovery: RecoveryStats::default(),
            });
        }
        sim
    }

    /// Recovery counters accumulated so far (zeros when no plan is active).
    pub fn recovery(&self) -> RecoveryStats {
        self.faults.as_ref().map(|f| f.recovery).unwrap_or_default()
    }

    /// Channel an address interleaves to.
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.config.interleave_bytes) % self.config.channels as u64) as usize
    }

    /// Issues a request for `bytes` at `addr` at time `issue_ns`; returns
    /// its completion time.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn request(&mut self, issue_ns: f64, addr: u64, bytes: u32) -> Completion {
        assert!(bytes > 0, "empty request");
        let ch = self.channel_of(addr);
        // Injected channel stall: the channel is unavailable for a while
        // (refresh collision / retraining), delaying this and later
        // requests that land on it.
        if let Some(fs) = &mut self.faults {
            if fs.injector.fire(FaultSite::HbmChannel, fs.plan.hbm_stall_rate) {
                self.channel_free_ns[ch] =
                    self.channel_free_ns[ch].max(issue_ns) + fs.plan.hbm_stall_ns;
                fs.recovery.hbm_channel_stalls += 1;
                fs.recovery.hbm_stall_ns += fs.plan.hbm_stall_ns;
            }
        }
        let transfer_ns = f64::from(bytes) / self.config.channel_bw_gbps;
        let occupancy = self.config.service_ns.max(transfer_ns);
        let start = issue_ns.max(self.channel_free_ns[ch]);
        self.channel_free_ns[ch] = start + occupancy;
        let mut done = start + occupancy + self.config.latency_ns;
        // Injected transient read error: bounded retry-with-backoff on the
        // same channel; on exhaustion, fail over (re-issue at double cost).
        // Either way the data arrives — correctness is never affected.
        if let Some(fs) = &mut self.faults {
            if fs.injector.fire(FaultSite::HbmRead, fs.plan.hbm_transient_rate) {
                fs.recovery.hbm_transient_errors += 1;
                let base = self.config.latency_ns.ceil() as u64;
                let mut extra = 0u64;
                match fs.injector.retry_transient(
                    FaultSite::HbmRead,
                    fs.plan.hbm_transient_rate,
                    &fs.plan.retry,
                    base,
                    &mut extra,
                ) {
                    RetryOutcome::Recovered { retries } => {
                        fs.recovery.hbm_retries += u64::from(retries)
                    }
                    RetryOutcome::FailedOver => {
                        fs.recovery.hbm_retries += u64::from(fs.plan.retry.max_retries);
                        fs.recovery.hbm_failovers += 1;
                    }
                }
                fs.recovery.hbm_retry_cycles += extra;
                let extra_ns = extra as f64;
                done += extra_ns;
                // The retried transfers re-occupy the channel.
                self.channel_free_ns[ch] += extra_ns;
            }
        }
        self.requests += 1;
        self.bytes += u64::from(bytes);
        self.busy_ns_total += occupancy;
        if done > self.last_done_ns {
            self.last_done_ns = done;
        }
        Completion { issue_ns, done_ns: done }
    }

    /// Time the last completed request returned, ns.
    pub fn drain_ns(&self) -> f64 {
        self.last_done_ns
    }

    /// Total requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Aggregate channel utilization over `[0, horizon_ns]`.
    pub fn utilization(&self, horizon_ns: f64) -> f64 {
        if horizon_ns <= 0.0 {
            0.0
        } else {
            (self.busy_ns_total / (horizon_ns * self.config.channels as f64)).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryConfig, MemoryModel};

    #[test]
    fn single_request_costs_latency_plus_service() {
        let mut hbm = HbmSim::new(HbmSimConfig::u280());
        let c = hbm.request(10.0, 0, 64);
        assert!((c.done_ns - (10.0 + 4.5 + 106.0)).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn same_channel_serializes_different_channels_overlap() {
        let cfg = HbmSimConfig::u280();
        let mut hbm = HbmSim::new(cfg);
        let a = hbm.request(0.0, 0, 64);
        let b = hbm.request(0.0, 0, 64); // same channel
        assert!((b.done_ns - a.done_ns - cfg.service_ns).abs() < 1e-6);
        let mut hbm2 = HbmSim::new(cfg);
        let xs: Vec<Completion> =
            (0..cfg.channels as u64).map(|i| hbm2.request(0.0, i * 256, 64)).collect();
        let first = xs[0].done_ns;
        assert!(xs.iter().all(|c| (c.done_ns - first).abs() < 1e-6), "all channels parallel");
    }

    #[test]
    fn interleaving_spreads_addresses() {
        let hbm = HbmSim::new(HbmSimConfig::u280());
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u64 {
            seen.insert(hbm.channel_of(i * 256));
        }
        assert_eq!(seen.len(), 32);
        assert_eq!(hbm.channel_of(0), hbm.channel_of(255), "same line, same channel");
    }

    /// The analytic MemoryModel's time must agree with the event-driven
    /// simulation within modelling tolerance, in both regimes.
    #[test]
    fn analytic_vs_event_driven() {
        let cfg = HbmSimConfig::u280();

        // Regime 1: saturating independent traffic from many streams.
        let mut hbm = HbmSim::new(cfg);
        let mut analytic = MemoryModel::new(MemoryConfig::hbm_u280());
        let n = 50_000u64;
        for i in 0..n {
            // Issue everything up front: fully open-loop load.
            hbm.request(0.0, i * 256, 64);
            analytic.access(64);
        }
        let sim = hbm.drain_ns();
        let model = analytic.time_ns(1_000.0);
        let ratio = model / sim;
        assert!(
            (0.4..2.5).contains(&ratio),
            "saturated: analytic {model} vs simulated {sim} (ratio {ratio})"
        );

        // Regime 2: a serial pointer chase — one outstanding request.
        let mut hbm = HbmSim::new(cfg);
        let mut analytic = MemoryModel::new(MemoryConfig::hbm_u280());
        let mut now = 0.0;
        for i in 0..1_000u64 {
            let c = hbm.request(now, i * 977 * 256, 64);
            now = c.done_ns;
            analytic.dependent_access(64);
        }
        let sim = now;
        let model = analytic.time_ns(1.0);
        let ratio = model / sim;
        assert!(
            (0.7..1.3).contains(&ratio),
            "serial: analytic {model} vs simulated {sim} (ratio {ratio})"
        );
    }

    #[test]
    fn inactive_fault_plan_matches_clean_sim_exactly() {
        let cfg = HbmSimConfig::u280();
        let mut clean = HbmSim::new(cfg);
        let mut faulty = HbmSim::with_faults(cfg, FaultPlan::none());
        for i in 0..5_000u64 {
            let a = clean.request(0.0, i * 192, 64);
            let b = faulty.request(0.0, i * 192, 64);
            assert_eq!(a, b);
        }
        assert_eq!(faulty.recovery(), RecoveryStats::default());
    }

    #[test]
    fn transient_errors_retry_and_slow_the_run() {
        let cfg = HbmSimConfig::u280();
        let plan = FaultPlan { seed: 7, hbm_transient_rate: 0.02, ..FaultPlan::none() };
        let mut clean = HbmSim::new(cfg);
        let mut faulty = HbmSim::with_faults(cfg, plan);
        for i in 0..20_000u64 {
            clean.request(0.0, i * 256, 64);
            faulty.request(0.0, i * 256, 64);
        }
        let r = faulty.recovery();
        assert!(r.hbm_transient_errors > 0, "{r:?}");
        assert!(r.hbm_retries >= r.hbm_transient_errors, "every error retries at least once");
        assert!(r.hbm_retry_cycles > 0);
        assert!(faulty.drain_ns() > clean.drain_ns(), "retries cost time");
    }

    #[test]
    fn channel_stalls_are_counted_and_delay_their_channel() {
        let cfg = HbmSimConfig::u280();
        let plan =
            FaultPlan { seed: 11, hbm_stall_rate: 1.0, hbm_stall_ns: 500.0, ..FaultPlan::none() };
        let mut faulty = HbmSim::with_faults(cfg, plan);
        let c = faulty.request(0.0, 0, 64);
        assert!((c.done_ns - (500.0 + 4.5 + 106.0)).abs() < 1e-6, "{c:?}");
        let r = faulty.recovery();
        assert_eq!(r.hbm_channel_stalls, 1);
        assert!((r.hbm_stall_ns - 500.0).abs() < 1e-9);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let cfg = HbmSimConfig::u280();
        let plan = FaultPlan {
            seed: 3,
            hbm_transient_rate: 0.05,
            hbm_stall_rate: 0.01,
            hbm_stall_ns: 200.0,
            ..FaultPlan::none()
        };
        let run = |p: FaultPlan| {
            let mut sim = HbmSim::with_faults(cfg, p);
            for i in 0..10_000u64 {
                sim.request(0.0, i * 320, 64);
            }
            (sim.drain_ns(), sim.recovery())
        };
        let (t1, r1) = run(plan);
        let (t2, r2) = run(plan);
        assert_eq!(t1, t2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn utilization_bounded_and_meaningful() {
        let mut hbm = HbmSim::new(HbmSimConfig::u280());
        for i in 0..10_000u64 {
            hbm.request(0.0, i * 64, 64);
        }
        let u = hbm.utilization(hbm.drain_ns());
        assert!(u > 0.3 && u <= 1.0, "{u}");
        assert_eq!(hbm.requests(), 10_000);
        assert_eq!(hbm.bytes(), 640_000);
    }
}
