//! The wall-clock perf harness (`bench` binary): times the *functional*
//! executors on the tier-1 workloads and emits `BENCH_ctt.json`.
//!
//! Everything else in this crate reports **simulated** time derived from
//! cycle models; this module is the one place that measures how fast the
//! reproduction itself runs on the host. The report establishes the perf
//! baseline future PRs are compared against:
//!
//! * ops/sec of the CTT executor ([`dcart::execute_ctt`]) and of the
//!   baseline trace executor, B+-tree, and hash index on the same
//!   key/op streams;
//! * per-cell wall-clock seconds (the same [`crate::parallel`] cells the
//!   `repro` experiments fan out);
//! * allocation-sensitive counters (node visits, tree memory, node count)
//!   that move when a hot path starts cloning or reallocating again;
//! * the N16 masked-vs-binary search micro-bench ratio.

use std::path::Path;
use std::time::Instant;

use dcart::{execute_ctt, try_execute_ctt_profiled, CttConsumer, DcartConfig, ExecOpts};
use dcart_art::node::{binary_search_lane, masked_search_lane};
use dcart_baselines::execute_with_traces;
use dcart_indexes::{BPlusTree, HashIndex};
use dcart_workloads::{generate_ops, Mix, Op, OpKind, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// One timed executor × workload cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfCell {
    /// Executor name (`CTT`, `ART-trace`, `B+tree`, `hash`).
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Operations executed.
    pub ops: usize,
    /// Wall-clock seconds spent executing the operation stream (excludes
    /// the bulk load).
    pub wall_s: f64,
    /// Host throughput over the operation stream.
    pub ops_per_sec: f64,
    /// Wall-clock seconds spent bulk-loading the key set.
    pub load_wall_s: f64,
    /// Total node fetches recorded while executing (0 where the executor
    /// does not trace).
    pub node_visits: u64,
    /// Final index memory footprint in bytes — an allocation canary: a
    /// regression that re-introduces per-key copies shows up here first.
    pub memory_bytes: u64,
    /// Arena node loads performed by the Traverse stage (CTT only, 0
    /// elsewhere). Under level-wise traversal a node loaded once serves a
    /// whole wave of operations, so this falls below
    /// `traverse_ops_advanced`; per-op traversal keeps the two equal.
    #[serde(default)]
    pub traverse_nodes_visited: u64,
    /// Single-level advancement steps performed by the Traverse stage
    /// (CTT only, 0 elsewhere). Mode-independent — the denominator of the
    /// wave-sharing ratio.
    #[serde(default)]
    pub traverse_ops_advanced: u64,
}

/// Masked vs. binary N16 search micro-bench (satellite of the hot-path
/// overhaul): both comparators run the same 1 000-probe lookup batch many
/// times over identical nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct N16Bench {
    /// Probes per round (1 000).
    pub lookups_per_round: usize,
    /// Rounds timed.
    pub rounds: usize,
    /// Nanoseconds per lookup, SWAR masked search.
    pub masked_ns_per_lookup: f64,
    /// Nanoseconds per lookup, the binary search it replaced.
    pub binary_ns_per_lookup: f64,
    /// `binary / masked` — values above 1.0 mean the masked search wins.
    pub speedup: f64,
}

/// One cell of the skew sweep: the CTT executor on the hot-prefix key set
/// under a Zipfian op stream, with the adaptive machinery (sub-sharding +
/// work stealing) either off (`split_threshold = 1.0`, static schedule) or
/// on (`0.25` + stealing).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkewCell {
    /// Zipfian skew of the op stream.
    pub theta: f64,
    /// SOU worker threads.
    pub threads: usize,
    /// Whether sub-sharding and stealing were enabled.
    pub adaptive: bool,
    /// Wall-clock seconds over the op stream (bulk load excluded).
    pub wall_s: f64,
    /// Host throughput over the op stream.
    pub ops_per_sec: f64,
    /// Hot-bucket splits the run performed (0 when static).
    pub shard_splits: u64,
    /// Cooled-bucket re-merges the run performed.
    pub shard_merges: u64,
    /// Pool steal operations (schedule-dependent; 0 with stealing off).
    pub steal_events: u64,
    /// Share of all routed ops landing in the single hottest bucket — the
    /// skew the adaptive machinery exists to flatten.
    pub hot_bucket_share: f64,
}

/// The full `BENCH_ctt.json` payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// Keys loaded per workload.
    pub keys: usize,
    /// Operations executed per cell.
    pub ops: usize,
    /// Worker threads the cells were fanned over.
    pub jobs: usize,
    /// SOU worker threads inside each CTT execution
    /// ([`dcart::sou_threads`]) — results are identical at any setting,
    /// only the CTT cells' wall-clock moves.
    pub sou_threads: usize,
    /// Every timed executor × workload cell.
    pub cells: Vec<PerfCell>,
    /// The N16 search micro-bench.
    pub n16_search: N16Bench,
    /// The skew sweep: theta × threads × adaptive on the hot-prefix keys.
    #[serde(default)]
    pub skew: Vec<SkewCell>,
    /// Per-bucket load histogram captured from the steepest adaptive
    /// 2-thread sweep cell — the shape the splits were reacting to.
    #[serde(default)]
    pub skew_load: dcart::LoadReport,
}

/// Counts CTT events without attaching platform costs.
#[derive(Default)]
struct VisitCounter {
    visits: u64,
}

impl CttConsumer for VisitCounter {
    fn op(&mut self, ev: &dcart::CttOpEvent<'_>) {
        self.visits += ev.visits.len() as u64;
    }
}

/// One executor's measurements; the traverse counters stay 0 for every
/// engine except the CTT, whose Traverse stage reports them.
struct Timing {
    wall_s: f64,
    load_wall_s: f64,
    node_visits: u64,
    memory_bytes: u64,
    traverse_nodes_visited: u64,
    traverse_ops_advanced: u64,
}

impl Timing {
    fn untraced(wall_s: f64, load_wall_s: f64, node_visits: u64, memory_bytes: u64) -> Timing {
        Timing {
            wall_s,
            load_wall_s,
            node_visits,
            memory_bytes,
            traverse_nodes_visited: 0,
            traverse_ops_advanced: 0,
        }
    }
}

fn time_ctt(keys: &dcart_workloads::KeySet, ops: &[Op]) -> Timing {
    let cfg = DcartConfig::default().scaled_for_keys(keys.len()).with_auto_prefix_skip(keys);
    let mut counter = VisitCounter::default();
    // The executor bulk-loads internally; time an explicit load on a
    // throwaway tree to report the two phases separately.
    let t_load = Instant::now();
    let mut probe = dcart_art::Art::new();
    probe.load_indexed(&keys.keys).expect("prefix-free");
    let load_wall_s = t_load.elapsed().as_secs_f64();
    drop(probe);
    let t0 = Instant::now();
    let (art, stats) = execute_ctt(keys, ops, &cfg, 4_096, &mut counter);
    let wall_s = (t0.elapsed().as_secs_f64() - load_wall_s).max(1e-9);
    Timing {
        wall_s,
        load_wall_s,
        node_visits: counter.visits,
        memory_bytes: art.memory_footprint(),
        traverse_nodes_visited: stats.shortcut.nodes_visited,
        traverse_ops_advanced: stats.shortcut.ops_advanced,
    }
}

fn time_art_trace(keys: &dcart_workloads::KeySet, ops: &[Op]) -> Timing {
    let t_load = Instant::now();
    let mut probe = dcart_art::Art::new();
    probe.load_indexed(&keys.keys).expect("prefix-free");
    let load_wall_s = t_load.elapsed().as_secs_f64();
    drop(probe);
    let mut visits = 0u64;
    let t0 = Instant::now();
    let art = execute_with_traces(keys, ops, |op| visits += op.trace.visits.len() as u64);
    let wall_s = (t0.elapsed().as_secs_f64() - load_wall_s).max(1e-9);
    Timing::untraced(wall_s, load_wall_s, visits, art.memory_footprint())
}

fn time_bptree(keys: &dcart_workloads::KeySet, ops: &[Op]) -> Timing {
    let t_load = Instant::now();
    let mut t: BPlusTree<u64> = BPlusTree::new(32);
    for (i, k) in keys.keys.iter().enumerate() {
        t.insert(k.clone(), i as u64);
    }
    let load_wall_s = t_load.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for op in ops {
        match op.kind {
            OpKind::Read => {
                let _ = t.get(&op.key);
            }
            OpKind::Update | OpKind::Insert => {
                t.insert(op.key.clone(), op.value);
            }
            OpKind::Remove => {
                let _ = t.remove(&op.key);
            }
            OpKind::Scan => {
                let _ = t.range(op.key.as_bytes(), op.value as usize);
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    Timing::untraced(wall_s, load_wall_s, t.stats().node_accesses, t.memory_footprint())
}

fn time_hash(keys: &dcart_workloads::KeySet, ops: &[Op]) -> Timing {
    let t_load = Instant::now();
    let mut h: HashIndex<u64> = HashIndex::new();
    for (i, k) in keys.keys.iter().enumerate() {
        h.insert(k.clone(), i as u64);
    }
    let load_wall_s = t_load.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for op in ops {
        match op.kind {
            // Hash indexes cannot range-scan; a scan degrades to a point
            // probe of its start key, keeping the op counts comparable.
            OpKind::Read | OpKind::Scan => {
                let _ = h.get(&op.key);
            }
            OpKind::Update | OpKind::Insert => {
                h.insert(op.key.clone(), op.value);
            }
            OpKind::Remove => {
                let _ = h.remove(&op.key);
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    Timing::untraced(wall_s, load_wall_s, h.stats().node_accesses, h.memory_footprint())
}

/// Times `1_000 * rounds` lookups through each N16 comparator and returns
/// the measured ratio.
pub fn bench_n16_search(rounds: usize) -> N16Bench {
    // A full node of spread-out keys plus a probe set mixing hits and
    // misses, fixed so both comparators do identical work.
    let mut keys = [0u8; 16];
    for (i, k) in keys.iter_mut().enumerate() {
        *k = (i * 16 + 3) as u8;
    }
    let probes: Vec<u8> = (0..1_000u32).map(|i| (i.wrapping_mul(97) % 256) as u8).collect();

    // Each probe is perturbed by the accumulated results so far, making
    // the sequence data-dependent the way real traversals are (a repeated
    // fixed sequence lets the branch predictor memorize the binary
    // search's decisions, which no tree workload allows). Both
    // comparators return identical lanes, so both walk the same chain.
    fn chain(
        keys: &[u8; 16],
        probes: &[u8],
        rounds: usize,
        search: impl Fn(&[u8; 16], usize, u8) -> Option<usize>,
    ) -> (f64, usize) {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for _ in 0..rounds {
            for &p in probes {
                let probe = p.wrapping_add(acc as u8);
                acc += search(keys, 16, probe).map_or(1, |i| i + 2);
            }
        }
        (t0.elapsed().as_secs_f64(), acc)
    }

    // One warm-up pass proving the comparators agree lane-for-lane.
    for &p in &probes {
        assert_eq!(
            masked_search_lane(&keys, 16, p),
            binary_search_lane(&keys, 16, p),
            "comparators disagree on probe {p:#04x}"
        );
    }

    let (masked_s, masked_acc) = chain(&keys, &probes, rounds, masked_search_lane);
    let (binary_s, binary_acc) = chain(&keys, &probes, rounds, binary_search_lane);
    assert_eq!(masked_acc, binary_acc, "comparators diverged mid-chain");

    let n = (rounds * probes.len()) as f64;
    N16Bench {
        lookups_per_round: probes.len(),
        rounds,
        masked_ns_per_lookup: masked_s * 1e9 / n,
        binary_ns_per_lookup: binary_s * 1e9 / n,
        speedup: binary_s / masked_s.max(1e-12),
    }
}

/// Zipfian skews the sweep covers: mild, the YCSB default, and a
/// steeper-than-YCSB tail that exercises the tabulated sampler.
pub const SKEW_THETAS: [f64; 3] = [0.5, 0.99, 1.2];

/// Times the CTT executor on the hot-prefix key set across
/// [`SKEW_THETAS`] × {1, 2} threads × {static, adaptive}, returning the
/// cells plus the per-bucket load histogram of the steepest adaptive
/// 2-thread cell.
///
/// Thread counts and stealing never change results (the determinism
/// contract), so the sweep only reads wall-clock and the deterministic
/// split/merge counters. On a single-core host the 2-thread cells time
/// the same core twice — compare the cells, don't expect hardware
/// speedup there.
pub fn run_skew_sweep(scale: &Scale) -> (Vec<SkewCell>, dcart::LoadReport) {
    let keys = dcart_workloads::synth::hot_prefix(scale.keys, 0.75, scale.seed);
    // Same probe-load subtraction as `time_ctt`: the executor bulk-loads
    // internally and the sweep times only the op stream.
    let t_load = Instant::now();
    let mut probe = dcart_art::Art::new();
    probe.load_indexed(&keys.keys).expect("prefix-free");
    let load_wall_s = t_load.elapsed().as_secs_f64();
    drop(probe);

    let mut cells = Vec::new();
    let mut captured = dcart::LoadReport::default();
    for (ti, &theta) in SKEW_THETAS.iter().enumerate() {
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: scale.ops, mix: Mix::C, theta, seed: scale.seed },
        );
        for threads in [1usize, 2] {
            for adaptive in [false, true] {
                let mut cfg =
                    DcartConfig::default().scaled_for_keys(keys.len()).with_auto_prefix_skip(&keys);
                cfg.split_threshold = Some(if adaptive { 0.25 } else { 1.0 });
                let opts =
                    ExecOpts { threads, mode: dcart::TraverseMode::LevelWise, steal: adaptive };
                let mut sink = VisitCounter::default();
                let t0 = Instant::now();
                let (_, stats, load) =
                    try_execute_ctt_profiled(&keys, &ops, &cfg, 4_096, &opts, &mut sink)
                        .expect("skew sweep executes fault-free");
                let wall_s = (t0.elapsed().as_secs_f64() - load_wall_s).max(1e-9);
                let total: u64 = load.buckets.iter().map(|b| b.ops).sum();
                let hottest = load.buckets.iter().map(|b| b.ops).max().unwrap_or(0);
                cells.push(SkewCell {
                    theta,
                    threads,
                    adaptive,
                    wall_s,
                    ops_per_sec: ops.len() as f64 / wall_s,
                    shard_splits: stats.shard_splits,
                    shard_merges: stats.shard_merges,
                    steal_events: load.steal_events,
                    hot_bucket_share: if total == 0 { 0.0 } else { hottest as f64 / total as f64 },
                });
                // Keep the histogram of the steepest adaptive multi-thread
                // cell (selected by index, not by float equality).
                if ti == SKEW_THETAS.len() - 1 && threads == 2 && adaptive {
                    captured = load;
                }
            }
        }
    }
    (cells, captured)
}

/// Runs the harness at `scale` and writes `BENCH_ctt.json` under `out_dir`.
pub fn run(scale: &Scale, out_dir: &Path) -> PerfReport {
    println!("== perf harness: host wall-clock of the functional executors ==");
    let workloads = [Workload::Ipgeo, Workload::Dict, Workload::RandomSparse];
    let engines = ["CTT", "ART-trace", "B+tree", "hash"];

    let data = crate::parallel::par_map(workloads.to_vec(), |w| {
        let keys = w.generate(scale.keys, scale.seed);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: scale.ops, mix: Mix::C, theta: 0.99, seed: scale.seed },
        );
        (keys, ops)
    });
    let cells: Vec<(usize, Workload, &str)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, &w)| engines.iter().map(move |&e| (wi, w, e)))
        .collect();
    let timed = crate::parallel::par_map_timed(cells, |(wi, workload, engine)| {
        let (keys, ops) = &data[wi];
        let t = match engine {
            "CTT" => time_ctt(keys, ops),
            "ART-trace" => time_art_trace(keys, ops),
            "B+tree" => time_bptree(keys, ops),
            _ => time_hash(keys, ops),
        };
        PerfCell {
            engine: engine.to_string(),
            workload: workload.name().to_string(),
            ops: ops.len(),
            wall_s: t.wall_s,
            ops_per_sec: ops.len() as f64 / t.wall_s,
            load_wall_s: t.load_wall_s,
            node_visits: t.node_visits,
            memory_bytes: t.memory_bytes,
            traverse_nodes_visited: t.traverse_nodes_visited,
            traverse_ops_advanced: t.traverse_ops_advanced,
        }
    });
    let cells: Vec<PerfCell> = timed.into_iter().map(|t| t.value).collect();

    let mut t =
        Table::new(&["executor", "workload", "ops/sec", "exec s", "load s", "visits", "memory MB"]);
    for c in &cells {
        t.row(&[
            c.engine.clone(),
            c.workload.clone(),
            format!("{:.0}", c.ops_per_sec),
            format!("{:.3}", c.wall_s),
            format!("{:.3}", c.load_wall_s),
            c.node_visits.to_string(),
            format!("{:.2}", c.memory_bytes as f64 / 1e6),
        ]);
    }
    t.print();

    let n16_search = bench_n16_search(2_000);
    println!(
        "N16 search: masked {:.2} ns/lookup vs binary {:.2} ns/lookup ({:.2}x)\n",
        n16_search.masked_ns_per_lookup, n16_search.binary_ns_per_lookup, n16_search.speedup
    );

    println!("== skew sweep: hot-prefix keys, static vs adaptive sub-sharding ==");
    let (skew, skew_load) = run_skew_sweep(scale);
    let mut st = Table::new(&[
        "theta",
        "threads",
        "schedule",
        "ops/sec",
        "splits",
        "merges",
        "steals",
        "hot share",
    ]);
    for c in &skew {
        st.row(&[
            format!("{:.2}", c.theta),
            c.threads.to_string(),
            if c.adaptive { "adaptive" } else { "static" }.to_string(),
            format!("{:.0}", c.ops_per_sec),
            c.shard_splits.to_string(),
            c.shard_merges.to_string(),
            c.steal_events.to_string(),
            format!("{:.0}%", c.hot_bucket_share * 100.0),
        ]);
    }
    st.print();
    for (ti, &theta) in SKEW_THETAS.iter().enumerate() {
        let row = &skew[ti * 4..ti * 4 + 4];
        let static_1t = row[0].ops_per_sec;
        let adaptive_2t = row[3].ops_per_sec;
        println!(
            "theta {theta:.2}: adaptive 2-thread vs static 1-thread = {:.2}x \
             (host-core-count dependent)",
            adaptive_2t / static_1t.max(1e-9)
        );
    }
    println!();

    let report = PerfReport {
        keys: scale.keys,
        ops: scale.ops,
        jobs: crate::parallel::jobs(),
        sou_threads: dcart::sou_threads(),
        cells,
        n16_search,
        skew,
        skew_load,
    };
    write_report(out_dir, "BENCH_ctt", &report);
    report
}

/// Per-cell throughput slack before [`check_baseline`] flags a regression.
///
/// CI runners are noisy and unevenly loaded, so the gate is deliberately
/// loose: a cell fails only when it runs more than this factor *slower*
/// than the committed baseline — an order that hot-path churn (re-intro-
/// duced cloning, per-batch allocation) produces and scheduler jitter
/// does not. Faster-than-baseline is always fine.
pub const BASELINE_TOLERANCE: f64 = 2.0;

/// Compares a freshly measured report against a committed baseline file
/// (`BENCH_baseline.json`) and reports any cell whose throughput fell by
/// more than [`BASELINE_TOLERANCE`]×.
///
/// # Errors
///
/// Returns a human-readable description of every offending cell (or of an
/// unreadable/invalid baseline file). On success, returns a one-line
/// summary for the log.
pub fn check_baseline(report: &PerfReport, baseline_path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline: PerfReport = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse baseline {}: {e}", baseline_path.display()))?;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for base in &baseline.cells {
        let Some(fresh) =
            report.cells.iter().find(|c| c.engine == base.engine && c.workload == base.workload)
        else {
            failures.push(format!(
                "cell {}/{} present in the baseline but missing from the fresh report",
                base.engine, base.workload
            ));
            continue;
        };
        checked += 1;
        if fresh.ops_per_sec * BASELINE_TOLERANCE < base.ops_per_sec {
            failures.push(format!(
                "{}/{}: {:.0} ops/sec regressed more than {BASELINE_TOLERANCE}x \
                 below the baseline's {:.0}",
                fresh.engine, fresh.workload, fresh.ops_per_sec, base.ops_per_sec
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "baseline check: {checked} cells within {BASELINE_TOLERANCE}x of {}",
            baseline_path.display()
        ))
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_every_cell_and_agrees_on_n16() {
        let scale = Scale { keys: 1_000, ops: 3_000, concurrency: 1_024, seed: 11 };
        let tmp = std::env::temp_dir().join("dcart-perf-test");
        let r = run(&scale, &tmp);
        assert_eq!(r.cells.len(), 12, "4 executors x 3 workloads");
        for c in &r.cells {
            assert_eq!(c.ops, 3_000);
            assert!(c.wall_s > 0.0 && c.ops_per_sec > 0.0, "{}/{}", c.engine, c.workload);
            assert!(c.memory_bytes > 0, "{}/{}", c.engine, c.workload);
        }
        // The traced executors actually fetch nodes.
        assert!(r
            .cells
            .iter()
            .filter(|c| c.engine == "CTT" || c.engine == "ART-trace")
            .all(|c| c.node_visits > 0));
        // The CTT's Traverse stage reports its wave-sharing counters: some
        // advancement happened, and loads never exceed advancement steps.
        assert!(r.cells.iter().filter(|c| c.engine == "CTT").all(|c| {
            c.traverse_ops_advanced > 0 && c.traverse_nodes_visited <= c.traverse_ops_advanced
        }));
        // Timing ratios are machine-dependent; the guard only pins sanity:
        // both comparators ran, produced positive times, and the masked
        // search is not catastrophically (>5x) slower than the binary one.
        let n16 = &r.n16_search;
        assert!(n16.masked_ns_per_lookup > 0.0 && n16.binary_ns_per_lookup > 0.0);
        assert!(n16.speedup > 0.2, "masked search >5x slower than binary: {:.3}x", n16.speedup);
        let json = std::fs::read_to_string(tmp.join("BENCH_ctt.json")).unwrap();
        assert!(json.contains("n16_search"));
        assert!(json.contains("sou_threads"));
        assert!(json.contains("skew_load"));

        // The skew sweep covers the full theta x threads x schedule grid.
        assert_eq!(r.skew.len(), 12, "3 thetas x 2 thread counts x 2 schedules");
        for c in &r.skew {
            assert!(c.wall_s > 0.0 && c.ops_per_sec > 0.0, "theta {}", c.theta);
            assert!((0.0..=1.0).contains(&c.hot_bucket_share));
        }
        // Static cells never split; the hot-prefix key set under steep skew
        // drives the adaptive schedule into splitting.
        assert!(r.skew.iter().filter(|c| !c.adaptive).all(|c| c.shard_splits == 0));
        assert!(
            r.skew.iter().filter(|c| c.adaptive && c.theta > 1.0).all(|c| c.shard_splits > 0),
            "steep-skew adaptive cells must split"
        );
        // Stealing off means zero steal events, at any thread count.
        assert!(r.skew.iter().filter(|c| !c.adaptive).all(|c| c.steal_events == 0));
        // The captured histogram reflects the skew the splits reacted to.
        assert!(!r.skew_load.buckets.is_empty());
        assert!(r.skew_load.buckets.iter().any(|b| b.splits > 0));
    }

    #[test]
    fn baseline_check_accepts_itself_and_flags_collapses() {
        let scale = Scale { keys: 500, ops: 1_000, concurrency: 1_024, seed: 3 };
        let tmp = std::env::temp_dir().join("dcart-baseline-test");
        let report = run(&scale, &tmp);
        let path = tmp.join("BENCH_ctt.json");

        // A report always passes against its own measurements.
        let summary = check_baseline(&report, &path).expect("self-comparison passes");
        assert!(summary.contains("cells within"));

        // A run that collapsed to a small fraction of the baseline fails.
        let mut slow = report.clone();
        for c in &mut slow.cells {
            c.ops_per_sec /= 10.0 * BASELINE_TOLERANCE;
        }
        let err = check_baseline(&slow, &path).expect_err("collapse must be flagged");
        assert!(err.contains("regressed"), "{err}");

        // Missing or malformed baselines surface as readable errors.
        assert!(check_baseline(&report, &tmp.join("nope.json")).is_err());
    }
}
