//! Criterion benchmarks of the ART substrate itself — the real data
//! structure's wall-clock costs (not the platform models).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use dcart_art::{Art, Key, SyncArt};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

fn keys_dense(n: u64) -> Vec<Key> {
    let mut rng = StdRng::seed_from_u64(1);
    let mut v: Vec<Key> = (0..n).map(Key::from_u64).collect();
    v.shuffle(&mut rng);
    v
}

fn keys_sparse(n: u64) -> Vec<Key> {
    let mut rng = StdRng::seed_from_u64(2);
    (0..n).map(|_| Key::from_u64(rng.gen())).collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("art/insert");
    for (name, keys) in [("dense", keys_dense(100_000)), ("sparse", keys_sparse(100_000))] {
        g.throughput(Throughput::Elements(keys.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &keys, |b, keys| {
            b.iter_batched(
                || keys.clone(),
                |keys| {
                    let mut art = Art::new();
                    for k in keys {
                        art.insert(k, 0u64).unwrap();
                    }
                    art
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("art/get");
    for (name, keys) in [("dense", keys_dense(100_000)), ("sparse", keys_sparse(100_000))] {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k.clone(), i as u64).unwrap();
        }
        g.throughput(Throughput::Elements(keys.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &keys, |b, keys| {
            b.iter(|| {
                let mut found = 0u64;
                for k in keys {
                    if art.get(k).is_some() {
                        found += 1;
                    }
                }
                found
            });
        });
    }
    g.finish();
}

fn bench_range_scan(c: &mut Criterion) {
    let mut art = Art::new();
    for k in 0..100_000u64 {
        art.insert(Key::from_u64(k), k).unwrap();
    }
    let mut g = c.benchmark_group("art/range");
    for width in [100u64, 10_000] {
        g.throughput(Throughput::Elements(width));
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            let start = Key::from_u64(50_000);
            let end = Key::from_u64(50_000 + width);
            b.iter(|| {
                art.range(start.as_bytes(), Some(end.as_bytes())).map(|(_, v)| *v).sum::<u64>()
            });
        });
    }
    g.finish();
}

fn bench_remove(c: &mut Criterion) {
    let keys = keys_dense(50_000);
    c.benchmark_group("art/remove")
        .throughput(Throughput::Elements(keys.len() as u64))
        .bench_function("dense", |b| {
            b.iter_batched(
                || {
                    let mut art = Art::new();
                    for (i, k) in keys.iter().enumerate() {
                        art.insert(k.clone(), i as u64).unwrap();
                    }
                    art
                },
                |mut art| {
                    for k in &keys {
                        art.remove(k);
                    }
                    art
                },
                BatchSize::LargeInput,
            );
        });
}

fn bench_sync_art_contended(c: &mut Criterion) {
    // The cost the paper's Fig. 7 is about: concurrent writers on hot keys.
    let mut g = c.benchmark_group("sync_art/hot_writes");
    for threads in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let art: SyncArt<u64> = SyncArt::new();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let art = art.clone();
                        s.spawn(move || {
                            for i in 0..5_000u64 {
                                art.insert(Key::from_u64(i % 64), t as u64).unwrap();
                            }
                        });
                    }
                });
                art.len()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_get,
    bench_range_scan,
    bench_remove,
    bench_sync_art_contended
);
criterion_main!(benches);
