//! Differential chaos suite: correctness under injected faults.
//!
//! Every workload runs once fault-free to establish reference digests, then
//! once per cell of the fault matrix (five fault classes × two intensities,
//! plus an everything-at-once cell). A cell passes only if its answer and
//! final-tree digests are bit-identical to the fault-free run, faults were
//! actually injected, and the matching recovery counters moved. Any
//! divergence aborts the process after the report is written — the CI
//! `chaos-smoke` job runs this at fixed seeds and fails on the panic.

use std::path::Path;

use dcart::{DcartAccel, DcartConfig};
use dcart_baselines::{IndexEngine, RunConfig, RunReport};
use dcart_engine::{FaultPlan, RecoveryStats};
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// One (workload × fault × intensity) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Workload name, e.g. "IPGEO".
    pub workload: String,
    /// Fault class, e.g. "hbm-transient".
    pub fault: String,
    /// "low" or "high".
    pub intensity: String,
    /// Runtime in seconds.
    pub time_s: f64,
    /// Runtime relative to the fault-free run of the same workload.
    pub slowdown: f64,
    /// Whether answer and tree digests match the fault-free run.
    pub answers_match: bool,
    /// Faults injected in the class under test.
    pub injected: u64,
    /// Recovery actions taken for the class under test.
    pub recoveries: u64,
    /// Full recovery/degradation counter block.
    pub recovery: RecoveryStats,
}

/// Full chaos report (`BENCH_chaos.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosReport {
    /// All matrix cells, grouped by workload.
    pub cells: Vec<ChaosCell>,
    /// Number of cells whose digests diverged from the fault-free run
    /// (must be zero; the run panics otherwise).
    pub divergences: usize,
}

/// The fault matrix: five classes at two intensities each, plus a combined
/// cell that also takes an SOU out. Each plan gets its own seed so cells
/// draw independent fault streams.
fn fault_matrix(base_seed: u64) -> Vec<(&'static str, &'static str, FaultPlan)> {
    let mut out = Vec::new();
    let mut seed = base_seed;
    let mut plan = |f: fn(&mut FaultPlan)| {
        seed += 1;
        let mut p = FaultPlan { seed, ..FaultPlan::none() };
        f(&mut p);
        p
    };
    out.push(("hbm-transient", "low", plan(|p| p.hbm_transient_rate = 0.02)));
    out.push(("hbm-transient", "high", plan(|p| p.hbm_transient_rate = 0.25)));
    out.push(("shortcut-corrupt", "low", plan(|p| p.shortcut_corrupt_rate = 0.05)));
    out.push(("shortcut-corrupt", "high", plan(|p| p.shortcut_corrupt_rate = 0.4)));
    out.push(("evict-storm", "low", plan(|p| p.evict_storm_rate = 0.5)));
    out.push(("evict-storm", "high", plan(|p| p.evict_storm_rate = 1.0)));
    out.push((
        "pipeline-stall",
        "low",
        plan(|p| {
            p.pipeline_stall_rate = 0.02;
            p.pipeline_stall_cycles = 16;
        }),
    ));
    out.push((
        "pipeline-stall",
        "high",
        plan(|p| {
            p.pipeline_stall_rate = 0.2;
            p.pipeline_stall_cycles = 64;
        }),
    ));
    out.push(("queue-overflow", "low", plan(|p| p.queue_overflow_rate = 0.5)));
    out.push(("queue-overflow", "high", plan(|p| p.queue_overflow_rate = 1.0)));
    out.push((
        "combined",
        "high",
        plan(|p| {
            p.hbm_transient_rate = 0.1;
            p.shortcut_corrupt_rate = 0.1;
            p.evict_storm_rate = 0.5;
            p.pipeline_stall_rate = 0.05;
            p.pipeline_stall_cycles = 32;
            p.sou_outage_rate = 0.5;
            p.queue_overflow_rate = 0.5;
        }),
    ));
    out
}

/// Injected-fault count for the class a cell stresses.
fn injected_of(fault: &str, r: &RecoveryStats) -> u64 {
    match fault {
        "hbm-transient" => r.hbm_transient_errors,
        "shortcut-corrupt" => r.shortcut_corruptions,
        "evict-storm" => r.evict_storms,
        "pipeline-stall" => r.pipeline_stalls,
        "queue-overflow" => r.queue_overflows,
        _ => r.total_injected(),
    }
}

/// Recovery-action count for the class a cell stresses.
fn recoveries_of(fault: &str, r: &RecoveryStats) -> u64 {
    match fault {
        "hbm-transient" => r.hbm_retries + r.hbm_failovers,
        "shortcut-corrupt" => r.shortcut_fallbacks + r.shortcut_disables,
        "evict-storm" => r.storm_evictions,
        "pipeline-stall" => r.pipeline_stall_cycles,
        "queue-overflow" => r.backpressure_cycles,
        _ => r.total_recoveries(),
    }
}

/// Runs the full differential matrix and writes `BENCH_chaos.json`.
///
/// # Panics
///
/// Panics if any cell's answers diverge from the fault-free run, if a cell
/// injected no faults, or if its recovery counters stayed at zero — the
/// report is written first so the failing cell can be inspected.
pub fn run(scale: &Scale, out_dir: &Path) -> ChaosReport {
    println!("== Chaos: answers under injected faults must match fault-free runs ==");
    let workloads =
        [(Workload::Ipgeo, "IPGEO"), (Workload::Dict, "DICT"), (Workload::DenseInt, "DENSE-INT")];
    let mut t = Table::new(&[
        "workload",
        "fault",
        "intensity",
        "time s",
        "slowdown",
        "injected",
        "recoveries",
        "match",
    ]);
    let mut cells = Vec::new();

    for (workload, wname) in workloads {
        let cfg = DcartConfig::default().scaled_for_keys(scale.keys);
        let keys = workload.generate(scale.keys, scale.seed);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: scale.ops, mix: Mix::C, theta: 0.99, seed: scale.seed },
        );
        let run_cfg = RunConfig { concurrency: scale.concurrency };

        // Fault-free reference.
        let mut engine = DcartAccel::new(cfg.with_auto_prefix_skip(&keys));
        let base: RunReport = engine.run(&keys, &ops, &run_cfg);
        let base_details = engine.last_details().clone();
        assert_eq!(
            base_details.recovery,
            RecoveryStats::default(),
            "fault-free run must not count recoveries"
        );

        let faulted =
            crate::parallel::par_map(fault_matrix(scale.seed), |(fault, intensity, plan)| {
                let mut cfg = cfg.with_auto_prefix_skip(&keys);
                cfg.faults = plan;
                let mut engine = DcartAccel::new(cfg);
                let r: RunReport = engine.run(&keys, &ops, &run_cfg);
                let d = engine.last_details();
                ChaosCell {
                    workload: wname.to_string(),
                    fault: fault.to_string(),
                    intensity: intensity.to_string(),
                    time_s: r.time_s,
                    slowdown: r.time_s / base.time_s,
                    answers_match: d.answer_digest == base_details.answer_digest
                        && d.tree_digest == base_details.tree_digest,
                    injected: injected_of(fault, &d.recovery),
                    recoveries: recoveries_of(fault, &d.recovery),
                    recovery: d.recovery,
                }
            });
        cells.extend(faulted);
    }

    for c in &cells {
        t.row(&[
            c.workload.clone(),
            c.fault.clone(),
            c.intensity.clone(),
            format!("{:.5}", c.time_s),
            format!("{:.2}x", c.slowdown),
            c.injected.to_string(),
            c.recoveries.to_string(),
            if c.answers_match { "ok".to_string() } else { "DIVERGED".to_string() },
        ]);
    }
    t.print();
    println!();

    let divergences = cells.iter().filter(|c| !c.answers_match).count();
    let report = ChaosReport { cells, divergences };
    write_report(out_dir, "BENCH_chaos", &report);

    // Enforce the differential contract only after the report is on disk.
    assert_eq!(report.divergences, 0, "fault injection changed query answers");
    for c in &report.cells {
        assert!(c.injected > 0, "{}/{}/{}: no faults injected", c.workload, c.fault, c.intensity);
        assert!(
            c.recoveries > 0,
            "{}/{}/{}: no recovery recorded",
            c.workload,
            c.fault,
            c.intensity
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_matrix_preserves_answers_at_smoke_scale() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-chaos-test");
        // `run` already asserts the differential contract per cell.
        let r = run(&scale, &tmp);
        assert_eq!(r.divergences, 0);
        // 3 workloads × (5 classes × 2 intensities + 1 combined).
        assert_eq!(r.cells.len(), 33);
        let combined = r
            .cells
            .iter()
            .find(|c| c.fault == "combined" && c.workload == "IPGEO")
            .expect("combined cell present");
        assert!(combined.recovery.sou_outages > 0, "combined cell takes an SOU out");
        assert!(combined.slowdown >= 1.0, "faults never speed a run up");
    }
}
