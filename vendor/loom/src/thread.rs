//! Model-aware mirrors of `std::thread::{spawn, scope}`.
//!
//! Inside [`crate::model`], spawning registers the child with the scheduler
//! and the child waits to be scheduled in before running; joins are
//! cooperative (the scheduler keeps exploring interleavings while the
//! parent waits). Outside a model everything forwards straight to std.

use std::marker::PhantomData;
use std::sync::{Arc, Mutex, PoisonError};

use crate::rt::{self, FinishGuard, Scheduler};

/// Mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<Scheduler>, usize)>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, child)) = &self.model {
            let (_, me) = rt::current().expect("join called from inside the model");
            sched.join(me, *child);
        }
        self.inner.join()
    }
}

/// Mirrors `std::thread::spawn`. Any thread spawned inside a model MUST be
/// joined before the model closure returns.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle { inner: std::thread::spawn(f), model: None },
        Some((sched, me)) => {
            let tid = sched.register_thread();
            let sched_child = sched.clone();
            let inner = std::thread::spawn(move || {
                rt::set_current(Some((sched_child.clone(), tid)));
                let guard = FinishGuard::new(sched_child.clone(), tid);
                sched_child.wait_first_turn(tid);
                let out = f();
                drop(guard);
                rt::set_current(None);
                out
            });
            // The spawn itself is a decision point: the child may run first.
            sched.yield_point(me);
            JoinHandle { inner, model: Some((sched, tid)) }
        }
    }
}

/// Mirrors `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<(Arc<Scheduler>, usize)>,
    children: Mutex<Vec<usize>>,
    _env: PhantomData<&'env ()>,
}

/// Mirrors `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Scheduler>, usize)>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, child)) = &self.model {
            let (_, me) = rt::current().expect("join called from inside the model");
            sched.join(me, *child);
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctx {
            None => ScopedJoinHandle { inner: self.inner.spawn(f), model: None },
            Some((sched, me)) => {
                let tid = sched.register_thread();
                self.children.lock().unwrap_or_else(PoisonError::into_inner).push(tid);
                let sched_child = sched.clone();
                let inner = self.inner.spawn(move || {
                    rt::set_current(Some((sched_child.clone(), tid)));
                    let guard = FinishGuard::new(sched_child.clone(), tid);
                    sched_child.wait_first_turn(tid);
                    let out = f();
                    drop(guard);
                    rt::set_current(None);
                    out
                });
                sched.yield_point(*me);
                ScopedJoinHandle { inner, model: Some((sched.clone(), tid)) }
            }
        }
    }
}

/// Mirrors `std::thread::scope`. Children are joined cooperatively (the
/// scheduler explores their remaining interleavings) before the underlying
/// std scope performs its real join and propagates any child panic.
///
/// Unlike std the closure takes `&Scope<'scope, 'env>` with a free borrow
/// lifetime — std's `&'scope Scope<'scope, _>` shape needs the unsafe
/// plumbing inside std itself, and callers cannot tell the difference.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = rt::current();
    std::thread::scope(|s| {
        let scope = Scope {
            inner: s,
            ctx: ctx.clone(),
            children: Mutex::new(Vec::new()),
            _env: PhantomData,
        };
        // Even when `f` panics the children must be joined cooperatively
        // first — the real std join below cannot advance the model schedule,
        // so skipping this would park the scope forever.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
        if let Some((sched, me)) = &ctx {
            let kids: Vec<usize> =
                scope.children.lock().unwrap_or_else(PoisonError::into_inner).clone();
            for child in kids {
                sched.join(*me, child);
            }
        }
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// A bare decision point, mirroring `std::thread::yield_now`.
pub fn yield_now() {
    rt::branch_point();
}
