// Fixture: F1 must stay quiet when the magic is referenced through the
// constant its defining module exports (and on mentions in comments:
// DCARTWAL, DCARTCKP, DCARTSNP).
use dcart_engine::wal::WAL_MAGIC;

pub fn frame_header(seq: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(16);
    h.extend_from_slice(&WAL_MAGIC);
    h.extend_from_slice(&seq.to_le_bytes());
    h
}
