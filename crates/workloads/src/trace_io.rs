//! Saving and loading operation traces.
//!
//! Reproduction runs are deterministic given a seed, but exporting the
//! exact operation stream lets external tools (or a hardware testbench)
//! replay byte-identical workloads. Traces are JSON-lines: one [`Op`] per
//! line.

use std::fmt;
use std::io::{BufRead, Write};

use crate::Op;

/// A typed error from [`read_trace`], carrying the 1-based line number of
/// the offending input where applicable.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line held invalid JSON (or valid JSON that is not an [`Op`]).
    Malformed {
        /// 1-based line number of the bad line.
        line: usize,
        /// Parser diagnostics.
        reason: String,
    },
    /// The final line was cut off mid-record (no trailing newline and not
    /// parseable) — the classic partial-write signature.
    Truncated {
        /// 1-based line number of the truncated line.
        line: usize,
    },
    /// The trace contained no operations at all (empty file or only blank
    /// lines) — almost certainly the wrong file.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: malformed record: {reason}")
            }
            TraceError::Truncated { line } => {
                write!(f, "trace line {line}: truncated record (partial write?)")
            }
            TraceError::Empty => write!(f, "trace contains no operations"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for std::io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes `ops` to `w` as JSON-lines.
///
/// # Errors
///
/// Returns any I/O error from the writer, or a serialization error
/// (impossible for well-formed [`Op`]s) mapped to `io::ErrorKind::Other`.
pub fn write_trace<W: Write>(mut w: W, ops: &[Op]) -> std::io::Result<()> {
    for op in ops {
        let line = serde_json::to_string(op).map_err(std::io::Error::other)?;
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSON-lines trace written by [`write_trace`].
///
/// # Errors
///
/// * [`TraceError::Malformed`] for an unparseable line (1-based number);
/// * [`TraceError::Truncated`] when the *final* line is unparseable *and*
///   missing its newline — the signature of a partial write;
/// * [`TraceError::Empty`] when no operations were found at all;
/// * [`TraceError::Io`] for reader failures.
pub fn read_trace<R: BufRead>(mut r: R) -> Result<Vec<Op>, TraceError> {
    let mut ops = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let complete = line.ends_with('\n');
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        match serde_json::from_str::<Op>(text) {
            Ok(op) => ops.push(op),
            Err(_) if !complete => return Err(TraceError::Truncated { line: lineno }),
            Err(e) => return Err(TraceError::Malformed { line: lineno, reason: e.to_string() }),
        }
    }
    if ops.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_ops, synth, Mix, OpStreamConfig};

    #[test]
    fn roundtrip_preserves_ops() {
        let keys = synth::dense(500, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 2_000, mix: Mix::C, ..Default::default() },
        );
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        let back = read_trace(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let keys = synth::dense(10, 2);
        let ops = generate_ops(&keys, &OpStreamConfig { count: 3, ..Default::default() });
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = b"{\"kind\":\"Read\",\"key\":[1],\"value\":0}\nnot json\n";
        let err = read_trace(std::io::Cursor::new(&data[..])).unwrap_err();
        match &err {
            TraceError::Malformed { line, .. } => assert_eq!(*line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn truncated_final_line_is_typed_with_position() {
        // A valid record, then a record cut off mid-write (no newline).
        let data = b"{\"kind\":\"Read\",\"key\":[1],\"value\":0}\n{\"kind\":\"Rea";
        let err = read_trace(std::io::Cursor::new(&data[..])).unwrap_err();
        match err {
            TraceError::Truncated { line } => assert_eq!(line, 2),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_but_valid_final_line_still_parses() {
        // A missing trailing newline alone is not an error if the record
        // is complete.
        let data = b"{\"kind\":\"Read\",\"key\":[1],\"value\":0}";
        let back = read_trace(std::io::Cursor::new(&data[..])).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn empty_file_is_a_typed_error() {
        let err = read_trace(std::io::Cursor::new(&b""[..])).unwrap_err();
        assert!(matches!(err, TraceError::Empty), "{err:?}");
        let err = read_trace(std::io::Cursor::new(&b"\n\n  \n"[..])).unwrap_err();
        assert!(matches!(err, TraceError::Empty), "blank-only file: {err:?}");
    }

    #[test]
    fn trace_error_converts_to_io_error_for_legacy_callers() {
        let err = read_trace(std::io::Cursor::new(&b"garbage\n"[..])).unwrap_err();
        let io: std::io::Error = err.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
        assert!(io.to_string().contains("line 1"), "{io}");
    }
}
