//! End-to-end criterion benchmarks: one group per paper exhibit family,
//! running each engine model over a reduced IPGEO workload. Criterion
//! measures the *simulator's* wall-clock here; the modelled times the paper
//! reports come from `repro` (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcart::{DcartAccel, DcartConfig, DcartSoftware};
use dcart_baselines::{CpuBaseline, CpuConfig, CuArt, GpuConfig, IndexEngine, RunConfig};
use dcart_workloads::{generate_ops, KeySet, Mix, Op, OpStreamConfig, Workload};

const KEYS: usize = 10_000;
const OPS: usize = 50_000;

fn setup() -> (KeySet, Vec<Op>, RunConfig) {
    let keys = Workload::Ipgeo.generate(KEYS, 42);
    let ops =
        generate_ops(&keys, &OpStreamConfig { count: OPS, mix: Mix::C, theta: 0.99, seed: 42 });
    (keys, ops, RunConfig { concurrency: 8_192 })
}

fn engine(name: &str, keys: &KeySet) -> Box<dyn IndexEngine> {
    let cpu = CpuConfig::xeon_8468().scaled_for_keys(keys.len());
    let cfg = DcartConfig::default().scaled_for_keys(keys.len()).with_auto_prefix_skip(keys);
    match name {
        "ART" => Box::new(CpuBaseline::art(cpu)),
        "Heart" => Box::new(CpuBaseline::heart(cpu)),
        "SMART" => Box::new(CpuBaseline::smart(cpu)),
        "CuART" => Box::new(CuArt::new(GpuConfig::a100().scaled_for_keys(keys.len()))),
        "DCART-C" => Box::new(DcartSoftware::new(cfg, cpu)),
        "DCART" => Box::new(DcartAccel::new(cfg)),
        _ => unreachable!(),
    }
}

/// Fig. 9's matrix, as a criterion group (simulator throughput per engine).
fn bench_fig9_engines(c: &mut Criterion) {
    let (keys, ops, run) = setup();
    let mut g = c.benchmark_group("fig9/engine-sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ops.len() as u64));
    for name in ["ART", "Heart", "SMART", "CuART", "DCART-C", "DCART"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| {
                let mut e = engine(name, &keys);
                e.run(&keys, &ops, &run).time_s
            });
        });
    }
    g.finish();
}

/// Fig. 12(b): the DCART engine across write ratios.
fn bench_fig12_mixes(c: &mut Criterion) {
    let keys = Workload::Ipgeo.generate(KEYS, 42);
    let mut g = c.benchmark_group("fig12/dcart-by-mix");
    g.sample_size(10);
    for (label, mix) in Mix::named() {
        let ops = generate_ops(&keys, &OpStreamConfig { count: OPS, mix, theta: 0.99, seed: 42 });
        g.bench_with_input(BenchmarkId::from_parameter(label), &ops, |b, ops| {
            b.iter(|| {
                let mut e = engine("DCART", &keys);
                e.run(&keys, ops, &RunConfig { concurrency: 8_192 }).time_s
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig9_engines, bench_fig12_mixes);
criterion_main!(benches);
