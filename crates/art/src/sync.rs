//! A thread-safe ART with node-level write exclusion.
//!
//! The paper's CPU baselines synchronize with the ROWEX protocol
//! (Leis et al., DaMoN'16): node-level write locks, lock the parent too when
//! a node changes type. [`SyncArt`] implements the same *locking granularity*
//! — every structural change write-locks exactly the node(s) ROWEX would —
//! using top-down lock coupling, which is simple to prove deadlock-free in
//! safe Rust (locks are only ever acquired parent → child).
//!
//! Readers take node read locks hand-over-hand; writers take write locks and
//! hold the parent's lock only across decisions that might replace the
//! parent's child slot. [`LockStats`] counts every acquisition and every
//! *contended* acquisition (a `try_lock` that failed before blocking), which
//! is the statistic Fig. 7 of the paper reports.
//!
//! The child containers here are sorted arrays rather than the four adaptive
//! layouts (adaptive compaction is a memory-layout optimization modelled
//! precisely by [`Art`](crate::Art); it does not change locking behaviour).
//! The adaptive *type tag* is still tracked so that layout transitions
//! trigger the extra parent-lock event exactly as in ROWEX.
//!
//! # Panics and lock poisoning
//!
//! The locks are `parking_lot`-style and do **not** poison: a thread that
//! panics while holding a node lock releases it during unwind, and the tree
//! stays fully usable from every other handle (covered by
//! `injected_panic_during_scan_does_not_wedge_the_tree` below). The
//! `expect`/`unreachable!` sites that remain in this module assert
//! invariants that hold *because* the corresponding write lock is held — an
//! edge cannot vanish from a write-locked parent, a slot owner cannot be a
//! leaf — so firing one denotes a programming error, not a recoverable
//! condition. The one place where a concurrent reader legitimately shares
//! state a writer wants to consume — a weakly-consistent scan holding a
//! clone of a leaf being removed — is recovered, not asserted: see
//! [`SyncArt::take_leaf_value`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockWriteGuard};

use crate::node::NodeType;
use crate::tree::ArtError;
use crate::Key;

type Link<V> = Arc<RwLock<SyncNode<V>>>;

/// Counters for lock activity, shared by all clones of a [`SyncArt`].
#[derive(Debug, Default)]
pub struct LockStats {
    read_acquired: AtomicU64,
    write_acquired: AtomicU64,
    read_contended: AtomicU64,
    write_contended: AtomicU64,
    type_changes: AtomicU64,
}

impl LockStats {
    /// Total read-lock acquisitions.
    pub fn read_acquired(&self) -> u64 {
        self.read_acquired.load(Ordering::Relaxed)
    }

    /// Total write-lock acquisitions.
    pub fn write_acquired(&self) -> u64 {
        self.write_acquired.load(Ordering::Relaxed)
    }

    /// Read-lock acquisitions that found the lock held (contended).
    pub fn read_contended(&self) -> u64 {
        self.read_contended.load(Ordering::Relaxed)
    }

    /// Write-lock acquisitions that found the lock held (contended).
    pub fn write_contended(&self) -> u64 {
        self.write_contended.load(Ordering::Relaxed)
    }

    /// Total contended acquisitions (read + write) — the paper's
    /// "lock contentions" metric (Fig. 7).
    pub fn contended(&self) -> u64 {
        self.read_contended() + self.write_contended()
    }

    /// Node-layout transitions (each also implies a parent lock in ROWEX).
    pub fn type_changes(&self) -> u64 {
        self.type_changes.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum SyncNode<V> {
    Leaf {
        key: Key,
        value: V,
    },
    Inner {
        prefix: Vec<u8>,
        /// Children sorted by edge byte.
        children: Vec<(u8, Link<V>)>,
        /// Adaptive layout the node would currently use.
        node_type: NodeType,
    },
}

impl<V> SyncNode<V> {
    fn new_inner(prefix: Vec<u8>) -> Self {
        SyncNode::Inner { prefix, children: Vec::with_capacity(4), node_type: NodeType::N4 }
    }
}

/// Layout a node of `n` children would use.
fn layout_for(n: usize) -> NodeType {
    match n {
        0..=4 => NodeType::N4,
        5..=16 => NodeType::N16,
        17..=48 => NodeType::N48,
        _ => NodeType::N256,
    }
}

/// A read guard held only so that it is released *after* the child's guard
/// is acquired (hand-over-hand coupling for readers). The payloads are
/// never read — they exist purely for their `Drop` timing.
#[allow(dead_code)]
enum GuardToDrop<'a, V> {
    Root(parking_lot::RwLockReadGuard<'a, Option<Link<V>>>),
    Node(parking_lot::RwLockReadGuard<'a, SyncNode<V>>),
}

/// Who owns the slot pointing at the current node: the tree's root pointer
/// or an inner parent (with the edge byte of the slot).
enum SlotOwner<'a, V> {
    Root(RwLockWriteGuard<'a, Option<Link<V>>>),
    Parent(RwLockWriteGuard<'a, SyncNode<V>>, u8),
}

impl<V> SlotOwner<'_, V> {
    fn replace(mut self, new: Link<V>) {
        match &mut self {
            SlotOwner::Root(root) => **root = Some(new),
            SlotOwner::Parent(guard, edge) => match &mut **guard {
                SyncNode::Inner { children, .. } => {
                    let i = children
                        .binary_search_by_key(edge, |(b, _)| *b)
                        .expect("edge byte vanished under lock");
                    children[i].1 = new;
                }
                SyncNode::Leaf { .. } => unreachable!("parent slot owner is a leaf"),
            },
        }
    }
}

/// A concurrent Adaptive Radix Tree with node-level write exclusion and
/// lock-contention accounting.
///
/// Cloning a `SyncArt` is cheap and yields a handle to the *same* tree
/// (like `Arc`), so handles can be moved into threads.
///
/// # Examples
///
/// ```
/// use dcart_art::{Key, SyncArt};
///
/// let art = SyncArt::new();
/// let handles: Vec<_> = (0..4u64)
///     .map(|t| {
///         let art = art.clone();
///         std::thread::spawn(move || {
///             for i in 0..100u64 {
///                 art.insert(Key::from_u64(t * 1000 + i), i).unwrap();
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(art.len(), 400);
/// assert_eq!(art.get(&Key::from_u64(3042)), Some(42));
/// ```
#[derive(Debug)]
pub struct SyncArt<V> {
    root: Arc<RwLock<Option<Link<V>>>>,
    len: Arc<AtomicUsize>,
    stats: Arc<LockStats>,
}

impl<V> Clone for SyncArt<V> {
    fn clone(&self) -> Self {
        SyncArt {
            root: Arc::clone(&self.root),
            len: Arc::clone(&self.len),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl<V> Default for SyncArt<V> {
    fn default() -> Self {
        Self::new()
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl<V> SyncArt<V> {
    /// Creates an empty concurrent tree.
    pub fn new() -> Self {
        SyncArt {
            root: Arc::new(RwLock::new(None)),
            len: Arc::new(AtomicUsize::new(0)),
            stats: Arc::new(LockStats::default()),
        }
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared lock-activity counters.
    pub fn lock_stats(&self) -> &LockStats {
        &self.stats
    }

    /// Takes the value out of a leaf that has just been detached from the
    /// tree. Fast path: ours is the last `Arc`, so the node unwraps. Slow
    /// path: a concurrent weakly-consistent scan ([`SyncArt::for_each`])
    /// still holds a clone of the leaf's link — swap in an empty tombstone
    /// inner node (which a scan visits as zero children, harmlessly) and
    /// take the value from the swapped-out leaf.
    ///
    /// Returns `None` only if the detached node was not a leaf, which the
    /// callers' lock protocol rules out; the `debug_assert` documents that
    /// invariant without making it a release-mode abort.
    fn take_leaf_value(&self, link: Link<V>) -> Option<V> {
        let node = match Arc::try_unwrap(link) {
            Ok(lock) => lock.into_inner(),
            Err(shared) => {
                let mut g = self.write_node(&shared);
                std::mem::replace(&mut *g, SyncNode::new_inner(Vec::new()))
            }
        };
        match node {
            SyncNode::Leaf { value, .. } => Some(value),
            SyncNode::Inner { .. } => {
                debug_assert!(false, "detached node was not a leaf");
                None
            }
        }
    }

    fn read_node<'a>(&self, link: &'a Link<V>) -> parking_lot::RwLockReadGuard<'a, SyncNode<V>> {
        self.stats.read_acquired.fetch_add(1, Ordering::Relaxed);
        match link.try_read() {
            Some(g) => g,
            None => {
                self.stats.read_contended.fetch_add(1, Ordering::Relaxed);
                link.read()
            }
        }
    }

    fn write_root(&self) -> RwLockWriteGuard<'_, Option<Link<V>>> {
        self.stats.write_acquired.fetch_add(1, Ordering::Relaxed);
        match self.root.try_write() {
            Some(g) => g,
            None => {
                self.stats.write_contended.fetch_add(1, Ordering::Relaxed);
                self.root.write()
            }
        }
    }

    fn write_node<'a>(&self, link: &'a Link<V>) -> RwLockWriteGuard<'a, SyncNode<V>> {
        self.stats.write_acquired.fetch_add(1, Ordering::Relaxed);
        match link.try_write() {
            Some(g) => g,
            None => {
                self.stats.write_contended.fetch_add(1, Ordering::Relaxed);
                link.write()
            }
        }
    }

    /// Looks up `key`, returning a clone of its value.
    pub fn get(&self, key: &Key) -> Option<V>
    where
        V: Clone,
    {
        // Hand-over-hand read locking: each recursion level acquires the
        // child's lock before the parent's guard (passed down as `parent`)
        // is dropped, so no writer can restructure the edge in between.
        let root_guard = self.root.read();
        let first = root_guard.as_ref()?.clone();
        self.get_rec(first, GuardToDrop::Root(root_guard), key.as_bytes(), 0)
    }

    fn get_rec(
        &self,
        link: Link<V>,
        parent: GuardToDrop<'_, V>,
        bytes: &[u8],
        mut depth: usize,
    ) -> Option<V>
    where
        V: Clone,
    {
        let g = self.read_node(&link);
        drop(parent);
        let child = match &*g {
            SyncNode::Leaf { key: k, value } => {
                return (k.as_bytes() == bytes).then(|| value.clone());
            }
            SyncNode::Inner { prefix, children, .. } => {
                let rest = &bytes[depth..];
                let m = common_prefix_len(prefix, rest);
                if m < prefix.len() || depth + m >= bytes.len() {
                    return None;
                }
                depth += prefix.len();
                let i = children.binary_search_by_key(&bytes[depth], |(b, _)| *b).ok()?;
                depth += 1;
                children[i].1.clone()
            }
        };
        self.get_rec(child, GuardToDrop::Node(g), bytes, depth)
    }

    /// Inserts `key` → `value`, returning the previous value if present.
    ///
    /// # Errors
    ///
    /// Returns [`ArtError::PrefixViolation`] if `key` is a strict prefix of
    /// an existing key or vice versa (the tree is left unchanged).
    pub fn insert(&self, key: Key, value: V) -> Result<Option<V>, ArtError> {
        let mut root = self.write_root();
        let Some(first) = root.as_ref().cloned() else {
            *root = Some(Arc::new(RwLock::new(SyncNode::Leaf { key, value })));
            self.len.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        let result = self.insert_rec(first, SlotOwner::Root(root), key, value, 0);
        if let Ok(None) = result {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn insert_rec(
        &self,
        link: Link<V>,
        owner: SlotOwner<'_, V>,
        key: Key,
        value: V,
        depth: usize,
    ) -> Result<Option<V>, ArtError> {
        let mut g = self.write_node(&link);
        enum Case<V> {
            ReplaceValue,
            SplitLeaf { common: usize, old_byte: u8 },
            SplitPrefix { m: usize },
            AddChild,
            Descend { child: Link<V>, edge: u8 },
            Violation,
        }
        let bytes = key.as_bytes().to_vec();
        let case = match &*g {
            SyncNode::Leaf { key: k, .. } => {
                if k.as_bytes() == bytes.as_slice() {
                    Case::ReplaceValue
                } else {
                    let lk = k.as_bytes();
                    let common = common_prefix_len(&lk[depth..], &bytes[depth..]);
                    if depth + common == lk.len() || depth + common == bytes.len() {
                        Case::Violation
                    } else {
                        Case::SplitLeaf { common, old_byte: lk[depth + common] }
                    }
                }
            }
            SyncNode::Inner { prefix, children, .. } => {
                let rest = &bytes[depth..];
                let m = common_prefix_len(prefix, rest);
                if m < prefix.len() {
                    if depth + m == bytes.len() {
                        Case::Violation
                    } else {
                        Case::SplitPrefix { m }
                    }
                } else if depth + m == bytes.len() {
                    Case::Violation
                } else {
                    let b = bytes[depth + prefix.len()];
                    match children.binary_search_by_key(&b, |(e, _)| *e) {
                        Ok(i) => Case::Descend { child: children[i].1.clone(), edge: b },
                        Err(_) => Case::AddChild,
                    }
                }
            }
        };
        match case {
            Case::Violation => Err(ArtError::PrefixViolation),
            Case::ReplaceValue => {
                drop(owner);
                match &mut *g {
                    SyncNode::Leaf { value: v, .. } => Ok(Some(std::mem::replace(v, value))),
                    SyncNode::Inner { .. } => {
                        unreachable!("insert target re-checked under its lock is a leaf")
                    }
                }
            }
            Case::SplitLeaf { common, old_byte } => {
                let new_byte = bytes[depth + common];
                let new_leaf = Arc::new(RwLock::new(SyncNode::Leaf { key, value }));
                let mut inner = SyncNode::new_inner(bytes[depth..depth + common].to_vec());
                if let SyncNode::Inner { children, .. } = &mut inner {
                    children.push((old_byte, Arc::clone(&link)));
                    children.push((new_byte, new_leaf));
                    children.sort_by_key(|(b, _)| *b);
                }
                drop(g);
                owner.replace(Arc::new(RwLock::new(inner)));
                Ok(None)
            }
            Case::SplitPrefix { m } => {
                let (head, edge_old) = match &mut *g {
                    SyncNode::Inner { prefix, .. } => {
                        let head: Vec<u8> = prefix[..m].to_vec();
                        let edge_old = prefix[m];
                        prefix.drain(..=m);
                        (head, edge_old)
                    }
                    SyncNode::Leaf { .. } => {
                        unreachable!("edge owner re-checked under its lock is an inner node")
                    }
                };
                let edge_new = bytes[depth + m];
                let new_leaf = Arc::new(RwLock::new(SyncNode::Leaf { key, value }));
                let mut split = SyncNode::new_inner(head);
                if let SyncNode::Inner { children, .. } = &mut split {
                    children.push((edge_old, Arc::clone(&link)));
                    children.push((edge_new, new_leaf));
                    children.sort_by_key(|(b, _)| *b);
                }
                drop(g);
                owner.replace(Arc::new(RwLock::new(split)));
                Ok(None)
            }
            Case::AddChild => {
                // The parent slot is not touched; release it before the
                // (possibly type-changing) local mutation.
                drop(owner);
                match &mut *g {
                    SyncNode::Inner { prefix, children, node_type } => {
                        let b = bytes[depth + prefix.len()];
                        let i = children
                            .binary_search_by_key(&b, |(e, _)| *e)
                            .expect_err("descend case handles existing edges");
                        children
                            .insert(i, (b, Arc::new(RwLock::new(SyncNode::Leaf { key, value }))));
                        let new_type = layout_for(children.len());
                        if new_type != *node_type {
                            *node_type = new_type;
                            self.stats.type_changes.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(None)
                    }
                    SyncNode::Leaf { .. } => {
                        unreachable!("edge owner re-checked under its lock is an inner node")
                    }
                }
            }
            Case::Descend { child, edge } => {
                drop(owner);
                let new_depth = depth
                    + match &*g {
                        SyncNode::Inner { prefix, .. } => prefix.len() + 1,
                        SyncNode::Leaf { .. } => {
                            unreachable!("descent path visits inner nodes only")
                        }
                    };
                self.insert_rec(child, SlotOwner::Parent(g, edge), key, value, new_depth)
            }
        }
    }

    /// Visits every `(key, value)` pair in ascending key order, calling
    /// `f` on clones taken under per-node read locks.
    ///
    /// Concurrent writers may interleave between nodes, so the visit is a
    /// *weakly consistent* snapshot (every key present for the whole call
    /// is visited; keys inserted or removed during it may or may not be).
    ///
    /// # Examples
    ///
    /// ```
    /// use dcart_art::{Key, SyncArt};
    ///
    /// let art = SyncArt::new();
    /// for v in [3u64, 1, 2] {
    ///     art.insert(Key::from_u64(v), v).unwrap();
    /// }
    /// let mut seen = Vec::new();
    /// art.for_each(|_, v| seen.push(*v));
    /// assert_eq!(seen, vec![1, 2, 3]);
    /// ```
    pub fn for_each<F: FnMut(&Key, &V)>(&self, mut f: F) {
        let root = {
            let g = self.root.read();
            g.clone()
        };
        if let Some(link) = root {
            self.for_each_rec(&link, &mut f);
        }
    }

    fn for_each_rec<F: FnMut(&Key, &V)>(&self, link: &Link<V>, f: &mut F) {
        // Children are collected under the node's read lock, then visited
        // after it is released (holding locks across the recursion would
        // block writers for the whole scan).
        let children: Vec<Link<V>> = {
            let g = self.read_node(link);
            match &*g {
                SyncNode::Leaf { key, value } => {
                    f(key, value);
                    return;
                }
                SyncNode::Inner { children, .. } => {
                    children.iter().map(|(_, c)| Arc::clone(c)).collect()
                }
            }
        };
        for child in children {
            self.for_each_rec(&child, f);
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&self, key: &Key) -> Option<V> {
        let mut root = self.write_root();
        let first = root.as_ref().cloned()?;
        let g = self.write_node(&first);
        let removed = match &*g {
            SyncNode::Leaf { key: k, .. } => {
                if k.as_bytes() == key.as_bytes() {
                    *root = None;
                    drop(g);
                    self.take_leaf_value(first)
                } else {
                    None
                }
            }
            SyncNode::Inner { .. } => {
                drop(g);
                self.remove_rec(first, SlotOwner::Root(root), key, 0)
            }
        };
        if removed.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Removal where `link` is known to be an inner node. Holds `owner`
    /// across the child inspection so merges can rewrite the owner's slot.
    fn remove_rec(
        &self,
        link: Link<V>,
        owner: SlotOwner<'_, V>,
        key: &Key,
        mut depth: usize,
    ) -> Option<V> {
        let mut g = self.write_node(&link);
        let bytes = key.as_bytes();
        let (edge, child) = match &*g {
            SyncNode::Inner { prefix, children, .. } => {
                let rest = &bytes[depth..];
                let m = common_prefix_len(prefix, rest);
                if m < prefix.len() || depth + m >= bytes.len() {
                    return None;
                }
                depth += prefix.len();
                let b = bytes[depth];
                let i = children.binary_search_by_key(&b, |(e, _)| *e).ok()?;
                depth += 1;
                (b, children[i].1.clone())
            }
            SyncNode::Leaf { .. } => unreachable!("remove_rec called on leaf"),
        };

        let child_guard = self.write_node(&child);
        match &*child_guard {
            SyncNode::Leaf { key: k, .. } => {
                if k.as_bytes() != bytes {
                    return None;
                }
                drop(child_guard);
                // `child` is our local clone of the leaf's Arc; drop it so
                // the unwrap below sees the last reference.
                drop(child);
                let SyncNode::Inner { prefix, children, node_type } = &mut *g else {
                    unreachable!("merge parent re-checked under its lock is an inner node")
                };
                let i = children
                    .binary_search_by_key(&edge, |(e, _)| *e)
                    .expect("edge vanished under lock");
                let (_, removed_link) = children.remove(i);
                let value = self.take_leaf_value(removed_link)?;
                if children.len() == 1 {
                    // Merge this node into its single remaining child.
                    let (only_edge, only_child) = children.pop().expect("one child remains");
                    let mut merged_prefix = std::mem::take(prefix);
                    merged_prefix.push(only_edge);
                    let mut cg = self.write_node(&only_child);
                    if let SyncNode::Inner { prefix: cp, .. } = &mut *cg {
                        merged_prefix.append(cp);
                        *cp = merged_prefix;
                    }
                    drop(cg);
                    drop(g);
                    owner.replace(only_child);
                } else {
                    let new_type = layout_for(children.len());
                    if new_type != *node_type {
                        *node_type = new_type;
                        self.stats.type_changes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Some(value)
            }
            SyncNode::Inner { .. } => {
                drop(child_guard);
                // The action is deeper; this node's slot in `owner` is safe.
                drop(owner);
                self.remove_rec(child, SlotOwner::Parent(g, edge), key, depth)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key::from_u64(v)
    }

    #[test]
    fn single_thread_roundtrip() {
        let art = SyncArt::new();
        for v in 0..1000u64 {
            assert_eq!(art.insert(k(v * 7), v).unwrap(), None);
        }
        assert_eq!(art.len(), 1000);
        for v in 0..1000u64 {
            assert_eq!(art.get(&k(v * 7)), Some(v));
        }
        assert_eq!(art.get(&k(1)), None);
        assert_eq!(art.insert(k(0), 99).unwrap(), Some(0));
    }

    #[test]
    fn remove_single_thread() {
        let art = SyncArt::new();
        for v in 0..300u64 {
            art.insert(k(v), v).unwrap();
        }
        for v in (0..300u64).step_by(3) {
            assert_eq!(art.remove(&k(v)), Some(v));
        }
        assert_eq!(art.len(), 200);
        for v in 0..300u64 {
            let expect = (v % 3 != 0).then_some(v);
            assert_eq!(art.get(&k(v)), expect);
        }
    }

    #[test]
    fn remove_last_key_clears_root() {
        let art = SyncArt::new();
        art.insert(k(9), 9).unwrap();
        assert_eq!(art.remove(&k(9)), Some(9));
        assert!(art.is_empty());
        assert_eq!(art.get(&k(9)), None);
        // Reusable after emptying.
        art.insert(k(1), 1).unwrap();
        assert_eq!(art.get(&k(1)), Some(1));
    }

    #[test]
    fn prefix_violation_propagates() {
        let art = SyncArt::new();
        art.insert(Key::from_raw(vec![1, 2, 3]), 0).unwrap();
        assert_eq!(art.insert(Key::from_raw(vec![1, 2]), 1), Err(ArtError::PrefixViolation));
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let art = SyncArt::new();
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let art = art.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        art.insert(k(t * 100_000 + i), t * 100_000 + i).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(art.len(), 4000);
        for t in 0..8u64 {
            for i in (0..500u64).step_by(37) {
                assert_eq!(art.get(&k(t * 100_000 + i)), Some(t * 100_000 + i));
            }
        }
    }

    #[test]
    fn concurrent_same_hot_keys() {
        // All threads hammer the same small key set: exercises contention
        // paths and value replacement under write locks.
        let art = SyncArt::new();
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let art = art.clone();
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        for key in 0..16u64 {
                            art.insert(k(key), t * 1000 + round).unwrap();
                            let _ = art.get(&k(key));
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(art.len(), 16);
        for key in 0..16u64 {
            assert!(art.get(&k(key)).is_some());
        }
        let stats = art.lock_stats();
        assert!(stats.write_acquired() > 0);
        assert!(stats.read_acquired() > 0);
    }

    #[test]
    fn concurrent_insert_and_remove() {
        let art = SyncArt::new();
        for v in 0..2000u64 {
            art.insert(k(v), v).unwrap();
        }
        let inserter = {
            let art = art.clone();
            std::thread::spawn(move || {
                for v in 2000..4000u64 {
                    art.insert(k(v), v).unwrap();
                }
            })
        };
        let remover = {
            let art = art.clone();
            std::thread::spawn(move || {
                for v in 0..2000u64 {
                    assert_eq!(art.remove(&k(v)), Some(v));
                }
            })
        };
        inserter.join().unwrap();
        remover.join().unwrap();
        assert_eq!(art.len(), 2000);
        for v in 2000..4000u64 {
            assert_eq!(art.get(&k(v)), Some(v));
        }
        for v in 0..2000u64 {
            assert_eq!(art.get(&k(v)), None);
        }
    }

    #[test]
    fn type_changes_counted() {
        let art = SyncArt::new();
        // 300 children under one root span N4→N16→N48→N256: 3 transitions.
        for b in 0..=255u8 {
            art.insert(Key::from_raw(vec![b, 1]), u64::from(b)).unwrap();
        }
        assert_eq!(art.lock_stats().type_changes(), 3);
    }

    #[test]
    fn for_each_visits_in_order_and_survives_concurrency() {
        let art = SyncArt::new();
        for v in 0..500u64 {
            art.insert(k(v), v).unwrap();
        }
        let writer = {
            let art = art.clone();
            std::thread::spawn(move || {
                for v in 500..1000u64 {
                    art.insert(k(v), v).unwrap();
                }
            })
        };
        let mut seen = Vec::new();
        art.for_each(|_, v| seen.push(*v));
        writer.join().unwrap();
        // The pre-existing keys are all visited, in order.
        assert!(seen.len() >= 500);
        let pre: Vec<u64> = seen.iter().copied().filter(|&v| v < 500).collect();
        assert_eq!(pre, (0..500).collect::<Vec<u64>>());
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "ascending order");
    }

    #[test]
    fn clone_shares_state() {
        let a = SyncArt::new();
        let b = a.clone();
        a.insert(k(1), 10).unwrap();
        assert_eq!(b.get(&k(1)), Some(10));
        b.remove(&k(1));
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn injected_panic_during_scan_does_not_wedge_the_tree() {
        // parking_lot-style locks do not poison: a guard held across a
        // panic is released during unwind, so the tree stays usable from
        // every other handle.
        let art = SyncArt::new();
        for v in 0..100u64 {
            art.insert(k(v), v).unwrap();
        }
        let crasher = {
            let art = art.clone();
            std::thread::spawn(move || art.for_each(|_, _| panic!("injected fault")))
        };
        assert!(crasher.join().is_err(), "the injected panic propagates to its thread");
        // Every operation class still works — no lock is left held or
        // poisoned.
        assert_eq!(art.get(&k(42)), Some(42));
        assert_eq!(art.insert(k(1000), 1000).unwrap(), None);
        assert_eq!(art.remove(&k(0)), Some(0));
        assert_eq!(art.len(), 100);
        let mut seen = 0;
        art.for_each(|_, _| seen += 1);
        assert_eq!(seen, 100);
    }

    #[test]
    fn remove_during_scan_does_not_panic_or_lose_values() {
        // A weakly-consistent scan collects child links and releases the
        // parent lock before visiting them, so a removed leaf can still be
        // referenced by the scanner. Removal must extract the value anyway
        // (tombstone swap), never panic, and keep `len` accurate.
        let art = SyncArt::new();
        for v in 0..64u64 {
            art.insert(k(v), v).unwrap();
        }
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (resume_tx, resume_rx) = std::sync::mpsc::channel::<()>();
        let scanner = {
            let art = art.clone();
            std::thread::spawn(move || {
                let mut visited = 0u64;
                art.for_each(|_, _| {
                    visited += 1;
                    if visited == 1 {
                        started_tx.send(()).expect("main thread alive");
                        resume_rx.recv().expect("main thread alive");
                    }
                });
                visited
            })
        };
        started_rx.recv().expect("scanner started");
        // The scanner is parked on the first leaf, holding link clones of
        // its sibling leaves. Removing one of those used to panic with
        // "leaf had outstanding references while parent locked".
        assert_eq!(art.remove(&k(40)), Some(40));
        assert_eq!(art.len(), 63, "the removal is counted");
        resume_tx.send(()).expect("scanner alive");
        let visited = scanner.join().expect("scanner must not panic");
        assert!(visited >= 1);
        assert_eq!(art.get(&k(40)), None);
    }
}
