//! Support machinery for derived impls and value-tree formats.
//!
//! [`Content`] is a generic self-describing value tree (the moral equivalent
//! of real serde's private `Content`). Derived `Deserialize` impls capture
//! the input into a `Content` and pattern-match it; `serde_json` reuses it as
//! its parsed document representation.

use std::fmt;
use std::marker::PhantomData;

use crate::de::{self, Deserialize, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    self, Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple, Serializer,
};

/// A self-describing value tree: the union of everything the data model can
/// produce. Map entries preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map (ordered).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Returns the string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// Unwraps a sequence.
    pub fn into_seq(self) -> Result<Vec<Content>, String> {
        match self {
            Content::Seq(v) => Ok(v),
            other => Err(format!("expected a sequence, found {}", other.kind())),
        }
    }

    /// Unwraps a map.
    pub fn into_map(self) -> Result<Vec<(Content, Content)>, String> {
        match self {
            Content::Map(m) => Ok(m),
            other => Err(format!("expected a map, found {}", other.kind())),
        }
    }
}

struct ContentVisitor;

impl<'de> Visitor<'de> for ContentVisitor {
    type Value = Content;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any value")
    }

    fn visit_bool<E: de::Error>(self, v: bool) -> Result<Content, E> {
        Ok(Content::Bool(v))
    }

    fn visit_i64<E: de::Error>(self, v: i64) -> Result<Content, E> {
        Ok(if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) })
    }

    fn visit_u64<E: de::Error>(self, v: u64) -> Result<Content, E> {
        Ok(Content::U64(v))
    }

    fn visit_f64<E: de::Error>(self, v: f64) -> Result<Content, E> {
        Ok(Content::F64(v))
    }

    fn visit_str<E: de::Error>(self, v: &str) -> Result<Content, E> {
        Ok(Content::Str(v.to_owned()))
    }

    fn visit_string<E: de::Error>(self, v: String) -> Result<Content, E> {
        Ok(Content::Str(v))
    }

    fn visit_unit<E: de::Error>(self) -> Result<Content, E> {
        Ok(Content::Null)
    }

    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Content, A::Error> {
        let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
        while let Some(el) = seq.next_element::<Content>()? {
            out.push(el);
        }
        Ok(Content::Seq(out))
    }

    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Content, A::Error> {
        let mut out = Vec::with_capacity(map.size_hint().unwrap_or(0));
        while let Some(key) = map.next_key::<Content>()? {
            out.push((key, map.next_value::<Content>()?));
        }
        Ok(Content::Map(out))
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(ContentVisitor)
    }
}

/// A [`Deserializer`] that replays a captured [`Content`] tree.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content, marker: PhantomData }
    }
}

struct ContentSeqAccess<E> {
    iter: std::vec::IntoIter<Content>,
    marker: PhantomData<E>,
}

impl<'de, E: de::Error> SeqAccess<'de> for ContentSeqAccess<E> {
    type Error = E;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, E> {
        match self.iter.next() {
            None => Ok(None),
            Some(c) => T::deserialize(ContentDeserializer::new(c)).map(Some),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct ContentMapAccess<E> {
    iter: std::vec::IntoIter<(Content, Content)>,
    pending: Option<Content>,
    marker: PhantomData<E>,
}

impl<'de, E: de::Error> MapAccess<'de> for ContentMapAccess<E> {
    type Error = E;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, E> {
        match self.iter.next() {
            None => Ok(None),
            Some((k, v)) => {
                self.pending = Some(v);
                K::deserialize(ContentDeserializer::new(k)).map(Some)
            }
        }
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, E> {
        let v =
            self.pending.take().ok_or_else(|| E::custom("next_value called before next_key"))?;
        V::deserialize(ContentDeserializer::new(v))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        match self.content {
            Content::Null => visitor.visit_unit(),
            Content::Bool(b) => visitor.visit_bool(b),
            Content::U64(n) => visitor.visit_u64(n),
            Content::I64(n) => visitor.visit_i64(n),
            Content::F64(n) => visitor.visit_f64(n),
            Content::Str(s) => visitor.visit_string(s),
            Content::Seq(v) => {
                visitor.visit_seq(ContentSeqAccess { iter: v.into_iter(), marker: PhantomData })
            }
            Content::Map(m) => visitor.visit_map(ContentMapAccess {
                iter: m.into_iter(),
                pending: None,
                marker: PhantomData,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        match self.content {
            Content::Null => visitor.visit_none(),
            _ => visitor.visit_some(self),
        }
    }
}

/// Deserializes a `T` out of a captured [`Content`] tree. Used by derived
/// `Deserialize` impls for field/variant payloads.
pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::new(content))
}

/// A [`Serializer`] producing a [`Content`] tree. `serde_json` serializes
/// through this and then prints the tree.
pub struct ContentSerializer<E> {
    marker: PhantomData<E>,
}

impl<E> ContentSerializer<E> {
    /// Creates a content serializer.
    pub fn new() -> Self {
        ContentSerializer { marker: PhantomData }
    }
}

impl<E> Default for ContentSerializer<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// In-progress sequence/tuple.
pub struct ContentSeqSerializer<E> {
    items: Vec<Content>,
    marker: PhantomData<E>,
}

impl<E: ser::Error> SerializeSeq for ContentSeqSerializer<E> {
    type Ok = Content;
    type Error = E;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        self.items.push(value.serialize(ContentSerializer::new())?);
        Ok(())
    }

    fn end(self) -> Result<Content, E> {
        Ok(Content::Seq(self.items))
    }
}

impl<E: ser::Error> SerializeTuple for ContentSeqSerializer<E> {
    type Ok = Content;
    type Error = E;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<Content, E> {
        SerializeSeq::end(self)
    }
}

/// In-progress map/struct.
pub struct ContentMapSerializer<E> {
    entries: Vec<(Content, Content)>,
    marker: PhantomData<E>,
}

impl<E: ser::Error> SerializeMap for ContentMapSerializer<E> {
    type Ok = Content;
    type Error = E;

    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), E> {
        let k = key.serialize(ContentSerializer::new())?;
        let v = value.serialize(ContentSerializer::new())?;
        self.entries.push((k, v));
        Ok(())
    }

    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(self.entries))
    }
}

impl<E: ser::Error> SerializeStruct for ContentMapSerializer<E> {
    type Ok = Content;
    type Error = E;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), E> {
        let v = value.serialize(ContentSerializer::new())?;
        self.entries.push((Content::Str(key.to_owned()), v));
        Ok(())
    }

    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(self.entries))
    }
}

/// Wraps a finished compound value so `end()` can tag it with its variant
/// name (for tuple/struct enum variants).
pub struct VariantSerializer<Inner> {
    variant: &'static str,
    inner: Inner,
}

impl<E: ser::Error> SerializeTuple for VariantSerializer<ContentSeqSerializer<E>> {
    type Ok = Content;
    type Error = E;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        SerializeSeq::serialize_element(&mut self.inner, value)
    }

    fn end(self) -> Result<Content, E> {
        let inner = SerializeSeq::end(self.inner)?;
        Ok(Content::Map(vec![(Content::Str(self.variant.to_owned()), inner)]))
    }
}

impl<E: ser::Error> SerializeStruct for VariantSerializer<ContentMapSerializer<E>> {
    type Ok = Content;
    type Error = E;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), E> {
        SerializeStruct::serialize_field(&mut self.inner, key, value)
    }

    fn end(self) -> Result<Content, E> {
        let inner = SerializeStruct::end(self.inner)?;
        Ok(Content::Map(vec![(Content::Str(self.variant.to_owned()), inner)]))
    }
}

/// Either a plain compound serializer or a variant-tagged one.
pub enum MaybeVariant<Inner> {
    /// Untagged.
    Plain(Inner),
    /// Tagged with a variant name at `end()`.
    Tagged(VariantSerializer<Inner>),
}

impl<E: ser::Error> SerializeTuple for MaybeVariant<ContentSeqSerializer<E>> {
    type Ok = Content;
    type Error = E;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), E> {
        match self {
            MaybeVariant::Plain(inner) => SerializeSeq::serialize_element(inner, value),
            MaybeVariant::Tagged(v) => SerializeTuple::serialize_element(v, value),
        }
    }

    fn end(self) -> Result<Content, E> {
        match self {
            MaybeVariant::Plain(inner) => SerializeSeq::end(inner),
            MaybeVariant::Tagged(v) => SerializeTuple::end(v),
        }
    }
}

impl<E: ser::Error> SerializeStruct for MaybeVariant<ContentMapSerializer<E>> {
    type Ok = Content;
    type Error = E;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), E> {
        match self {
            MaybeVariant::Plain(inner) => SerializeStruct::serialize_field(inner, key, value),
            MaybeVariant::Tagged(v) => SerializeStruct::serialize_field(v, key, value),
        }
    }

    fn end(self) -> Result<Content, E> {
        match self {
            MaybeVariant::Plain(inner) => SerializeStruct::end(inner),
            MaybeVariant::Tagged(v) => SerializeStruct::end(v),
        }
    }
}

impl<E: ser::Error> Serializer for ContentSerializer<E> {
    type Ok = Content;
    type Error = E;
    type SerializeSeq = ContentSeqSerializer<E>;
    type SerializeTuple = MaybeVariant<ContentSeqSerializer<E>>;
    type SerializeMap = ContentMapSerializer<E>;
    type SerializeStruct = MaybeVariant<ContentMapSerializer<E>>;

    fn serialize_bool(self, v: bool) -> Result<Content, E> {
        Ok(Content::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Content, E> {
        Ok(if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) })
    }

    fn serialize_u64(self, v: u64) -> Result<Content, E> {
        Ok(Content::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Content, E> {
        Ok(Content::F64(v))
    }

    fn serialize_str(self, v: &str) -> Result<Content, E> {
        Ok(Content::Str(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Content, E> {
        Ok(Content::Null)
    }

    fn serialize_none(self) -> Result<Content, E> {
        Ok(Content::Null)
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Content, E> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Content, E> {
        Ok(Content::Str(variant.to_owned()))
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, E> {
        let inner = value.serialize(ContentSerializer::new())?;
        Ok(Content::Map(vec![(Content::Str(variant.to_owned()), inner)]))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, E> {
        Ok(ContentSeqSerializer {
            items: Vec::with_capacity(len.unwrap_or(0)),
            marker: PhantomData,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, E> {
        Ok(MaybeVariant::Plain(ContentSeqSerializer {
            items: Vec::with_capacity(len),
            marker: PhantomData,
        }))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTuple, E> {
        Ok(MaybeVariant::Tagged(VariantSerializer {
            variant,
            inner: ContentSeqSerializer { items: Vec::with_capacity(len), marker: PhantomData },
        }))
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, E> {
        Ok(ContentMapSerializer {
            entries: Vec::with_capacity(len.unwrap_or(0)),
            marker: PhantomData,
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Self::SerializeStruct, E> {
        Ok(MaybeVariant::Plain(ContentMapSerializer {
            entries: Vec::with_capacity(len),
            marker: PhantomData,
        }))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, E> {
        Ok(MaybeVariant::Tagged(VariantSerializer {
            variant,
            inner: ContentMapSerializer { entries: Vec::with_capacity(len), marker: PhantomData },
        }))
    }
}

/// Serializes a `T` into a [`Content`] tree.
pub fn to_content<T: ?Sized + Serialize, E: ser::Error>(value: &T) -> Result<Content, E> {
    value.serialize(ContentSerializer::new())
}
