//! Range-scan extension experiment (not a paper exhibit).
//!
//! The paper's related-work section argues tree indexes earn their keep on
//! range queries (§V); its evaluation nevertheless uses point operations
//! only. This experiment adds range scans to the mix (a share of reads
//! becomes a 10–100-key scan) and compares the engines: scans multiply the
//! node fetches per operation, which stresses exactly the mechanisms DCART
//! adds (coalesced traversal, on-chip residency).

use std::path::Path;

use dcart_workloads::{Mix, Workload};
use serde::{Deserialize, Serialize};

use crate::matrix::run_engine;
use crate::{write_report, Scale, Table};

/// One engine × scan-share measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanPoint {
    /// Engine name.
    pub engine: String,
    /// Fraction of reads that are scans.
    pub scan_share: f64,
    /// Runtime in seconds.
    pub time_s: f64,
    /// Throughput in Mops/s.
    pub throughput_mops: f64,
    /// Nodes fetched per operation.
    pub visits_per_op: f64,
}

/// Full scan-extension report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanReport {
    /// All measurements.
    pub points: Vec<ScanPoint>,
}

/// Runs the scan sweep on IPGEO and writes `scans.json`.
pub fn run(scale: &Scale, out_dir: &Path) -> ScanReport {
    println!("== Extension: range scans in the mix (IPGEO, base mix C) ==");
    let mut points = Vec::new();
    let mut t = Table::new(&["engine", "scan share %", "time s", "Mops/s", "visits/op"]);
    for engine in ["ART", "SMART", "DCART"] {
        for share in [0.0f64, 0.1, 0.3] {
            let mix = Mix::C.with_scans(share);
            let r = run_engine(engine, Workload::Ipgeo, scale, mix);
            let p = ScanPoint {
                engine: engine.to_string(),
                scan_share: share,
                time_s: r.time_s,
                throughput_mops: r.throughput_mops(),
                visits_per_op: r.counters.nodes_traversed as f64 / r.counters.ops.max(1) as f64,
            };
            t.row(&[
                engine.to_string(),
                format!("{:.0}", share * 100.0),
                format!("{:.5}", p.time_s),
                format!("{:.2}", p.throughput_mops),
                format!("{:.2}", p.visits_per_op),
            ]);
            points.push(p);
        }
    }
    t.print();
    println!("(extension beyond the paper: its mixes are point ops only)\n");
    let report = ScanReport { points };
    write_report(out_dir, "scans", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_amplify_visits_and_dcart_still_wins() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-scans-test");
        let r = run(&scale, &tmp);
        let get = |e: &str, share: f64| {
            r.points.iter().find(|p| p.engine == e && (p.scan_share - share).abs() < 1e-9).unwrap()
        };
        // Scans multiply per-op node fetches on the operation-centric ART.
        assert!(get("ART", 0.3).visits_per_op > 2.0 * get("ART", 0.0).visits_per_op);
        // Scans cost every engine time.
        for e in ["ART", "SMART", "DCART"] {
            assert!(get(e, 0.3).time_s > get(e, 0.0).time_s, "{e}");
        }
        // DCART keeps a healthy lead even at 30 % scans.
        let speedup = get("SMART", 0.3).time_s / get("DCART", 0.3).time_s;
        assert!(speedup > 5.0, "DCART vs SMART with scans: {speedup}");
    }
}
