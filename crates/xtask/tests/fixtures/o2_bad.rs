//! Known-bad: the durable-ack protocol acknowledges before the fsync
//! commit. Analyzed as if it were `crates/server/src/core_loop.rs`, the
//! one place the `durable-ack` automaton is armed.

pub fn serve_one(&mut self, batch: Batch) -> Response {
    self.writer.append_batch(&batch);
    let outcome = execute_batch(&mut self.engine, &batch);
    // Acknowledging here hands the client a durability promise the WAL
    // has not yet fsynced — exactly the reorder O2 exists to catch.
    let resp = Response::ok(outcome);
    self.writer.commit();
    resp
}
