//! Slab arena giving every tree node a stable integer address.
//!
//! The simulation layers treat [`NodeId`](crate::NodeId) as the node's
//! memory address: traces, cache models, and the shortcut table all key on
//! it. Storing nodes in a slab (rather than `Box`-per-node) gives ids that
//! stay valid across node *growth* — an N4 that becomes an N16 keeps its id,
//! mirroring an in-place reallocation — which matters for shortcut validity.

use crate::node::{Node, NodeId};

#[derive(Clone, Debug)]
pub(crate) struct Arena<V> {
    slots: Vec<Option<Node<V>>>,
    free: Vec<u32>,
}

impl<V> Arena<V> {
    pub(crate) fn new() -> Self {
        Arena { slots: Vec::new(), free: Vec::new() }
    }

    /// Number of live nodes.
    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    pub(crate) fn alloc(&mut self, node: Node<V>) -> NodeId {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(node);
            NodeId(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 capacity");
            self.slots.push(Some(node));
            NodeId(idx)
        }
    }

    /// Frees a node, returning it. Its id may be reused by later allocations.
    pub(crate) fn free(&mut self, id: NodeId) -> Node<V> {
        let node = self.slots[id.0 as usize].take().expect("double free of node");
        self.free.push(id.0);
        node
    }

    pub(crate) fn get(&self, id: NodeId) -> &Node<V> {
        self.slots[id.0 as usize].as_ref().expect("dangling node id")
    }

    pub(crate) fn get_mut(&mut self, id: NodeId) -> &mut Node<V> {
        self.slots[id.0 as usize].as_mut().expect("dangling node id")
    }

    /// Best-effort prefetch of a node into cache ahead of its `get`.
    ///
    /// Used by the traversal loops to overlap the next level's memory
    /// latency with the current node's search; a hint only, so an invalid
    /// id is silently ignored.
    #[inline]
    pub(crate) fn prefetch(&self, id: NodeId) {
        if let Some(Some(node)) = self.slots.get(id.0 as usize) {
            crate::simd::prefetch(node);
        }
    }

    /// Checked lookup for externally supplied (possibly stale) ids, e.g.
    /// shortcut-table entries.
    pub(crate) fn try_get(&self, id: NodeId) -> Option<&Node<V>> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Iterates `(id, node)` over all live nodes.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<V>)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|n| (NodeId(i as u32), n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key;

    fn leaf(v: u32) -> Node<u32> {
        Node::Leaf { key: Key::from_u32(v), value: v }
    }

    #[test]
    fn alloc_free_reuses_slots() {
        let mut a: Arena<u32> = Arena::new();
        let n1 = a.alloc(leaf(1));
        let n2 = a.alloc(leaf(2));
        assert_ne!(n1, n2);
        assert_eq!(a.len(), 2);
        a.free(n1);
        assert_eq!(a.len(), 1);
        assert!(a.try_get(n1).is_none());
        let n3 = a.alloc(leaf(3));
        assert_eq!(n3, n1, "freed slot is reused");
        assert_eq!(a.len(), 2);
        match a.get(n3) {
            Node::Leaf { value, .. } => assert_eq!(*value, 3),
            Node::Inner(_) => panic!("expected leaf"),
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a: Arena<u32> = Arena::new();
        let n = a.alloc(leaf(1));
        a.free(n);
        a.free(n);
    }

    #[test]
    fn iter_skips_freed() {
        let mut a: Arena<u32> = Arena::new();
        let n1 = a.alloc(leaf(1));
        let _n2 = a.alloc(leaf(2));
        a.free(n1);
        let ids: Vec<NodeId> = a.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(1)]);
    }
}
