//! # dcart — a data-centric accelerator model for the Adaptive Radix Tree
//!
//! Reproduction of *"A Data-Centric Hardware Accelerator for Efficient
//! Adaptive Radix Tree"* (DAC 2025). DCART observes that concurrent index
//! operations exhibit strong temporal and spatial similarity — the same ART
//! nodes are touched by many operations within short intervals — and builds
//! a **Combine–Traverse–Trigger** (CTT) processing model around it:
//!
//! * a [PCU](pcu) combines operations into disjoint prefix buckets;
//! * a [Dispatcher](dispatcher::Dispatch) assigns each bucket to one of 16
//!   SOU pipelines ([`DcartAccel`]), so same-node operations never contend;
//! * a [`ShortcutTable`] caches resolved `<key, target, parent>` triples so
//!   hot operations skip traversal entirely;
//! * a value-aware Tree buffer keeps frequently traversed nodes on chip.
//!
//! Two engines implement the model over the same functional core
//! ([`execute_ctt`]): [`DcartSoftware`] (the paper's DCART-C CPU version,
//! charged its runtime overheads) and [`DcartAccel`] (the 230 MHz FPGA
//! accelerator, modelled cycle-level).
//!
//! # Examples
//!
//! ```
//! use dcart::{DcartAccel, DcartConfig};
//! use dcart_baselines::{IndexEngine, RunConfig};
//! use dcart_workloads::{generate_ops, OpStreamConfig, Workload};
//!
//! let keys = Workload::Ipgeo.generate(10_000, 42);
//! let ops = generate_ops(&keys, &OpStreamConfig { count: 20_000, ..Default::default() });
//! let mut dcart = DcartAccel::new(DcartConfig::default().scaled_for_keys(10_000));
//! let report = dcart.run(&keys, &ops, &RunConfig::default());
//! assert!(report.throughput_mops() > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code must not abort under malformed input or injected faults:
// fallible paths return `Result`s, and intentional invariant panics need an
// explicit, justified `allow`. Test code (cfg(test)) is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod accel;
mod config;
mod ctt;
pub mod dispatcher;
pub mod durable;
mod error;
pub mod fxhash;
pub mod pcu;
mod shortcut;
mod software;

pub use accel::{AccelDetails, BatchTiming, DcartAccel};
pub use config::{DcartConfig, DegradeConfig};
pub use ctt::{
    execute_ctt, execute_ctt_threaded, execute_ctt_with, fold_digest, key_id, set_sou_threads,
    set_split_threshold, set_traverse_mode, set_work_stealing, sou_threads, split_threshold,
    traverse_mode, tree_digest, try_execute_ctt, try_execute_ctt_profiled, try_execute_ctt_resumed,
    try_execute_ctt_threaded, try_execute_ctt_with, work_stealing, BatchEvent, BucketLoad,
    CttConsumer, CttOpEvent, CttSession, CttStats, ExecOpts, LoadReport, LockGroup, TraverseMode,
    MERGE_PATIENCE, SPLIT_FANOUT,
};
pub use dcart_engine::{CrashInjector, CrashPlan, CrashSite, FaultPlan, RecoveryStats, WalError};
pub use dcart_mem::PersistStats;
pub use durable::{
    read_checkpoint, recover, run_durable, write_checkpoint, DurabilityConfig, DurableOutcome,
    RecoveredState,
};
pub use error::DcartError;
pub use shortcut::{ShortcutEntry, ShortcutStats, ShortcutTable, ENTRY_BYTES};
pub use software::{DcartSoftware, SoftwareOverheads};
