//! DCART-C: the software-only implementation of the CTT model on the CPU
//! (paper §IV-A, "the CPU version ... is called DCART-C").
//!
//! DCART-C enjoys the model's algorithmic savings — coalesced traversals,
//! shortcuts, grouped locks — but pays for them in software:
//!
//! * every operation is scanned, hashed, and appended to a bucket table at
//!   runtime, and shortcuts are maintained on the fly (charged per event);
//! * a bucket must be processed *in order* by one worker, so the hottest
//!   bucket of every batch is a serial chain that no core count can hide;
//! * tree traversal remains branchy and irregular on a general-purpose
//!   pipeline, and each bucket worker chases pointers serially (one miss
//!   at a time), where the 96 independent threads of an operation-centric
//!   baseline overlap their misses.
//!
//! The net effect reproduces Fig. 9: DCART-C only modestly outperforms the
//! best baselines, while the hardware DCART runs away with it.

use dcart_baselines::{
    ContentionWindow, Counters, CpuConfig, IndexEngine, RedundancyWindow, RunConfig, RunReport,
    TimeBreakdown,
};
use dcart_engine::LatencyRecorder;
use dcart_mem::{Access, EnergyModel, SetAssocCache};
use dcart_workloads::{KeySet, Op, OpKind};
use serde::{Deserialize, Serialize};

use crate::config::DcartConfig;
use crate::ctt::{execute_ctt, BatchEvent, CttConsumer, CttOpEvent, LockGroup};

/// Software overhead costs of the CTT runtime on a CPU, in nanoseconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SoftwareOverheads {
    /// Scan + prefix hash + bucket-table append, per operation. The
    /// append lands at a random offset of one of 16 MB-scale bucket
    /// tables, so it usually costs a DRAM miss on top of the hash — the
    /// software combiner suffers the very locality problem the hardware
    /// buffers solve (paper §II-C Challenges).
    pub combine_ns: f64,
    /// Shortcut-table probe, per read/update.
    pub probe_ns: f64,
    /// Shortcut generation/update, per traversal.
    pub generate_ns: f64,
    /// Batch setup/teardown (allocation, dispatch), per batch.
    pub batch_ns: f64,
}

impl Default for SoftwareOverheads {
    fn default() -> Self {
        SoftwareOverheads {
            combine_ns: 110.0,
            probe_ns: 45.0,
            generate_ns: 90.0,
            batch_ns: 4_000.0,
        }
    }
}

/// The DCART-C engine.
///
/// # Examples
///
/// ```
/// use dcart::{DcartConfig, DcartSoftware};
/// use dcart_baselines::{CpuConfig, IndexEngine, RunConfig};
/// use dcart_workloads::{generate_ops, OpStreamConfig, Workload};
///
/// let keys = Workload::Ipgeo.generate(2_000, 1);
/// let ops = generate_ops(&keys, &OpStreamConfig { count: 5_000, ..Default::default() });
/// let cpu = CpuConfig::xeon_8468().scaled_for_keys(2_000);
/// let cfg = DcartConfig::default().scaled_for_keys(2_000).with_auto_prefix_skip(&keys);
/// let report = DcartSoftware::new(cfg, cpu).run(&keys, &ops, &RunConfig::default());
/// // The software CTT pays a visible combining cost (paper Fig. 9).
/// assert!(report.breakdown.combine_s > 0.0);
/// ```
#[derive(Debug)]
pub struct DcartSoftware {
    dcart: DcartConfig,
    cpu: CpuConfig,
    overheads: SoftwareOverheads,
}

impl DcartSoftware {
    /// Creates DCART-C with the given DCART and CPU configurations.
    pub fn new(dcart: DcartConfig, cpu: CpuConfig) -> Self {
        DcartSoftware { dcart, cpu, overheads: SoftwareOverheads::default() }
    }

    /// Overrides the software overhead model.
    pub fn with_overheads(mut self, overheads: SoftwareOverheads) -> Self {
        self.overheads = overheads;
        self
    }
}

/// Per-component nanosecond totals (for the time breakdown).
#[derive(Clone, Copy, Default, Debug)]
struct NsTotals {
    traversal: f64,
    sync: f64,
    combine: f64,
    other: f64,
}

impl NsTotals {
    fn total(&self) -> f64 {
        self.traversal + self.sync + self.combine + self.other
    }
}

struct SoftwareConsumer {
    cpu: CpuConfig,
    overheads: SoftwareOverheads,
    cache: SetAssocCache,
    redundancy: RedundancyWindow,
    contention: ContentionWindow,
    counters: Counters,
    ns: NsTotals,
    /// Work accumulated per bucket within the current batch.
    bucket_ns: Vec<f64>,
    /// Serial chain: sum over batches of the hottest bucket's time.
    serial_chain_ns: f64,
    /// The software PCU: combining scans operations *sequentially* (the
    /// bucket append is order-sensitive), so this chain is single-threaded
    /// no matter the core count — the paper's "expensive runtime cost to
    /// dynamically coalesce the operations" (§II-C Challenges).
    combine_serial_ns: f64,
    batch_durations: LatencyRecorder,
    line_hits: u64,
    line_misses: u64,
}

impl SoftwareConsumer {
    fn charge(&mut self, bucket: usize, ns: f64, component: fn(&mut NsTotals) -> &mut f64) {
        *component(&mut self.ns) += ns;
        self.bucket_ns[bucket] += ns;
    }
}

impl CttConsumer for SoftwareConsumer {
    fn batch_start(&mut self, ev: &BatchEvent<'_>) {
        // Reuse the per-bucket accumulator across batches (the executor
        // only lends us `bucket_sizes` for the callback's duration anyway).
        self.bucket_ns.resize(ev.bucket_sizes.len(), 0.0);
        self.bucket_ns.iter_mut().for_each(|ns| *ns = 0.0);
        self.ns.combine += self.overheads.batch_ns;
        self.combine_serial_ns += self.overheads.batch_ns;
        // The scan/hash/append of every operation in the batch happens on
        // the combining thread before buckets dispatch.
        let ops: u32 = ev.bucket_sizes.iter().sum();
        let scan_ns = f64::from(ops) * self.overheads.combine_ns;
        self.ns.combine += scan_ns;
        self.combine_serial_ns += scan_ns;
    }

    fn op(&mut self, ev: &CttOpEvent<'_>) {
        self.counters.ops += 1;
        if ev.kind.is_write() {
            self.counters.writes += 1;
        } else {
            self.counters.reads += 1;
        }

        // Traversal: a bucket worker chases pointers serially — every miss
        // costs the full memory latency.
        let mut trav = 0.0;
        for v in ev.visits {
            self.counters.nodes_traversed += 1;
            self.counters.useful_bytes += u64::from(v.useful_bytes);
            self.counters.fetched_bytes += u64::from(v.lines) * 64;
            let base = u64::from(v.node.index()) * 256;
            for i in 0..u64::from(v.lines) {
                match self.cache.access(base + i * 64) {
                    Access::Hit => {
                        self.line_hits += 1;
                        trav += self.cpu.hit_ns;
                    }
                    Access::Miss => {
                        self.line_misses += 1;
                        trav += self.cpu.mem.latency_ns;
                    }
                }
            }
        }
        trav += ev.matches as f64 * self.cpu.match_ns;
        self.redundancy.record_op(ev.visits.iter().map(|v| v.node));
        self.counters.partial_key_matches += ev.matches;
        if ev.shortcut_hit {
            self.counters.shortcut_hits += 1;
        } else {
            self.counters.shortcut_misses += 1;
        }
        self.charge(ev.bucket, trav, |n| &mut n.traversal);

        // Shortcut maintenance runs in the bucket workers.
        let mut combine = 0.0;
        if matches!(ev.kind, OpKind::Read | OpKind::Update) {
            combine += self.overheads.probe_ns;
        }
        if ev.generated_shortcut {
            combine += self.overheads.generate_ns;
        }
        self.charge(ev.bucket, combine, |n| &mut n.combine);
        self.charge(ev.bucket, self.cpu.op_overhead_ns, |n| &mut n.other);
    }

    fn lock_group(&mut self, group: &LockGroup) {
        // One CAS per coalesced group, taken by the bucket's worker.
        self.counters.lock_acquisitions += 1;
        self.contention.record_unit([group.node]);
        self.charge(group.bucket, self.cpu.atomic_cached_ns, |n| &mut n.sync);
    }

    fn batch_end(&mut self, _index: usize) {
        // A batch is the concurrency window: cross-bucket collisions within
        // it are real, across batches they are not.
        self.contention.end_window();
        let max = self.bucket_ns.iter().copied().fold(0.0f64, f64::max);
        self.serial_chain_ns += max;
        self.batch_durations.record(max / 1e3);
    }
}

impl IndexEngine for DcartSoftware {
    fn name(&self) -> &'static str {
        "DCART-C"
    }

    fn run(&mut self, keys: &KeySet, ops: &[Op], run: &RunConfig) -> RunReport {
        let mut consumer = SoftwareConsumer {
            cpu: self.cpu,
            overheads: self.overheads,
            cache: SetAssocCache::new(self.cpu.cache_bytes, self.cpu.cache_ways),
            redundancy: RedundancyWindow::new(run.concurrency),
            contention: ContentionWindow::new(usize::MAX >> 1),
            counters: Counters::default(),
            ns: NsTotals::default(),
            bucket_ns: Vec::new(),
            serial_chain_ns: 0.0,
            combine_serial_ns: 0.0,
            batch_durations: LatencyRecorder::new(),
            line_hits: 0,
            line_misses: 0,
        };
        let (_tree, stats) = execute_ctt(keys, ops, &self.dcart, run.concurrency, &mut consumer);

        let mut counters = consumer.counters;
        counters.redundant_node_visits = consumer.redundancy.redundant_visits;
        let (totals, _history) = consumer.contention.finish();
        counters.lock_contentions = totals.contentions + stats.shortcut_hash_collisions;
        counters.offchip_accesses = consumer.line_misses;
        counters.offchip_bytes = consumer.line_misses * 64;
        counters.cache_hits = consumer.line_hits;
        counters.cache_misses = consumer.line_misses;
        debug_assert_eq!(stats.ops, counters.ops);

        // Batches pipeline across the core count (combining of batch i+1
        // overlaps operating of batch i in software too), but three serial
        // chains bound the run: the sequential combining scan, the hottest
        // bucket of each batch, and the work spread over all cores.
        let threads = self.cpu.threads as f64;
        let work_ns = consumer.ns.total();
        let total_ns =
            (work_ns / threads).max(consumer.serial_chain_ns).max(consumer.combine_serial_ns);
        let time_s = total_ns * 1e-9;

        // Scale the component totals onto the critical-path time.
        let scale = if work_ns > 0.0 { total_ns / work_ns } else { 0.0 };
        let breakdown = TimeBreakdown {
            traversal_s: consumer.ns.traversal * scale * 1e-9,
            sync_s: consumer.ns.sync * scale * 1e-9,
            combine_s: consumer.ns.combine * scale * 1e-9,
            other_s: consumer.ns.other * scale * 1e-9,
        };

        let energy_j = EnergyModel::cpu_xeon().energy_joules(
            time_s,
            counters.offchip_bytes,
            counters.cache_hits + counters.lock_acquisitions,
        );

        let mut durations = consumer.batch_durations;
        let latency_mean_us = durations.mean();
        let latency_p99_us = durations.percentile(0.99);

        RunReport {
            engine: self.name().to_string(),
            workload: keys.name.clone(),
            counters,
            time_s,
            breakdown,
            energy_j,
            latency_mean_us,
            latency_p99_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcart_baselines::CpuBaseline;
    use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

    fn setup(n_keys: usize, n_ops: usize) -> (KeySet, Vec<Op>, RunConfig) {
        let keys = Workload::Ipgeo.generate(n_keys, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: n_ops, mix: Mix::C, ..Default::default() },
        );
        (keys, ops, RunConfig { concurrency: 4096 })
    }

    #[test]
    fn dcart_c_is_in_the_baselines_ballpark() {
        // Fig. 9: DCART-C "only slightly outperforms" the baselines; at
        // minimum it must be in their ballpark, not an outlier either way.
        let (keys, ops, run) = setup(20_000, 40_000);
        let cpu = CpuConfig::xeon_8468().scaled_for_keys(20_000);
        let dcart_cfg = DcartConfig::default().scaled_for_keys(20_000);
        let dcart_c = DcartSoftware::new(dcart_cfg, cpu).run(&keys, &ops, &run);
        let smart = CpuBaseline::smart(cpu).run(&keys, &ops, &run);
        let speedup = smart.time_s / dcart_c.time_s;
        assert!(
            speedup > 0.5 && speedup < 10.0,
            "DCART-C should be near (ideally modestly above) SMART: {speedup}"
        );
    }

    #[test]
    fn fewer_matches_than_baselines() {
        // Fig. 8 direction: shortcuts cut partial-key matches well below
        // ART's. (The paper's 3–6 % ratio needs the full ops-per-key ratio
        // of paper scale; the calibration integration test checks that.)
        let (keys, ops, run) = setup(20_000, 40_000);
        let cpu = CpuConfig::xeon_8468().scaled_for_keys(20_000);
        let dcart_cfg = DcartConfig::default().scaled_for_keys(20_000);
        let dcart_c = DcartSoftware::new(dcart_cfg, cpu).run(&keys, &ops, &run);
        let art = CpuBaseline::art(cpu).run(&keys, &ops, &run);
        let ratio =
            dcart_c.counters.partial_key_matches as f64 / art.counters.partial_key_matches as f64;
        assert!(ratio < 0.6, "match ratio vs ART: {ratio}");
    }

    #[test]
    fn fewer_contentions_than_baselines() {
        // Fig. 7: DCART's contentions are 3.2–19.7 % of the baselines'.
        let (keys, ops, run) = setup(20_000, 40_000);
        let cpu = CpuConfig::xeon_8468().scaled_for_keys(20_000);
        let dcart_cfg = DcartConfig::default().scaled_for_keys(20_000);
        let dcart_c = DcartSoftware::new(dcart_cfg, cpu).run(&keys, &ops, &run);
        let art = CpuBaseline::art(cpu).run(&keys, &ops, &run);
        assert!(
            dcart_c.counters.lock_contentions * 4 < art.counters.lock_contentions,
            "DCART-C {} vs ART {}",
            dcart_c.counters.lock_contentions,
            art.counters.lock_contentions
        );
    }

    #[test]
    fn combine_time_is_visible() {
        let (keys, ops, run) = setup(5_000, 10_000);
        let cpu = CpuConfig::xeon_8468().scaled_for_keys(5_000);
        let dcart_cfg = DcartConfig::default().scaled_for_keys(5_000);
        let r = DcartSoftware::new(dcart_cfg, cpu).run(&keys, &ops, &run);
        assert!(r.breakdown.combine_s > 0.0);
        assert!(r.counters.shortcut_hits > 0);
        assert!(r.latency_p99_us >= r.latency_mean_us);
    }
}
