//! # xtask — workspace automation for the DCART reproduction
//!
//! The entry point is `cargo run -p xtask -- lint`: a static-analysis pass
//! over every workspace crate enforcing the invariants the reproduction's
//! guarantees rest on but clippy cannot express (see [`rules`] for the
//! rule table). The pass is pure std — the build environment is offline,
//! so instead of `syn` it runs over the surface lexer in [`lexer`], which
//! is precise enough for identifier-level matching with real source spans.
//!
//! The library surface exists so the fixture suite under `tests/` can
//! prove every rule ID fires on a known-bad snippet and stays quiet on a
//! known-good one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{Diagnostic, RULE_IDS};

/// Lints one file's source as if it lived at workspace-relative `path`
/// (the path decides rule scoping: crate name, whitelists, definition
/// sites). Cross-file checks (magic-definition presence, crate-root
/// attributes) are the workspace driver's job.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = lexer::scan(source);
    let ctx = rules::FileCtx::new(path, &lines);
    let mut out = Vec::new();
    rules::d1(&ctx, &mut out);
    rules::d2(&ctx, &mut out);
    rules::p1(&ctx, &mut out);
    rules::f1(&ctx, &mut out);
    rules::o1(&ctx, &mut out);
    out
}

/// Lints the whole workspace rooted at `root`.
///
/// Scans `crates/*/src/**/*.rs` (unit tests inside those files are
/// excluded by the `#[cfg(test)]` region tracker; integration tests,
/// benches and fixtures are not scanned at all), then runs the
/// workspace-level checks:
///
/// * every [`rules::LIB_CRATES`] root carries `#![forbid(unsafe_code)]`
///   — or, for the crate owning a [`rules::UNSAFE_SANCTIONED`] kernel
///   file, `#![deny(unsafe_code)]` (the sanctioned file re-allows it
///   module-locally; `forbid` cannot be overridden, so `deny` is the
///   strongest root attribute compatible with the exception) — and the
///   `deny(clippy::unwrap_used, clippy::panic)` cfg_attr;
/// * every [`rules::F1_MAGICS`] literal is actually defined at its single
///   source of truth.
///
/// Returns diagnostics sorted by (path, line, col) and the number of
/// files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut out = Vec::new();
    let mut magic_defined = vec![false; rules::F1_MAGICS.len()];
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = rel_path(root, file);
        out.extend(lint_source(&rel, &source));
        for (k, (magic, def)) in rules::F1_MAGICS.iter().enumerate() {
            if rel == *def && source.contains(magic) {
                magic_defined[k] = true;
            }
        }
    }

    for (k, (magic, def)) in rules::F1_MAGICS.iter().enumerate() {
        if !magic_defined[k] {
            out.push(Diagnostic {
                path: def.to_string(),
                line: 1,
                col: 1,
                rule: "F1",
                msg: format!("magic `{magic}` is not defined at its single source of truth"),
                help: format!("define the `{magic}` header constant in `{def}` (or update the F1 table in crates/xtask/src/rules.rs if the module moved)"),
            });
        }
    }

    for name in rules::LIB_CRATES {
        let rel = format!("crates/{name}/src/lib.rs");
        let lib = root.join(&rel);
        let source = std::fs::read_to_string(&lib)?;
        let lines = lexer::scan(&source);
        let code: String =
            lines.iter().flat_map(|l| l.code.chars().filter(|c| !c.is_whitespace())).collect();
        let owns_sanctioned =
            rules::UNSAFE_SANCTIONED.iter().any(|p| p.starts_with(&format!("crates/{name}/src/")));
        if owns_sanctioned {
            if !code.contains("#![deny(unsafe_code)]") {
                out.push(root_diag(
                    &rel,
                    "missing `#![deny(unsafe_code)]` on the crate root (this crate owns a \
                     sanctioned unsafe kernel file, so the root downgrades forbid to deny and \
                     the kernel module carries the reviewed `#![allow(unsafe_code)]`)",
                ));
            }
        } else if !code.contains("#![forbid(unsafe_code)]") {
            out.push(root_diag(&rel, "missing `#![forbid(unsafe_code)]` on the crate root"));
        }
        if !(code.contains("clippy::unwrap_used") && code.contains("clippy::panic")) {
            out.push(root_diag(
                &rel,
                "missing `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]` on the crate root",
            ));
        }
    }

    out.sort();
    Ok((out, files.len()))
}

fn root_diag(rel: &str, msg: &str) -> Diagnostic {
    Diagnostic {
        path: rel.to_string(),
        line: 1,
        col: 1,
        rule: "P1",
        msg: msg.to_string(),
        help: "every library crate root pins the unsafe/panic policy; copy the attribute \
               block from crates/core/src/lib.rs"
            .to_string(),
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // Fixture snippets are data for the lint's own tests, not code.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_snippet_produces_no_diagnostics() {
        let src = "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_render_with_spans() {
        let d = &lint_source("crates/core/src/x.rs", "use std::collections::HashMap;\n")[0];
        assert_eq!((d.rule, d.line, d.col), ("D1", 1, 23));
        let shown = d.to_string();
        assert!(shown.contains("error[D1]") && shown.contains("crates/core/src/x.rs:1:23"));
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let _: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_markers_silence_one_line() {
        let src = "// dcart_lint::allow(D1) -- interned keys, order never observed\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn workspace_lint_is_clean() {
        // The repo must lint clean at all times — this is the same check CI
        // runs, pulled into the unit suite so `cargo test` catches drift.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (diags, files) = lint_workspace(&root).expect("workspace readable");
        assert!(files > 50, "expected to scan the whole workspace, got {files} files");
        assert!(
            diags.is_empty(),
            "dcart-lint found {} violation(s):\n{}",
            diags.len(),
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
