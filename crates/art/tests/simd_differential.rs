//! Exhaustive differential tests for the `simd` kernels: the compile-time
//! selected implementation (SSE2/NEON or fallback), the portable SWAR
//! path, and a naive scalar reference must agree on *every* input the node
//! layouts can produce — every occupancy 0..=capacity and all 256 byte
//! values. CI runs this file twice: once on the vector path and once under
//! `--features force-swar`.

use dcart_art::simd;

/// Naive scalar ground truth for the N16 lane search.
fn search16_naive(keys: &[u8; 16], len: usize, byte: u8) -> Option<usize> {
    keys[..len].iter().position(|&k| k == byte)
}

/// Naive scalar ground truth for the N48 occupancy bitmap.
fn present_naive(index: &[u8; 256], absent: u8) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (i, &b) in index.iter().enumerate() {
        if b != absent {
            out[i >> 6] |= 1 << (i & 63);
        }
    }
    out
}

/// N16 search: every occupancy 0..=16, every probe byte 0..=255, across
/// several sorted-unique key-set shapes (phases × strides, as a real Node16
/// maintains) with adversarial garbage in the stale lanes.
#[test]
fn n16_search_simd_swar_scalar_agree_exhaustively() {
    let mut cases = 0u64;
    for phase in [0u16, 1, 7, 127, 128, 200, 240] {
        for stride in [1u16, 2, 3, 15, 16, 17] {
            for len in 0..=16usize {
                let mut keys = [0u8; 16];
                for (i, slot) in keys.iter_mut().enumerate().take(len) {
                    *slot = (phase + stride * i as u16).min(255) as u8;
                }
                let live = &mut keys[..len];
                live.sort_unstable();
                if live.windows(2).any(|w| w[0] == w[1]) {
                    continue; // Node16 keys are unique; skip collapsed sets
                }
                // Stale lanes hold bytes that *do* occur in live lanes
                // elsewhere — the nastiest case for masking bugs.
                for (j, slot) in keys.iter_mut().enumerate().skip(len) {
                    *slot = [0x00, 0xFF, 0x80, phase.min(255) as u8][j % 4];
                }
                for probe in 0..=255u8 {
                    let want = search16_naive(&keys, len, probe);
                    assert_eq!(
                        simd::search16(&keys, len, probe),
                        want,
                        "simd: len={len} phase={phase} stride={stride} probe={probe:#04x} keys={keys:?}"
                    );
                    assert_eq!(
                        simd::search16_swar(&keys, len, probe),
                        want,
                        "swar: len={len} phase={phase} stride={stride} probe={probe:#04x} keys={keys:?}"
                    );
                    cases += 1;
                }
            }
        }
    }
    assert!(cases > 100_000, "sweep collapsed to {cases} cases");
}

/// N48 occupancy bitmap: every occupancy 0..=48 under three fill orders
/// (ascending, descending, strided — exercising every index byte 0..=255
/// and both word-boundary edges), plus sparse single-bit maps at all 256
/// positions.
#[test]
fn n48_present_bitmap_simd_scalar_agree_exhaustively() {
    const ABSENT: u8 = 0xFF;
    let orders: [Vec<u8>; 3] = [
        (0..=255u8).collect(),
        (0..=255u8).rev().collect(),
        (0..=255u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect(),
    ];
    for order in &orders {
        let mut index = [ABSENT; 256];
        // Occupancy 0 first, then grow one slot at a time to 48.
        for occ in 0..=48usize {
            if occ > 0 {
                index[usize::from(order[occ - 1])] = (occ - 1) as u8;
            }
            let want = present_naive(&index, ABSENT);
            assert_eq!(simd::present_bitmap(&index, ABSENT), want, "occ={occ}");
            assert_eq!(simd::present_bitmap_scalar(&index, ABSENT), want, "occ={occ}");
            let ones: u32 = want.iter().map(|w| w.count_ones()).sum();
            assert_eq!(ones as usize, occ);
        }
    }
    // Every single-bit position, with a non-0xFF sentinel too (the kernel
    // is generic over the absent byte).
    for absent in [0xFFu8, 0x00] {
        for pos in 0..256usize {
            let mut index = [absent; 256];
            index[pos] = absent.wrapping_add(1);
            let want = present_naive(&index, absent);
            assert_eq!(simd::present_bitmap(&index, absent), want, "pos={pos} absent={absent}");
            assert_eq!(simd::present_bitmap_scalar(&index, absent), want);
        }
    }
}

/// Prefix comparison: every (length, mismatch position) pair up to beyond
/// two vector strides, both kernels against the iterator-zip ground truth.
#[test]
fn common_prefix_simd_swar_scalar_agree_exhaustively() {
    for n in 0..=64usize {
        let a: Vec<u8> = (0..n as u8).map(|i| i.wrapping_mul(29).wrapping_add(3)).collect();
        for pos in 0..=n {
            let mut b = a.clone();
            if pos < n {
                b[pos] = b[pos].wrapping_add(1);
            }
            let want = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
            assert_eq!(want, pos.min(n));
            assert_eq!(simd::common_prefix_len(&a, &b), want, "n={n} pos={pos}");
            assert_eq!(simd::common_prefix_len_swar(&a, &b), want, "n={n} pos={pos}");
            // Length asymmetry clamps to the shorter slice, both ways.
            assert_eq!(simd::common_prefix_len(&a, &b[..pos.min(n)]), pos.min(n));
            assert_eq!(simd::common_prefix_len(&b[..pos.min(n)], &a), pos.min(n));
        }
    }
}
