//! Traversal tracing: the instrumentation interface between the functional
//! ART and the platform simulators.
//!
//! Every traced tree operation reports, through a [`Tracer`]:
//!
//! * each **node visit** with its footprint, the cache lines the access
//!   touches, and how many of the fetched bytes were actually useful
//!   (paper Fig. 2(c) measures exactly this ratio);
//! * the number of **partial-key matches** performed (Fig. 8);
//! * each **write lock** a ROWEX-style implementation would take (Fig. 7),
//!   including the extra parent lock on a node-type change (paper §II-A);
//! * the resolved **target/parent** node pair — the payload of a DCART
//!   shortcut entry (paper §III-C).

use crate::node::{NodeId, NodeType};

/// What kind of node a visit touched.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum VisitKind {
    /// An inner node of the given adaptive layout.
    Inner(NodeType),
    /// A leaf node.
    Leaf,
}

/// One node access during a traversal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct NodeVisit {
    /// The node's stable arena address.
    pub node: NodeId,
    /// Leaf or inner (with layout).
    pub kind: VisitKind,
    /// Total in-memory size of the node in bytes.
    pub footprint: u32,
    /// Number of 64-byte cache lines the access touches on a cache-miss
    /// path: header/prefix plus only the slots the lookup actually reads.
    pub lines: u32,
    /// Bytes of the fetched lines that the operation actually consumed
    /// (prefix bytes compared + key byte + child pointer).
    pub useful_bytes: u32,
}

/// Observer for traced tree operations.
///
/// All methods have empty default bodies, so a tracer only overrides what it
/// needs. [`NoopTracer`] implements nothing and compiles away entirely.
pub trait Tracer {
    /// A node was fetched and examined.
    fn visit(&mut self, visit: NodeVisit) {
        let _ = visit;
    }

    /// `count` partial-key comparisons were performed (prefix bytes plus
    /// child-slot searches).
    fn partial_key_matches(&mut self, count: u32) {
        let _ = count;
    }

    /// A ROWEX-style implementation would write-lock `node` here.
    fn lock(&mut self, node: NodeId) {
        let _ = node;
    }

    /// `node` changed adaptive layout (e.g. N4 → N16), which additionally
    /// requires locking its parent under ROWEX and invalidates shortcuts.
    fn node_type_change(&mut self, node: NodeId, from: NodeType, to: NodeType) {
        let _ = (node, from, to);
    }

    /// The operation resolved to `target` (the leaf it read/wrote, or the
    /// inner node that gained a child) with the given parent.
    fn target(&mut self, target: NodeId, parent: Option<NodeId>) {
        let _ = (target, parent);
    }
}

/// A tracer that records nothing; the zero-cost default.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// A tracer that records everything into an [`OpTrace`], reusable across
/// operations via [`OpTrace::clear`].
#[derive(Clone, Default, Debug)]
pub struct RecordingTracer {
    /// The accumulated trace.
    pub trace: OpTrace,
}

impl RecordingTracer {
    /// Creates an empty recording tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the accumulated trace so the tracer can be reused.
    pub fn clear(&mut self) {
        self.trace.clear();
    }
}

impl Tracer for RecordingTracer {
    fn visit(&mut self, visit: NodeVisit) {
        self.trace.visits.push(visit);
    }

    fn partial_key_matches(&mut self, count: u32) {
        self.trace.partial_key_matches += u64::from(count);
    }

    fn lock(&mut self, node: NodeId) {
        self.trace.locks.push(node);
    }

    fn node_type_change(&mut self, node: NodeId, from: NodeType, to: NodeType) {
        self.trace.type_changes.push((node, from, to));
    }

    fn target(&mut self, target: NodeId, parent: Option<NodeId>) {
        self.trace.target = Some(target);
        self.trace.parent = parent;
    }
}

/// Complete record of a single traced operation.
#[derive(Clone, Default, Debug, serde::Serialize, serde::Deserialize)]
pub struct OpTrace {
    /// Every node fetched, in traversal order.
    pub visits: Vec<NodeVisit>,
    /// Total partial-key comparisons.
    pub partial_key_matches: u64,
    /// Nodes a lock-based implementation would write-lock.
    pub locks: Vec<NodeId>,
    /// Adaptive-layout transitions triggered by the operation.
    pub type_changes: Vec<(NodeId, NodeType, NodeType)>,
    /// Resolved target node.
    pub target: Option<NodeId>,
    /// Parent of the target node.
    pub parent: Option<NodeId>,
}

impl OpTrace {
    /// Resets the trace for reuse without deallocating.
    pub fn clear(&mut self) {
        self.visits.clear();
        self.partial_key_matches = 0;
        self.locks.clear();
        self.type_changes.clear();
        self.target = None;
        self.parent = None;
    }

    /// Total bytes fetched across all visits (footprint-weighted).
    pub fn bytes_fetched(&self) -> u64 {
        self.visits.iter().map(|v| u64::from(v.lines) * 64).sum()
    }

    /// Total useful bytes across all visits.
    pub fn bytes_useful(&self) -> u64 {
        self.visits.iter().map(|v| u64::from(v.useful_bytes)).sum()
    }

    /// Traversal depth (number of nodes fetched).
    pub fn depth(&self) -> usize {
        self.visits.len()
    }
}
