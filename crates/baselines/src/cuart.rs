//! CuART: the GPU baseline (Koppehel et al., ICPP'21), modelled as a
//! SIMT batch lookup/update engine on an A100.
//!
//! CuART ships operation batches to the GPU, where warps of 32 lanes
//! traverse the radix tree in lock step. The model reproduces the three
//! effects that decide where CuART lands in the paper's comparison:
//!
//! * **warp divergence** — a warp's traversal takes as many memory steps as
//!   its *deepest* lane; shallow lanes idle (variable ART depths hurt);
//! * **cooperative matching** — all key slots of a node are compared by the
//!   warp in parallel, so the partial-key-match count is one per node
//!   visit, well below a CPU's byte-serial matching (Fig. 8 shows CuART
//!   between the CPU baselines and DCART);
//! * **batch overheads** — each batch pays a kernel launch and PCIe
//!   transfer, so small batches are latency-poor (Fig. 10).
//!
//! Updates use global-memory atomics; colliding lanes serialize, which the
//! same window model as the CPU engines captures.

use dcart_engine::LatencyRecorder;
use dcart_mem::{Access, EnergyModel, MemoryConfig, SetAssocCache};
use dcart_workloads::{KeySet, Op};
use serde::{Deserialize, Serialize};

use crate::engine::{IndexEngine, RunConfig};
use crate::exec::execute_with_traces;
use crate::report::{Counters, RunReport, TimeBreakdown};
use crate::windows::{ContentionWindow, RedundancyWindow};

/// Parameters of the GPU platform model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Lanes per warp.
    pub warp_size: usize,
    /// Warps the device can keep in flight (SMs × resident warps).
    pub concurrent_warps: usize,
    /// Device L2 capacity in bytes (replay cache for tree nodes).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// One warp memory step that hits L2, ns.
    pub l2_hit_ns: f64,
    /// One warp memory step that misses to HBM, ns.
    pub mem: MemoryConfig,
    /// Global atomic cost per lock point, ns.
    pub atomic_ns: f64,
    /// Serialization cost per contended atomic, ns.
    pub contention_ns: f64,
    /// Serialized cost per contended atomic on the critical path (GPU
    /// atomics to one address serialize at the L2 slice), ns.
    pub contention_serial_ns: f64,
    /// Kernel launch overhead per batch, ns.
    pub launch_ns: f64,
    /// Host↔device interconnect bandwidth, GB/s.
    pub pcie_gbps: f64,
    /// Bytes shipped per operation (key + op descriptor + result).
    pub bytes_per_op: u64,
}

impl GpuConfig {
    /// An NVIDIA A100: 108 SMs, 40 MB L2, HBM2e, PCIe 4.0 ×16.
    pub fn a100() -> Self {
        GpuConfig {
            warp_size: 32,
            concurrent_warps: 108 * 32,
            l2_bytes: 40 * 1024 * 1024,
            l2_ways: 16,
            l2_hit_ns: 35.0,
            mem: MemoryConfig::hbm_a100(),
            atomic_ns: 120.0,
            contention_ns: 250.0,
            contention_serial_ns: 560.0,
            launch_ns: 10_000.0,
            pcie_gbps: 25.0,
            bytes_per_op: 24,
        }
    }

    /// Scales the L2 like [`CpuConfig::scaled_for_keys`](crate::CpuConfig::scaled_for_keys)
    /// so sub-paper-scale runs keep the same cached-fraction regime.
    pub fn scaled_for_keys(mut self, keys: usize) -> Self {
        let scale = (keys as f64 / 50_000_000.0).min(1.0);
        let unit = self.l2_ways * 64;
        self.l2_bytes = ((self.l2_bytes as f64 * scale) as usize / unit).max(16) * unit;
        self
    }
}

/// The CuART GPU engine model.
///
/// # Examples
///
/// ```
/// use dcart_baselines::{CuArt, GpuConfig, IndexEngine, RunConfig};
/// use dcart_workloads::{generate_ops, OpStreamConfig, Workload};
///
/// let keys = Workload::DenseInt.generate(2_000, 1);
/// let ops = generate_ops(&keys, &OpStreamConfig { count: 5_000, ..Default::default() });
/// let mut cuart = CuArt::new(GpuConfig::a100().scaled_for_keys(2_000));
/// let report = cuart.run(&keys, &ops, &RunConfig { concurrency: 1_024 });
/// // Cooperative warp matching: one parallel compare per node visit.
/// assert_eq!(report.counters.partial_key_matches, report.counters.nodes_traversed);
/// ```
#[derive(Debug)]
pub struct CuArt {
    config: GpuConfig,
}

impl CuArt {
    /// Creates the engine over a GPU configuration.
    pub fn new(config: GpuConfig) -> Self {
        CuArt { config }
    }

    /// The GPU configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }
}

impl IndexEngine for CuArt {
    fn name(&self) -> &'static str {
        "CuART"
    }

    fn run(&mut self, keys: &KeySet, ops: &[Op], run: &RunConfig) -> RunReport {
        let cfg = self.config;
        let mut l2 = SetAssocCache::new(cfg.l2_bytes, cfg.l2_ways);
        let mut redundancy = RedundancyWindow::new(run.concurrency);
        let mut contention = ContentionWindow::new(run.concurrency);
        let mut counters = Counters::default();

        // Per-warp accumulation: lane depths and per-step hit/miss.
        let mut warp_lane_depths: Vec<usize> = Vec::with_capacity(cfg.warp_size);
        let mut warp_step_ns: f64 = 0.0;
        let mut total_warp_ns: f64 = 0.0;
        let mut warps: u64 = 0;
        let mut latencies = LatencyRecorder::new();

        let flush_warp =
            |depths: &mut Vec<usize>, step_ns: &mut f64, total: &mut f64, warps: &mut u64| {
                if depths.is_empty() {
                    return;
                }
                // Divergence: the warp runs as long as its deepest lane;
                // cost is the accumulated per-step memory time (each step
                // serviced once for the warp — coalesced).
                *total += *step_ns;
                *warps += 1;
                depths.clear();
                *step_ns = 0.0;
            };

        execute_with_traces(keys, ops, |op| {
            counters.ops += 1;
            if op.kind.is_write() {
                counters.writes += 1;
            } else {
                counters.reads += 1;
            }
            let visits = &op.trace.visits;
            let lane_depth = visits.len();
            // Warp step costs: the deepest lane determines steps; model
            // each of this lane's node fetches through L2.
            let prev_max = warp_lane_depths.iter().copied().max().unwrap_or(0);
            for (level, v) in visits.iter().enumerate() {
                counters.nodes_traversed += 1;
                counters.useful_bytes += u64::from(v.useful_bytes);
                counters.fetched_bytes += u64::from(v.lines) * 64;
                // Cooperative matching: one parallel compare per node.
                counters.partial_key_matches += 1;
                let base = u64::from(v.node.index()) * 256;
                let missed =
                    (0..u64::from(v.lines)).any(|i| l2.access(base + i * 64) == Access::Miss);
                if missed {
                    counters.offchip_accesses += 1;
                    counters.offchip_bytes += u64::from(v.lines) * 64;
                    counters.cache_misses += 1;
                } else {
                    counters.cache_hits += 1;
                }
                // Only levels beyond the current warp-max extend the warp's
                // critical path.
                if level >= prev_max {
                    warp_step_ns += if missed { cfg.mem.latency_ns } else { cfg.l2_hit_ns };
                }
            }
            redundancy.record_op(visits.iter().map(|v| v.node));
            if !op.trace.locks.is_empty() {
                counters.lock_acquisitions += op.trace.locks.len() as u64;
                contention.record_unit(op.trace.locks.iter().copied());
            }
            warp_lane_depths.push(lane_depth);
            if warp_lane_depths.len() == cfg.warp_size {
                flush_warp(
                    &mut warp_lane_depths,
                    &mut warp_step_ns,
                    &mut total_warp_ns,
                    &mut warps,
                );
            }
        });
        flush_warp(&mut warp_lane_depths, &mut warp_step_ns, &mut total_warp_ns, &mut warps);

        counters.redundant_node_visits = redundancy.redundant_visits;
        let (totals, history) = contention.finish();
        counters.lock_contentions = totals.contentions;

        // Traversal time: warp critical paths overlap across resident
        // warps, floored by HBM bandwidth.
        let overlap = (cfg.concurrent_warps as f64).min(cfg.mem.parallelism * 16.0);
        let traversal_ns =
            (total_warp_ns / overlap).max(counters.offchip_bytes as f64 / cfg.mem.peak_bw_gbps);

        // Sync: atomics overlap like ordinary warps; contended ones
        // serialize at the owning L2 slice and do not.
        let sync_ns = (counters.lock_acquisitions as f64 * cfg.atomic_ns
            + counters.lock_contentions as f64 * cfg.contention_ns)
            / overlap
            + counters.lock_contentions as f64 * cfg.contention_serial_ns
            + totals.critical_chain as f64 * cfg.atomic_ns;

        // Batch overheads: launch + PCIe per batch of `concurrency` ops.
        let batches = counters.ops.div_ceil(run.concurrency as u64);
        let pcie_ns = (counters.ops * cfg.bytes_per_op) as f64 / cfg.pcie_gbps;
        let other_ns = batches as f64 * cfg.launch_ns + pcie_ns;

        let total_ns = traversal_ns + sync_ns + other_ns;
        let time_s = total_ns * 1e-9;

        // Latency: an op completes with its batch — batch service time plus
        // queueing behind the hottest lock chain.
        let batch_ns = total_ns / batches as f64;
        latencies.record(batch_ns / 1e3);
        let mean_us = batch_ns / 1e3;
        let mut queue = LatencyRecorder::new();
        for &q in &history {
            queue.record(q as f64 * cfg.atomic_ns / 1e3);
        }
        let p99_us = mean_us + queue.percentile(0.99);

        let energy = EnergyModel::gpu_a100();
        let energy_j = energy.energy_joules(
            time_s,
            counters.offchip_bytes,
            counters.cache_hits + counters.lock_acquisitions,
        );

        RunReport {
            engine: "CuART".to_string(),
            workload: keys.name.clone(),
            counters,
            time_s,
            breakdown: TimeBreakdown {
                traversal_s: traversal_ns * 1e-9,
                sync_s: sync_ns * 1e-9,
                combine_s: 0.0,
                other_s: other_ns * 1e-9,
            },
            energy_j,
            latency_mean_us: mean_us,
            latency_p99_us: p99_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu_engines::CpuBaseline;
    use crate::CpuConfig;
    use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

    fn run_cuart(n_keys: usize, n_ops: usize, concurrency: usize) -> RunReport {
        let keys = Workload::Ipgeo.generate(n_keys, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: n_ops, mix: Mix::C, ..Default::default() },
        );
        CuArt::new(GpuConfig::a100().scaled_for_keys(n_keys)).run(
            &keys,
            &ops,
            &RunConfig { concurrency },
        )
    }

    #[test]
    fn cuart_beats_smart_on_throughput() {
        let keys = Workload::Ipgeo.generate(20_000, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 40_000, mix: Mix::C, ..Default::default() },
        );
        let run = RunConfig { concurrency: 4096 };
        let cuart = CuArt::new(GpuConfig::a100().scaled_for_keys(20_000)).run(&keys, &ops, &run);
        let smart = CpuBaseline::smart(CpuConfig::xeon_8468().scaled_for_keys(20_000))
            .run(&keys, &ops, &run);
        assert!(cuart.time_s < smart.time_s, "CuART {} vs SMART {}", cuart.time_s, smart.time_s);
    }

    #[test]
    fn cooperative_matching_is_one_per_visit() {
        let r = run_cuart(5_000, 10_000, 2048);
        assert_eq!(r.counters.partial_key_matches, r.counters.nodes_traversed);
    }

    #[test]
    fn small_batches_pay_proportionally_more_launch_overhead() {
        // Small batches multiply kernel launches; large batches amortize
        // them (but collide more). The overhead *share* must grow as the
        // batch shrinks.
        let small = run_cuart(5_000, 20_000, 256);
        let large = run_cuart(5_000, 20_000, 16_384);
        let small_share = small.breakdown.other_s / small.breakdown.total_s();
        let large_share = large.breakdown.other_s / large.breakdown.total_s();
        assert!(
            small_share > 2.0 * large_share,
            "launch share small={small_share} large={large_share}"
        );
    }

    #[test]
    fn counters_populated() {
        let r = run_cuart(2_000, 5_000, 1024);
        assert_eq!(r.counters.ops, 5_000);
        assert!(r.counters.nodes_traversed > 0);
        assert!(r.energy_j > 0.0);
        assert!(r.latency_p99_us >= r.latency_mean_us);
    }
}
