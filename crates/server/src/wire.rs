//! The `DCARTNET` wire protocol: length-prefixed, checksummed binary
//! frames over a byte stream.
//!
//! # Frame layout
//!
//! Every frame — request or response — is:
//!
//! ```text
//! magic    8 bytes   b"DCARTNET"
//! len      u32 LE    body length in bytes (capped at MAX_BODY)
//! body     len bytes
//! crc64    u64 LE    wal::checksum over body
//! ```
//!
//! Request body (fixed width):
//!
//! ```text
//! req_id      u64 LE   caller-chosen correlation id, echoed in the response
//! kind        u8       0 get · 1 insert · 2 remove · 3 scan · 4 stats · 5 shutdown
//! budget_ns   u64 LE   deadline budget from arrival (0 = server default)
//! key         8 bytes  big-endian u64 key (fixed width — see below)
//! value       u64 LE   insert value / scan limit; 0 otherwise
//! ```
//!
//! Response body:
//!
//! ```text
//! req_id          u64 LE
//! status          u8      0 ok · 1 rejected · 2 error
//! reject_code     u8      RejectReason::code when rejected, 0xFF otherwise
//! retry_after_ns  u64 LE  bounded retry hint (0 = don't retry)
//! value_present   u8      1 when `value` is meaningful
//! value           u64 LE  read result / displaced value / scan count
//! payload_len     u32 LE  trailing payload (stats JSON); 0 for ops
//! payload         bytes
//! ```
//!
//! # Why keys are fixed-width
//!
//! The executor's tree requires a *prefix-free* key set, and a violating
//! insert aborts the whole in-flight batch — unacceptable when the
//! violator is one misbehaving client among many. Equal-length keys are
//! prefix-free by construction, so the protocol pins `KEY_WIDTH` and the
//! decoder rejects anything else before it can reach the executor.
//!
//! Corruption anywhere (bad magic, truncated frame, flipped bit, absurd
//! length) is a typed [`WireError`], never a panic — pinned by the
//! proptest corruption suite.

use std::io::{self, Read, Write};

use dcart_engine::{wal, RejectReason};

/// Magic bytes opening every DCARTNET frame (the protocol's only on-wire
/// magic; rule F1 pins its definition to this module).
pub const NET_MAGIC: [u8; 8] = *b"DCARTNET";

/// Fixed key width: 8-byte big-endian u64 keys, the synthetic workloads'
/// encoding. Equal widths keep the key set prefix-free (see module docs).
pub const KEY_WIDTH: usize = 8;

/// Upper bound on a frame body; anything larger is corruption, not data
/// (requests are 34 bytes; stats payloads are small JSON).
pub const MAX_BODY: usize = 1 << 20;

const REQ_BODY: usize = 8 + 1 + 8 + KEY_WIDTH + 8;
const RESP_FIXED: usize = 8 + 1 + 1 + 8 + 1 + 8 + 4;

/// What a request asks the server to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RequestKind {
    /// Point read of `key`.
    Get,
    /// Insert/overwrite `key` with `value` (acknowledged only after the
    /// batch is durable in WAL-backed mode).
    Insert,
    /// Remove `key`.
    Remove,
    /// Range scan: up to `value` items starting at `key`.
    Scan,
    /// Server/stats snapshot (answered outside the batch path).
    Stats,
    /// Graceful drain: stop accepting, flush, checkpoint, exit.
    Shutdown,
}

impl RequestKind {
    /// The wire byte for this kind.
    pub fn code(self) -> u8 {
        match self {
            RequestKind::Get => 0,
            RequestKind::Insert => 1,
            RequestKind::Remove => 2,
            RequestKind::Scan => 3,
            RequestKind::Stats => 4,
            RequestKind::Shutdown => 5,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(RequestKind::Get),
            1 => Some(RequestKind::Insert),
            2 => Some(RequestKind::Remove),
            3 => Some(RequestKind::Scan),
            4 => Some(RequestKind::Stats),
            5 => Some(RequestKind::Shutdown),
            _ => None,
        }
    }

    /// Whether this request mutates the tree (and therefore must be
    /// durable before acknowledgement, and is never shed).
    pub fn is_write(self) -> bool {
        matches!(self, RequestKind::Insert | RequestKind::Remove)
    }
}

/// A decoded request frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Request {
    /// Caller-chosen correlation id, echoed back verbatim.
    pub req_id: u64,
    /// Operation.
    pub kind: RequestKind,
    /// Deadline budget in nanoseconds from server-side arrival
    /// (0 = use the server's default budget).
    pub budget_ns: u64,
    /// The key, as a u64 (encoded big-endian on the wire).
    pub key: u64,
    /// Insert value or scan limit.
    pub value: u64,
}

/// Response status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Executed; `value` carries the result.
    Ok,
    /// Admission control rejected the request; `reject` says why.
    Rejected,
    /// Server-side failure (I/O, recovery) — request outcome unknown.
    Error,
}

/// A decoded response frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// Echo of the request's correlation id.
    pub req_id: u64,
    /// Outcome class.
    pub status: Status,
    /// Rejection reason when `status == Rejected`.
    pub reject: Option<RejectReason>,
    /// Bounded retry hint: retry after this many nanoseconds (0 = the
    /// server advises not to retry — e.g. draining).
    pub retry_after_ns: u64,
    /// The operation's result: read value, displaced value, scan count.
    pub value: Option<u64>,
    /// Stats JSON for stats requests; empty for ops.
    pub payload: Vec<u8>,
}

impl Response {
    /// An `Ok` response carrying an operation result.
    pub fn ok(req_id: u64, value: Option<u64>) -> Self {
        Response {
            req_id,
            status: Status::Ok,
            reject: None,
            retry_after_ns: 0,
            value,
            payload: Vec::new(),
        }
    }

    /// A rejection with a bounded retry hint.
    pub fn rejected(req_id: u64, reason: RejectReason, retry_after_ns: u64) -> Self {
        Response {
            req_id,
            status: Status::Rejected,
            reject: Some(reason),
            retry_after_ns,
            value: None,
            payload: Vec::new(),
        }
    }

    /// A server-side error (outcome unknown to the client).
    pub fn error(req_id: u64) -> Self {
        Response {
            req_id,
            status: Status::Error,
            reject: None,
            retry_after_ns: 0,
            value: None,
            payload: Vec::new(),
        }
    }
}

/// Every way a frame can fail to parse. Corrupt input must land here —
/// never in a panic — because the peer is untrusted.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The 8 magic bytes were wrong.
    BadMagic,
    /// The stream ended inside a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_BODY`].
    FrameTooLarge(u32),
    /// The crc64 over the body did not match.
    ChecksumMismatch,
    /// Body shorter/longer than its layout demands.
    BadLength,
    /// Unknown request-kind byte.
    UnknownKind(u8),
    /// Unknown status byte.
    UnknownStatus(u8),
    /// `status == Rejected` but the reject code is not a known reason.
    UnknownReject(u8),
    /// Underlying transport failure.
    Io(io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "frame does not start with DCARTNET"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::FrameTooLarge(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::BadLength => write!(f, "frame body length does not match its layout"),
            WireError::UnknownKind(c) => write!(f, "unknown request kind {c}"),
            WireError::UnknownStatus(c) => write!(f, "unknown response status {c}"),
            WireError::UnknownReject(c) => write!(f, "unknown rejection code {c}"),
            WireError::Io(k) => write!(f, "transport error: {k:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + body.len() + 8);
    out.extend_from_slice(&NET_MAGIC);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&wal::checksum(body).to_le_bytes());
    out
}

/// Encodes a request as one wire frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(REQ_BODY);
    body.extend_from_slice(&req.req_id.to_le_bytes());
    body.push(req.kind.code());
    body.extend_from_slice(&req.budget_ns.to_le_bytes());
    body.extend_from_slice(&req.key.to_be_bytes());
    body.extend_from_slice(&req.value.to_le_bytes());
    frame(&body)
}

/// Encodes a response as one wire frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::with_capacity(RESP_FIXED + resp.payload.len());
    body.extend_from_slice(&resp.req_id.to_le_bytes());
    body.push(match resp.status {
        Status::Ok => 0,
        Status::Rejected => 1,
        Status::Error => 2,
    });
    body.push(resp.reject.map_or(0xFF, RejectReason::code));
    body.extend_from_slice(&resp.retry_after_ns.to_le_bytes());
    body.push(u8::from(resp.value.is_some()));
    body.extend_from_slice(&resp.value.unwrap_or(0).to_le_bytes());
    body.extend_from_slice(&(resp.payload.len() as u32).to_le_bytes());
    body.extend_from_slice(&resp.payload);
    frame(&body)
}

fn le_u64(b: &[u8], off: usize) -> Result<u64, WireError> {
    b.get(off..off + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or(WireError::BadLength)
}

/// Decodes a request body (the de-framed bytes).
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    if body.len() != REQ_BODY {
        return Err(WireError::BadLength);
    }
    let req_id = le_u64(body, 0)?;
    let kind = RequestKind::from_code(body[8]).ok_or(WireError::UnknownKind(body[8]))?;
    let budget_ns = le_u64(body, 9)?;
    let key = body
        .get(17..17 + KEY_WIDTH)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_be_bytes)
        .ok_or(WireError::BadLength)?;
    let value = le_u64(body, 17 + KEY_WIDTH)?;
    Ok(Request { req_id, kind, budget_ns, key, value })
}

/// Decodes a response body (the de-framed bytes).
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    if body.len() < RESP_FIXED {
        return Err(WireError::BadLength);
    }
    let req_id = le_u64(body, 0)?;
    let status = match body[8] {
        0 => Status::Ok,
        1 => Status::Rejected,
        2 => Status::Error,
        c => return Err(WireError::UnknownStatus(c)),
    };
    let reject = match (status, body[9]) {
        (Status::Rejected, c) => {
            Some(RejectReason::from_code(c).ok_or(WireError::UnknownReject(c))?)
        }
        _ => None,
    };
    let retry_after_ns = le_u64(body, 10)?;
    let value = match body[18] {
        0 => None,
        _ => Some(le_u64(body, 19)?),
    };
    let payload_len = body
        .get(27..31)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(WireError::BadLength)? as usize;
    let payload = body.get(RESP_FIXED..).ok_or(WireError::BadLength)?;
    if payload.len() != payload_len {
        return Err(WireError::BadLength);
    }
    Ok(Response { req_id, status, reject, retry_after_ns, value, payload: payload.to_vec() })
}

/// Reads one de-framed body from a byte stream, verifying magic, length
/// cap, and checksum. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between frames).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut magic = [0u8; 8];
    // A clean EOF before any magic byte is a closed connection, not an
    // error; EOF after the first byte is a torn frame.
    let mut filled = 0usize;
    while filled < magic.len() {
        match r.read(&mut magic[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    if magic != NET_MAGIC {
        return Err(WireError::BadMagic);
    }
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4);
    if len as usize > MAX_BODY {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut crc8 = [0u8; 8];
    r.read_exact(&mut crc8)?;
    if wal::checksum(&body) != u64::from_le_bytes(crc8) {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some(body))
}

/// Writes pre-encoded frame bytes to a stream.
pub fn write_frame<W: Write>(w: &mut W, bytes: &[u8]) -> Result<(), WireError> {
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            req_id: 0xDEAD_BEEF,
            kind: RequestKind::Insert,
            budget_ns: 5_000_000,
            key: 42,
            value: 7,
        };
        let framed = encode_request(&req);
        let body = read_frame(&mut framed.as_slice()).expect("valid frame").expect("not EOF");
        assert_eq!(decode_request(&body).expect("decodes"), req);
    }

    #[test]
    fn response_roundtrip_with_payload() {
        let resp = Response {
            req_id: 9,
            status: Status::Ok,
            reject: None,
            retry_after_ns: 0,
            value: Some(123),
            payload: br#"{"queue_depth":3}"#.to_vec(),
        };
        let framed = encode_response(&resp);
        let body = read_frame(&mut framed.as_slice()).expect("valid frame").expect("not EOF");
        assert_eq!(decode_response(&body).expect("decodes"), resp);
    }

    #[test]
    fn rejection_roundtrip() {
        let resp = Response::rejected(4, RejectReason::ShedScan, 1_000_000);
        let framed = encode_response(&resp);
        let body = read_frame(&mut framed.as_slice()).expect("valid frame").expect("not EOF");
        let back = decode_response(&body).expect("decodes");
        assert_eq!(back.reject, Some(RejectReason::ShedScan));
        assert_eq!(back.retry_after_ns, 1_000_000);
    }

    #[test]
    fn clean_eof_is_none_torn_frame_is_truncated() {
        assert_eq!(read_frame(&mut [].as_slice()).expect("clean EOF"), None);
        let framed = encode_request(&Request {
            req_id: 1,
            kind: RequestKind::Get,
            budget_ns: 0,
            key: 1,
            value: 0,
        });
        let torn = &framed[..framed.len() - 3];
        assert_eq!(read_frame(&mut &torn[..]), Err(WireError::Truncated));
    }

    #[test]
    fn flipped_bit_is_checksum_mismatch() {
        let mut framed = encode_request(&Request {
            req_id: 1,
            kind: RequestKind::Get,
            budget_ns: 0,
            key: 1,
            value: 0,
        });
        let mid = 8 + 4 + 2; // inside the body
        framed[mid] ^= 0x40;
        assert_eq!(read_frame(&mut framed.as_slice()), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&NET_MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(read_frame(&mut bytes.as_slice()), Err(WireError::FrameTooLarge(u32::MAX)));
    }
}
