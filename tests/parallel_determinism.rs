//! Thread-count determinism of the data-parallel CTT executor.
//!
//! The executor fans a batch's prefix-disjoint buckets over a worker pool
//! and replays the recorded outcomes serially, so **every** observable —
//! stats, answer digest, final tree, serialized report JSON — must be
//! byte-identical whether the pool has 1, 2, or 8 threads. These tests pin
//! that contract on the three tier-1 workloads, fault-free and under
//! injected shortcut corruption.

use dcart::{execute_ctt_threaded, CttConsumer, CttStats, DcartConfig, FaultPlan};
use dcart_art::Key;
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

struct Sink;
impl CttConsumer for Sink {}

/// One full execution: serialized stats JSON plus the final tree contents.
fn run(
    workload: Workload,
    threads: usize,
    faults: FaultPlan,
) -> (String, CttStats, Vec<(Key, u64)>) {
    let keys = workload.generate(4_000, 17);
    let ops =
        generate_ops(&keys, &OpStreamConfig { count: 16_000, mix: Mix::E, theta: 0.99, seed: 17 });
    let mut cfg = DcartConfig::default().with_auto_prefix_skip(&keys);
    cfg.faults = faults;
    let (tree, stats) = execute_ctt_threaded(&keys, &ops, &cfg, 2_048, threads, &mut Sink);
    let json = serde_json::to_string_pretty(&stats).expect("stats serialize");
    (json, stats, tree.iter().map(|(k, &v)| (k.clone(), v)).collect())
}

const WORKLOADS: [Workload; 3] = [Workload::Ipgeo, Workload::Dict, Workload::DenseInt];

#[test]
fn stats_json_and_tree_are_byte_identical_across_thread_counts() {
    for workload in WORKLOADS {
        let (base_json, base_stats, base_tree) = run(workload, 1, FaultPlan::none());
        assert!(base_stats.ops == 16_000, "{workload:?} executed every op");
        for threads in [2usize, 8] {
            let (json, _, tree) = run(workload, threads, FaultPlan::none());
            assert_eq!(
                json, base_json,
                "{workload:?}: serialized stats differ at {threads} threads"
            );
            assert_eq!(tree, base_tree, "{workload:?}: final tree differs at {threads} threads");
        }
    }
}

#[test]
fn fault_injection_stays_deterministic_and_correct_under_threading() {
    // Per-bucket fault streams make the injected-fault draw sequence a
    // function of the operation stream alone, so faulted runs must be as
    // thread-count-stable as clean ones — and still answer-identical to
    // the clean run (the chaos suite's differential invariant).
    let plan = FaultPlan { seed: 99, shortcut_corrupt_rate: 0.05, ..FaultPlan::none() };
    for workload in WORKLOADS {
        let (_, clean, clean_tree) = run(workload, 8, FaultPlan::none());
        let (base_json, base_stats, base_tree) = run(workload, 1, plan);
        assert!(
            base_stats.shortcut.corruptions_injected > 0,
            "{workload:?}: the fault plan actually fired"
        );
        assert!(
            base_stats.shortcut.corruption_fallbacks > 0,
            "{workload:?}: validate-then-fallback recovered"
        );
        assert_eq!(
            base_stats.answer_digest, clean.answer_digest,
            "{workload:?}: faults never change answers"
        );
        assert_eq!(base_tree, clean_tree, "{workload:?}: faults never change the tree");
        for threads in [2usize, 8] {
            let (json, _, tree) = run(workload, threads, plan);
            assert_eq!(json, base_json, "{workload:?}: faulted stats differ at {threads} threads");
            assert_eq!(tree, base_tree);
        }
    }
}
