//! Property-based tests for the memory-hierarchy models against reference
//! implementations.

use std::collections::HashMap;

use dcart_mem::{
    Access, BufferOutcome, BufferPolicy, LineUtilization, ObjectBuffer, SetAssocCache,
};
use proptest::prelude::*;

/// A straightforward reference LRU buffer: a vector kept in recency order.
struct RefLru {
    capacity: u64,
    used: u64,
    /// (id, size), most recent last.
    entries: Vec<(u64, u32)>,
}

impl RefLru {
    fn request(&mut self, id: u64, size: u32) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(e, _)| e == id) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            return true;
        }
        if u64::from(size) > self.capacity {
            return false;
        }
        while self.used + u64::from(size) > self.capacity {
            let (_, s) = self.entries.remove(0);
            self.used -= u64::from(s);
        }
        self.entries.push((id, size));
        self.used += u64::from(size);
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The LRU ObjectBuffer agrees hit-for-hit with the reference LRU.
    #[test]
    fn lru_buffer_matches_reference(
        requests in proptest::collection::vec((0u64..40, 1u32..200), 1..400),
        capacity in 200u64..1200,
    ) {
        let mut buf = ObjectBuffer::new(capacity, BufferPolicy::Lru);
        let mut reference = RefLru { capacity, used: 0, entries: Vec::new() };
        for (id, size) in requests {
            let got = buf.request(id, size, 0) == BufferOutcome::Hit;
            let want = reference.request(id, size);
            prop_assert_eq!(got, want, "id {} size {}", id, size);
            prop_assert!(buf.used_bytes() <= capacity);
        }
    }

    /// Value-aware never evicts an object for a strictly less valuable one,
    /// and capacity is never exceeded.
    #[test]
    fn value_aware_admission_is_monotone(
        requests in proptest::collection::vec((0u64..60, 1u64..100), 1..300),
        capacity in 200u64..1000,
    ) {
        let mut buf = ObjectBuffer::new(capacity, BufferPolicy::ValueAware);
        let mut values: HashMap<u64, u64> = HashMap::new();
        for (id, value) in requests {
            let before_min = values.values().copied().min();
            let outcome = buf.request(id, 50, value);
            match outcome {
                BufferOutcome::Hit => {
                    prop_assert!(values.contains_key(&id));
                }
                BufferOutcome::MissFilled => {
                    values.insert(id, value);
                }
                BufferOutcome::MissBypassed => {
                    // Bypass only happens when the buffer is full of
                    // at-least-as-valuable objects.
                    if let Some(min) = before_min {
                        prop_assert!(
                            buf.used_bytes() + 50 > capacity,
                            "bypass with free space"
                        );
                        prop_assert!(min >= value, "evictable min {min} vs {value}");
                    }
                }
            }
            // Mirror evictions back into the model.
            values.retain(|&k, _| buf.contains(k));
            prop_assert!(buf.used_bytes() <= capacity);
        }
    }

    /// The set-associative cache never reports more hits than a
    /// fully-associative cache of the same capacity could (Belady-ish sanity:
    /// same-line re-references within associativity distance must hit).
    #[test]
    fn cache_hits_immediate_rereference(addrs in proptest::collection::vec(0u64..1 << 16, 1..200)) {
        let mut c = SetAssocCache::new(64 * 1024, 8);
        for addr in addrs {
            c.access(addr);
            prop_assert_eq!(c.access(addr), Access::Hit, "immediate re-reference");
        }
    }

    /// Cache stats always balance: hits + misses = accesses.
    #[test]
    fn cache_stats_balance(addrs in proptest::collection::vec(0u64..1 << 20, 1..500)) {
        let mut c = SetAssocCache::new(4 * 1024, 4);
        for addr in &addrs {
            c.access(*addr);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.evictions <= s.misses);
    }

    /// Line-utilization ratio stays in [0, 1] and merging preserves totals.
    #[test]
    fn line_utilization_bounds(
        records in proptest::collection::vec((0u32..600, 1u32..10), 1..100),
    ) {
        let mut all = LineUtilization::new();
        let mut parts = (LineUtilization::new(), LineUtilization::new());
        for (i, &(useful, lines)) in records.iter().enumerate() {
            all.record(useful, lines);
            if i % 2 == 0 {
                parts.0.record(useful, lines);
            } else {
                parts.1.record(useful, lines);
            }
        }
        let mut merged = parts.0;
        merged.merge(parts.1);
        prop_assert_eq!(merged, all);
        prop_assert!((0.0..=1.0).contains(&all.ratio()));
    }
}
