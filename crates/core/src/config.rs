//! DCART configuration — the parameters of the paper's Table I, plus the
//! fault-injection plan and graceful-degradation thresholds.

use dcart_engine::FaultPlan;
use dcart_mem::BufferPolicy;
use serde::{Deserialize, Serialize};

/// Full configuration of a DCART instance.
///
/// Defaults reproduce Table I of the paper: 1 PCU, 1 Dispatcher, 16 SOUs;
/// a 512 KB Scan buffer, 2 MB Bucket buffer, 128 KB Shortcut buffer, and
/// 4 MB Tree buffer; a conservative 230 MHz clock on the Alveo U280; and
/// an 8-bit combining prefix (§III-B: "the first 8 bits of the key are used
/// as the specified prefix by default").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DcartConfig {
    /// Prefix-based Combining Units.
    pub pcus: usize,
    /// Dispatchers.
    pub dispatchers: usize,
    /// Shortcut-based Operating Units.
    pub sous: usize,
    /// Scan buffer capacity (arriving operations), bytes.
    pub scan_buffer_bytes: u64,
    /// Bucket buffer capacity (bucket tables), bytes.
    pub bucket_buffer_bytes: u64,
    /// Shortcut buffer capacity (cached shortcut entries), bytes.
    pub shortcut_buffer_bytes: u64,
    /// Tree buffer capacity (cached ART nodes), bytes.
    pub tree_buffer_bytes: u64,
    /// Accelerator clock in MHz.
    pub clock_mhz: f64,
    /// Combining prefix width in bits.
    pub prefix_bits: u32,
    /// Bytes of constant key prefix skipped before extracting the
    /// combining prefix. The paper's "first 8 bits" default degenerates to
    /// one bucket when every key shares its high byte (dense fixed-width
    /// integers); the host driver programs this register to the key set's
    /// common-prefix length. See [`DcartConfig::with_auto_prefix_skip`].
    pub prefix_skip_bytes: usize,
    /// Replacement policy of the Tree buffer (§III-E: value-aware by
    /// default; set to LRU for the ablation).
    pub tree_buffer_policy: BufferPolicy,
    /// Whether shortcuts are maintained and used (§III-C; ablation knob).
    pub shortcuts_enabled: bool,
    /// Whether PCU combining overlaps SOU operating across batches
    /// (§III-D, Fig. 6; ablation knob).
    pub overlap_enabled: bool,
    /// Adaptive hot-bucket split threshold, as a fraction of the batch
    /// size: a bucket whose per-batch op count exceeds
    /// `threshold × batch_size` splits into sub-shards on the next prefix
    /// byte, and re-merges once it cools (see the executor docs in
    /// `dcart::ctt`). `1.0` never splits; `0.0` splits every active
    /// bucket. `None` (the default) defers to the process-global
    /// [`split_threshold`](crate::split_threshold) knob, which the
    /// binaries set via `--split-threshold`.
    ///
    /// Split decisions depend only on op counts, so the split schedule —
    /// and every observable of the run — is identical at any thread count
    /// and steal setting.
    #[serde(default)]
    pub split_threshold: Option<f64>,
    /// Deterministic fault-injection plan (default: inject nothing). See
    /// `dcart_engine::faults`.
    pub faults: FaultPlan,
    /// Graceful-degradation thresholds (when a component's error rate
    /// crosses its threshold, the accelerator disables it and falls back to
    /// the slow-but-correct path).
    pub degrade: DegradeConfig,
}

/// Thresholds for the degradation controller in the accelerator model.
///
/// Each guarded component (shortcut table, Tree buffer) tracks its error
/// rate over a sliding window; crossing the threshold trips a sticky
/// disable latch. Defaults are far above any rate a fault-free run
/// produces, so degradation never fires without injected faults.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradeConfig {
    /// Master switch for the degradation controller.
    pub enabled: bool,
    /// Shortcut-table disable threshold: fraction of probes in a window
    /// that were stale/corrupt.
    pub shortcut_stale_threshold: f64,
    /// Tree-buffer disable threshold: fraction of off-chip node fetches in
    /// a window that suffered a (injected) transient error.
    pub tree_buffer_error_threshold: f64,
    /// Window length in events for both controllers.
    pub window: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            enabled: true,
            shortcut_stale_threshold: 0.75,
            tree_buffer_error_threshold: 0.75,
            window: 512,
        }
    }
}

impl Default for DcartConfig {
    fn default() -> Self {
        DcartConfig {
            pcus: 1,
            dispatchers: 1,
            sous: 16,
            scan_buffer_bytes: 512 * 1024,
            bucket_buffer_bytes: 2 * 1024 * 1024,
            shortcut_buffer_bytes: 128 * 1024,
            tree_buffer_bytes: 4 * 1024 * 1024,
            clock_mhz: 230.0,
            prefix_bits: 8,
            prefix_skip_bytes: 0,
            tree_buffer_policy: BufferPolicy::ValueAware,
            shortcuts_enabled: true,
            overlap_enabled: true,
            split_threshold: None,
            faults: FaultPlan::none(),
            degrade: DegradeConfig::default(),
        }
    }
}

impl DcartConfig {
    /// Table I verbatim.
    pub fn table_i() -> Self {
        Self::default()
    }

    /// Scales the on-chip buffers so `keys` occupies the same fraction of
    /// the Tree buffer as 50 M keys would at paper scale, keeping hit-ratio
    /// regimes comparable in sub-scale reproductions. Clocks and unit
    /// counts are untouched.
    pub fn scaled_for_keys(mut self, keys: usize) -> Self {
        let scale = (keys as f64 / 50_000_000.0).min(1.0);
        let shrink = |b: u64| ((b as f64 * scale) as u64).max(4 * 1024);
        self.tree_buffer_bytes = shrink(self.tree_buffer_bytes);
        self.shortcut_buffer_bytes = shrink(self.shortcut_buffer_bytes);
        self.bucket_buffer_bytes = shrink(self.bucket_buffer_bytes);
        self.scan_buffer_bytes = shrink(self.scan_buffer_bytes);
        self
    }

    /// Sets [`prefix_skip_bytes`](DcartConfig::prefix_skip_bytes) to the
    /// common-prefix length of the loaded key set (computed from its
    /// lexicographic extremes), so combining starts at the first
    /// discriminating key byte.
    pub fn with_auto_prefix_skip(mut self, keys: &dcart_workloads::KeySet) -> Self {
        let Some(min) = keys.keys.iter().map(|k| k.as_bytes()).min() else {
            return self;
        };
        let max = keys.keys.iter().map(|k| k.as_bytes()).max().expect("non-empty");
        let common = min.iter().zip(max).take_while(|(a, b)| a == b).count();
        // Never skip the whole key.
        self.prefix_skip_bytes = common.min(min.len().saturating_sub(1));
        self
    }

    /// Number of combining buckets (one bucket table per SOU; §III-B
    /// creates sixteen tables for the default 16 SOUs).
    pub fn buckets(&self) -> usize {
        self.sous
    }

    /// Maps a combining prefix value to its bucket index.
    pub fn bucket_of(&self, prefix: u64) -> usize {
        (prefix % self.buckets() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_i() {
        let c = DcartConfig::table_i();
        assert_eq!(c.pcus, 1);
        assert_eq!(c.dispatchers, 1);
        assert_eq!(c.sous, 16);
        assert_eq!(c.scan_buffer_bytes, 512 * 1024);
        assert_eq!(c.bucket_buffer_bytes, 2 * 1024 * 1024);
        assert_eq!(c.shortcut_buffer_bytes, 128 * 1024);
        assert_eq!(c.tree_buffer_bytes, 4 * 1024 * 1024);
        assert_eq!(c.clock_mhz, 230.0);
        assert_eq!(c.prefix_bits, 8);
        assert_eq!(c.tree_buffer_policy, BufferPolicy::ValueAware);
        assert!(!c.faults.is_active(), "no faults by default");
        assert!(c.split_threshold.is_none(), "adaptive splitting defers to the global knob");
        assert!(c.degrade.enabled);
        assert!(c.degrade.shortcut_stale_threshold > 0.5, "far above natural stale rates");
    }

    #[test]
    fn bucket_mapping_covers_all_buckets() {
        let c = DcartConfig::default();
        let mut seen = vec![false; c.buckets()];
        for p in 0..256u64 {
            seen[c.bucket_of(p)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scaling_preserves_units_and_clock() {
        let c = DcartConfig::default().scaled_for_keys(1_000_000);
        assert_eq!(c.sous, 16);
        assert_eq!(c.clock_mhz, 230.0);
        assert!(c.tree_buffer_bytes < 4 * 1024 * 1024);
        assert!(c.tree_buffer_bytes >= 4 * 1024);
        assert_eq!(
            DcartConfig::default().scaled_for_keys(60_000_000).tree_buffer_bytes,
            4 * 1024 * 1024
        );
    }
}
