//! Table I — DCART parameter details (paper §IV-A).

use std::path::Path;

use dcart::DcartConfig;

use crate::{write_report, Table};

/// Prints Table I and writes `table1.json`.
pub fn run(out_dir: &Path) -> DcartConfig {
    println!("== Table I: parameter details of DCART ==");
    let c = DcartConfig::table_i();
    let mut t = Table::new(&["parameter", "value"]);
    t.row(&[
        "Processing units",
        &format!("{}x PCU, {}x Dispatcher, {}x SOUs", c.pcus, c.dispatchers, c.sous),
    ]);
    t.row(&["Scan_buffer", &format!("{} KB", c.scan_buffer_bytes / 1024)]);
    t.row(&["Bucket_buffer", &format!("{} MB", c.bucket_buffer_bytes / 1024 / 1024)]);
    t.row(&["Shortcut_buffer", &format!("{} KB", c.shortcut_buffer_bytes / 1024)]);
    t.row(&["Tree_buffer", &format!("{} MB", c.tree_buffer_bytes / 1024 / 1024)]);
    t.row(&["Clock", &format!("{} MHz (conservative, Vivado-reported)", c.clock_mhz)]);
    t.row(&["Combining prefix", &format!("{} bits", c.prefix_bits)]);
    t.row(&["Tree_buffer policy", &format!("{:?}", c.tree_buffer_policy)]);
    t.print();
    println!("paper: 1x PCU, 1x Dispatcher, 16x SOUs; 512 KB / 2 MB / 128 KB / 4 MB; 230 MHz\n");
    write_report(out_dir, "table1", &c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        let tmp = std::env::temp_dir().join("dcart-table1-test");
        let c = run(&tmp);
        assert_eq!(c.sous, 16);
        assert_eq!(c.tree_buffer_bytes, 4 * 1024 * 1024);
        assert_eq!(c.clock_mhz, 230.0);
    }
}
