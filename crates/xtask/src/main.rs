//! `cargo run -p xtask -- <lint|analyze>` — the DCART workspace
//! static-analysis driver.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run(Cmd::Lint, &args[1..]),
        Some("analyze") => run(Cmd::Analyze, &args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            if let Some(cmd) = other {
                eprintln!("xtask: unknown command `{cmd}`");
            }
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- <lint|analyze> [--format text|sarif] [--out FILE] [WORKSPACE_ROOT]");
    eprintln!();
    eprintln!(
        "  lint     fast lexical rules ({}) over crates/*/src",
        xtask::LINT_RULE_IDS.join(" ")
    );
    eprintln!(
        "  analyze  lint plus the flow rules ({}) over the workspace call graph",
        xtask::FLOW_RULE_IDS.join(" ")
    );
    eprintln!();
    eprintln!("  --format sarif   emit SARIF 2.1.0 (to stdout, or FILE with --out)");
    eprintln!("  --out FILE       write the report to FILE instead of stdout");
    eprintln!();
    eprintln!("See DESIGN.md \"Correctness & static analysis\" for the rule table and");
    eprintln!("the `// dcart_lint::allow(<RULE>) -- reason` / `// dcart_lint::atomic(<REASON>)`");
    eprintln!("marker syntax. Exit status: 0 clean, 1 violations, 2 usage/io error.");
}

enum Cmd {
    Lint,
    Analyze,
}

fn run(cmd: Cmd, rest: &[String]) -> ExitCode {
    let mut format_sarif = false;
    let mut out_file: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("sarif") => format_sarif = true,
                Some("text") => format_sarif = false,
                other => {
                    eprintln!("xtask: --format expects `text` or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(f) => out_file = Some(PathBuf::from(f)),
                None => {
                    eprintln!("xtask: --out expects a file path");
                    return ExitCode::from(2);
                }
            },
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            // Running from somewhere inside the tree: anchor on this
            // crate's manifest, two levels below the workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let (name, rules, result) = match cmd {
        Cmd::Lint => ("dcart-lint", xtask::LINT_RULE_IDS.as_slice(), xtask::lint_workspace(&root)),
        Cmd::Analyze => {
            ("dcart-analyze", xtask::RULE_IDS.as_slice(), xtask::analyze_workspace(&root))
        }
    };
    let (diags, files) = match result {
        Ok(pair) => pair,
        Err(err) => {
            eprintln!("xtask {name}: cannot read workspace at {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if format_sarif {
        let sarif = xtask::sarif::render(name, &diags);
        if let Some(path) = &out_file {
            if let Err(err) = std::fs::write(path, &sarif) {
                eprintln!("xtask {name}: cannot write {}: {err}", path.display());
                return ExitCode::from(2);
            }
        } else {
            println!("{sarif}");
        }
        // Human summary still lands on stderr so CI logs stay readable.
        eprintln!("{name}: {} violation(s) in {files} files (SARIF emitted)", diags.len());
        return if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if diags.is_empty() {
        println!("{name}: {files} files clean across {} rules ({})", rules.len(), rules.join(" "));
        ExitCode::SUCCESS
    } else {
        let text = diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n\n");
        if let Some(path) = &out_file {
            if let Err(err) = std::fs::write(path, format!("{text}\n")) {
                eprintln!("xtask {name}: cannot write {}: {err}", path.display());
                return ExitCode::from(2);
            }
        } else {
            eprintln!("{text}");
            eprintln!();
        }
        eprintln!("{name}: {} violation(s) in {files} files", diags.len());
        ExitCode::FAILURE
    }
}
