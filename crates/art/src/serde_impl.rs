//! Serde support for [`Art`]: a tree serializes as its ordered
//! `(key, value)` entries and deserializes through the bulk loader —
//! which rebuilds the *identical* structure, since ART shape is
//! insertion-order independent.
//!
//! On top of the serde impls sits the **snapshot** format used by the
//! durability layer's checkpoints: a self-describing byte container with a
//! magic number, a format version, and a checksum, so a corrupted,
//! truncated, or future-version snapshot surfaces as a typed
//! [`SnapshotError`] instead of a panic or a silently wrong tree:
//!
//! ```text
//! ┌───────────┬─────────┬─────────────┬─────────┬───────┐
//! │ magic 8 B │ ver 4 B │ paylen 8 B  │ payload │ crc64 │
//! └───────────┴─────────┴─────────────┴─────────┴───────┘
//! ```

use serde::de::{Deserializer, SeqAccess, Visitor};
use serde::ser::{SerializeSeq, Serializer};
use serde::{Deserialize, DeserializeOwned, Serialize};

use crate::tree::ArtError;
use crate::{Art, Key};

impl<V: Serialize> Serialize for Art<V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for (key, value) in self.iter() {
            seq.serialize_element(&(key, value))?;
        }
        seq.end()
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for Art<V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArtVisitor<V>(std::marker::PhantomData<V>);

        impl<'de, V: Deserialize<'de>> Visitor<'de> for ArtVisitor<V> {
            type Value = Art<V>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence of (key, value) pairs in ascending key order")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Art<V>, A::Error> {
                let mut pairs: Vec<(Key, V)> = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(pair) = seq.next_element::<(Key, V)>()? {
                    pairs.push(pair);
                }
                // Serialization emits ascending order; tolerate arbitrary
                // input by sorting (deserialization is not a hot path).
                pairs.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
                Art::from_sorted(pairs).map_err(serde::de::Error::custom)
            }
        }

        deserializer.deserialize_seq(ArtVisitor(std::marker::PhantomData))
    }
}

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DCARTSNP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot header bytes: magic + version + payload length.
const SNAPSHOT_HEADER_LEN: usize = 8 + 4 + 8;

/// Why a snapshot could not be produced or loaded. Loading never panics:
/// every malformed input maps to one of these.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The bytes do not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The header carries a version this build does not read.
    UnsupportedVersion(u32),
    /// Fewer bytes than the header promises (a torn write).
    Truncated,
    /// The checksum over the header and payload does not match.
    ChecksumMismatch,
    /// The payload is not valid UTF-8/JSON for the expected entry list.
    Malformed(String),
    /// The entries decoded but the tree rejected them (prefix-violating
    /// or unsorted input).
    Tree(ArtError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an ART snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => write!(
                f,
                "snapshot format version {v} is newer than this build reads ({SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(e) => write!(f, "snapshot payload is malformed: {e}"),
            SnapshotError::Tree(e) => write!(f, "snapshot entries rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtError> for SnapshotError {
    fn from(e: ArtError) -> Self {
        SnapshotError::Tree(e)
    }
}

/// FNV-1a over the snapshot bytes.
fn snapshot_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn get_u32(bytes: &[u8], off: usize) -> Option<u32> {
    let b = bytes.get(off..off + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(bytes: &[u8], off: usize) -> Option<u64> {
    let b = bytes.get(off..off + 8)?;
    Some(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

impl<V: Serialize> Art<V> {
    /// Serializes the tree into the self-describing snapshot container
    /// (magic, version, length, JSON entry payload, checksum).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if a value fails to serialize (only
    /// possible for values whose `Serialize` impl itself errors).
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let payload =
            serde_json::to_string(self).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len() + 8);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = snapshot_checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }
}

impl<V: DeserializeOwned> Art<V> {
    /// Loads a tree from snapshot bytes, validating magic, version,
    /// length, and checksum before touching the payload. Returns a typed
    /// [`SnapshotError`] — never panics — on any corruption, truncation,
    /// or version mismatch.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 8 || bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = get_u32(bytes, 8).ok_or(SnapshotError::Truncated)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len = get_u64(bytes, 12).ok_or(SnapshotError::Truncated)? as usize;
        let body_end = SNAPSHOT_HEADER_LEN
            .checked_add(payload_len)
            .filter(|&e| e.checked_add(8).is_some_and(|end| end <= bytes.len()))
            .ok_or(SnapshotError::Truncated)?;
        let stored_crc = get_u64(bytes, body_end).ok_or(SnapshotError::Truncated)?;
        if snapshot_checksum(&bytes[..body_end]) != stored_crc {
            return Err(SnapshotError::ChecksumMismatch);
        }
        if body_end + 8 != bytes.len() {
            // Trailing garbage past the checksum: a mis-framed container.
            return Err(SnapshotError::Malformed("trailing bytes after checksum".into()));
        }
        let payload = std::str::from_utf8(&bytes[SNAPSHOT_HEADER_LEN..body_end])
            .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        serde_json::from_str(payload).map_err(|e| {
            // The serde impl funnels tree-level rejections through
            // `de::Error::custom`, so they surface here as message text.
            SnapshotError::Malformed(e.to_string())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_preserves_structure() {
        let mut art = Art::new();
        for v in 0..2_000u64 {
            art.insert(Key::from_u64(v.wrapping_mul(0x9E37_79B9)), v).unwrap();
        }
        let json = serde_json::to_string(&art).unwrap();
        let back: Art<u64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), art.len());
        assert_eq!(back.type_histogram(), art.type_histogram());
        assert_eq!(back.node_count(), art.node_count());
        let a: Vec<(Key, u64)> = art.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let b: Vec<(Key, u64)> = back.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(a, b);
        back.assert_invariants();
    }

    #[test]
    fn empty_tree_roundtrips() {
        let art: Art<String> = Art::new();
        let json = serde_json::to_string(&art).unwrap();
        assert_eq!(json, "[]");
        let back: Art<String> = serde_json::from_str(&json).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn unsorted_input_is_tolerated() {
        let json = r#"[[[0,0,0,0,0,0,0,2],"b"],[[0,0,0,0,0,0,0,1],"a"]]"#;
        let art: Art<String> = serde_json::from_str(json).unwrap();
        assert_eq!(art.len(), 2);
        assert_eq!(art.get(&Key::from_u64(1)).map(String::as_str), Some("a"));
    }

    #[test]
    fn prefix_violating_input_is_rejected() {
        let json = r#"[[[1,2],"a"],[[1,2,3],"b"]]"#;
        let err = serde_json::from_str::<Art<String>>(json).unwrap_err();
        assert!(err.to_string().contains("prefix"), "{err}");
    }

    fn sample_tree() -> Art<u64> {
        let mut art = Art::new();
        for v in 0..600u64 {
            art.insert(Key::from_u64(v.wrapping_mul(0x9E37_79B9)), v).unwrap();
        }
        // Remove a slice so the snapshot covers post-remove shapes.
        for v in 0..120u64 {
            art.remove(&Key::from_u64((v * 5).wrapping_mul(0x9E37_79B9)));
        }
        art
    }

    #[test]
    fn snapshot_roundtrip_is_identity() {
        let art = sample_tree();
        let bytes = art.snapshot_bytes().unwrap();
        assert_eq!(bytes[..8], SNAPSHOT_MAGIC);
        let back: Art<u64> = Art::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.len(), art.len());
        assert_eq!(back.type_histogram(), art.type_histogram());
        let a: Vec<(Key, u64)> = art.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let b: Vec<(Key, u64)> = back.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(a, b);
        back.assert_invariants();
    }

    #[test]
    fn empty_tree_snapshot_roundtrips() {
        let art: Art<u64> = Art::new();
        let bytes = art.snapshot_bytes().unwrap();
        let back: Art<u64> = Art::from_snapshot_bytes(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn every_single_bitflip_in_a_real_snapshot_is_detected_or_harmless() {
        // Flip one bit at a time through the whole container; loading must
        // either fail with a typed error or (for flips inside the JSON that
        // keep it valid — none do here, but the contract allows it) return
        // a tree. It must never panic.
        let art = {
            let mut a = Art::new();
            for v in 0..40u64 {
                a.insert(Key::from_u64(v * 3), v).unwrap();
            }
            a
        };
        let bytes = art.snapshot_bytes().unwrap();
        let mut detected = 0usize;
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << (i % 8);
            if Art::<u64>::from_snapshot_bytes(&corrupt).is_err() {
                detected += 1;
            }
        }
        assert_eq!(detected, bytes.len(), "every bit flip must be caught by the checksum");
    }

    #[test]
    fn every_truncation_of_a_real_snapshot_is_detected() {
        let art = sample_tree();
        let bytes = art.snapshot_bytes().unwrap();
        for end in 0..bytes.len() {
            let err = Art::<u64>::from_snapshot_bytes(&bytes[..end]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::BadMagic
                        | SnapshotError::Truncated
                        | SnapshotError::UnsupportedVersion(_)
                ),
                "cut at {end}: {err}"
            );
        }
    }

    #[test]
    fn future_version_snapshot_is_rejected_not_parsed() {
        let art = sample_tree();
        let mut bytes = art.snapshot_bytes().unwrap();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = Art::<u64>::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedVersion(2)), "{err}");
        assert!(err.to_string().contains("version 2"), "{err}");
    }

    #[test]
    fn foreign_bytes_are_rejected_with_bad_magic() {
        let err = Art::<u64>::from_snapshot_bytes(b"not a snapshot at all").unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic));
        let err = Art::<u64>::from_snapshot_bytes(&[]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let art = sample_tree();
        let mut bytes = art.snapshot_bytes().unwrap();
        bytes.extend_from_slice(b"junk");
        let err = Art::<u64>::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
    }

    #[test]
    fn prefix_violating_snapshot_payload_is_a_typed_error() {
        // Forge a container whose JSON is valid but whose entries violate
        // the prefix-free invariant: the error must be typed, not a panic.
        let payload = br#"[[[1,2],7],[[1,2,3],8]]"#;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        let crc = snapshot_checksum(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = Art::<u64>::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("prefix"), "{err}");
    }
}
