//! Skew sensitivity (extension): how much of DCART's win depends on the
//! paper's similarity premise?
//!
//! The whole design rests on §II-C's observations — operations cluster on
//! few nodes (spatial) within short intervals (temporal). This experiment
//! sweeps the Zipfian skew of the operation stream from near-uniform to
//! hotter-than-YCSB and reports DCART's speedup, shortcut hit rate, and
//! the baselines' contention counts at each point: the mechanisms should
//! visibly engage as skew rises.

use std::path::Path;

use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// One skew measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkewPoint {
    /// Zipfian theta of the op stream.
    pub theta: f64,
    /// DCART speedup over SMART.
    pub speedup_vs_smart: f64,
    /// DCART shortcut hit rate over all ops.
    pub shortcut_hit_rate: f64,
    /// SMART's lock contentions (the cost skew creates for baselines).
    pub smart_contentions: u64,
    /// DCART's SOU load imbalance (the cost skew creates for DCART).
    pub dcart_imbalance: f64,
}

/// Full skew report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkewReport {
    /// Points in ascending theta.
    pub points: Vec<SkewPoint>,
    /// Per-bucket load histogram from one profiled CTT run at the
    /// steepest theta with adaptive sub-sharding on — the skew the splits
    /// reacted to, bucket by bucket. Captured with stealing *off* so the
    /// report stays deterministic (the schedule-dependent steal counters
    /// live in `BENCH_ctt.json`, which carries wall-clock anyway).
    #[serde(default)]
    pub load: dcart::LoadReport,
}

/// Runs the sweep on IPGEO and writes `skew.json`.
pub fn run(scale: &Scale, out_dir: &Path) -> SkewReport {
    use dcart::{DcartAccel, DcartConfig};
    use dcart_baselines::{CpuBaseline, CpuConfig, IndexEngine, RunConfig};

    println!("== Extension: sensitivity to operation skew (IPGEO, mix C) ==");
    let keys = Workload::Ipgeo.generate(scale.keys, scale.seed);
    let run_cfg = RunConfig { concurrency: scale.concurrency };
    let cpu = CpuConfig::xeon_8468().scaled_for_keys(scale.keys);
    let dcfg = DcartConfig::default().scaled_for_keys(scale.keys).with_auto_prefix_skip(&keys);

    let mut points = Vec::new();
    let mut t = Table::new(&[
        "theta",
        "DCART x SMART",
        "shortcut hit %",
        "SMART contentions",
        "SOU imbalance",
    ]);
    // 1.2 is past the Gray sampler's domain — the tabulated inverse CDF
    // in `Zipfian` covers it — and steep enough to pressure one bucket
    // hard, the regime the adaptive sub-sharding targets.
    for theta in [0.2f64, 0.5, 0.8, 0.99, 1.2] {
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: scale.ops, mix: Mix::C, theta, seed: scale.seed },
        );
        let mut dcart = DcartAccel::new(dcfg);
        let d = dcart.run(&keys, &ops, &run_cfg);
        let s = CpuBaseline::smart(cpu).run(&keys, &ops, &run_cfg);
        let p = SkewPoint {
            theta,
            speedup_vs_smart: d.speedup_vs(&s),
            shortcut_hit_rate: d.counters.shortcut_hits as f64 / d.counters.ops.max(1) as f64,
            smart_contentions: s.counters.lock_contentions,
            dcart_imbalance: dcart.last_details().bucket_imbalance,
        };
        t.row(&[
            format!("{theta:.2}"),
            format!("{:.1}", p.speedup_vs_smart),
            format!("{:.1}", p.shortcut_hit_rate * 100.0),
            p.smart_contentions.to_string(),
            format!("{:.2}", p.dcart_imbalance),
        ]);
        points.push(p);
    }
    t.print();

    // The repro-report half of the load-observability satellite: one
    // profiled functional run at the steepest theta with adaptive
    // sub-sharding on (threshold 0.1 — IPGEO's hottest bucket carries
    // ~0.2 of a batch, so the bucket splits; 2 SOU threads; stealing off
    // so every field below is deterministic).
    let ops = generate_ops(
        &keys,
        &OpStreamConfig { count: scale.ops, mix: Mix::C, theta: 1.2, seed: scale.seed },
    );
    let mut prof_cfg = dcfg;
    prof_cfg.split_threshold = Some(0.1);
    let opts = dcart::ExecOpts { threads: 2, mode: dcart::TraverseMode::LevelWise, steal: false };
    struct NoSink;
    impl dcart::CttConsumer for NoSink {}
    let (_, _, load) =
        dcart::try_execute_ctt_profiled(&keys, &ops, &prof_cfg, 4_096, &opts, &mut NoSink)
            .expect("the profiled skew run injects no faults");
    let total: u64 = load.buckets.iter().map(|b| b.ops).sum();
    if let Some(hot) = load.buckets.iter().max_by_key(|b| b.ops) {
        println!(
            "per-bucket load at theta 1.20 (adaptive): bucket {} carries {} of {} ops \
             ({:.0} %), split {} time(s), ended with {} sub-shard(s)",
            hot.bucket,
            hot.ops,
            total,
            hot.ops as f64 * 100.0 / total.max(1) as f64,
            hot.splits,
            hot.subs_at_end
        );
    }
    println!("(extension: the paper's premise quantified — less similarity, less to coalesce)\n");
    let report = SkewReport { points, load };
    write_report(out_dir, "skew", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_engages_the_mechanisms() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-skew-test");
        let r = run(&scale, &tmp);
        let first = r.points.first().unwrap(); // near-uniform
        let last = r.points.last().unwrap(); // hotter than YCSB

        // Hot streams hit shortcuts more often (the baseline hit rate is
        // already high at any skew once ops outnumber keys — repetition,
        // not skew, creates most reuse — so the margin is modest).
        assert!(
            last.shortcut_hit_rate > first.shortcut_hit_rate + 0.02,
            "{} -> {}",
            first.shortcut_hit_rate,
            last.shortcut_hit_rate
        );
        // ... and collide the baselines far more often.
        assert!(last.smart_contentions > 2 * first.smart_contentions);
        // DCART's advantage grows with skew (the paper's premise).
        assert!(
            last.speedup_vs_smart > first.speedup_vs_smart,
            "{} -> {}",
            first.speedup_vs_smart,
            last.speedup_vs_smart
        );
        // DCART wins even near-uniform (combining still coalesces paths).
        assert!(first.speedup_vs_smart > 1.0);

        // The load histogram is populated, deterministic (stealing off),
        // and shows the steep stream actually splitting a hot bucket.
        assert!(!r.load.buckets.is_empty());
        assert_eq!(r.load.steal_events, 0);
        assert!(r.load.buckets.iter().any(|b| b.splits > 0), "theta 1.2 splits a hot bucket");
    }
}
