//! Durability soak: repeated crash/recover cycles under active chaos
//! faults.
//!
//! Where the crash matrix proves each crash *site* in isolation, the soak
//! drives one long stream through an unbounded sequence of cycles: every
//! cycle runs durably with the PR-2 fault plan active (HBM transients,
//! shortcut corruption, evict storms, pipeline stalls, queue overflows)
//! and a planned crash that rotates through all five [`CrashSite`]s. After
//! each simulated death the recovered state's cumulative answer digest is
//! checked against a fault-free reference trace at the exact batch the WAL
//! says was last durable — a digest check every checkpoint interval, not
//! just at the end. The run finishes when a cycle completes the stream,
//! and the final answer/tree digests must be bit-identical to the
//! fault-free, crash-free, non-durable reference.

use std::path::Path;

use dcart::{
    fold_digest, recover, run_durable, try_execute_ctt_threaded, CrashInjector, CrashPlan,
    CrashSite, CttConsumer, CttOpEvent, DcartConfig, DurabilityConfig, FaultPlan, PersistStats,
};
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// One crash/recover cycle of the soak.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoakCycle {
    /// Cycle index (0-based).
    pub cycle: u64,
    /// Crash site planned for this cycle (`None` once the stream finished).
    pub site: Option<String>,
    /// Whether the planned crash fired (the last cycle completes instead).
    pub crashed: bool,
    /// Batches durable after this cycle (recovered `next_seq`).
    pub durable_batches: u64,
    /// Torn WAL bytes truncated on the recovery that followed.
    pub torn_bytes: u64,
    /// Whether the recovered cumulative answer digest matched the
    /// fault-free reference trace at `durable_batches`.
    pub digest_check: bool,
}

/// Full soak report (`BENCH_soak.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoakReport {
    /// Total batches in the stream.
    pub batches: u64,
    /// Operations per batch.
    pub batch_size: usize,
    /// Crash/recover cycles survived before the stream completed.
    pub cycles: u64,
    /// Mid-stream digest checks that passed (must equal `cycles`).
    pub checks_passed: u64,
    /// Whether the final digests matched the fault-free reference.
    pub final_match: bool,
    /// Per-cycle details.
    pub trace: Vec<SoakCycle>,
    /// Persistence traffic accumulated across every cycle.
    pub persist: PersistStats,
}

/// Records the cumulative answer digest at every batch boundary, so
/// recovery points mid-stream can be checked, not just the final state.
#[derive(Default)]
struct DigestTrace {
    digest: u64,
    per_batch: Vec<u64>,
}

impl CttConsumer for DigestTrace {
    fn op(&mut self, ev: &CttOpEvent<'_>) {
        self.digest = fold_digest(self.digest, ev.answer);
    }
    fn batch_end(&mut self, _index: usize) {
        self.per_batch.push(self.digest);
    }
}

/// The PR-2 combined fault plan at soak intensity.
fn soak_faults(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        hbm_transient_rate: 0.05,
        shortcut_corrupt_rate: 0.1,
        evict_storm_rate: 0.5,
        pipeline_stall_rate: 0.05,
        pipeline_stall_cycles: 16,
        queue_overflow_rate: 0.5,
        ..FaultPlan::none()
    }
}

/// Runs the soak for `batches` batches at `seed` and writes
/// `BENCH_soak.json`.
///
/// # Panics
///
/// Panics if any mid-stream digest check fails, if the final digests
/// diverge from the fault-free reference, or if the soak fails to make
/// forward progress — the report is written first where possible.
pub fn run(scale: &Scale, out_dir: &Path, batches: u64, seed: u64) -> SoakReport {
    println!(
        "== Soak: {batches} batches through rotating crash/recover cycles under chaos faults =="
    );
    let n_keys = scale.keys.min(20_000);
    let batch_size = scale.concurrency.min(4_096);
    let threads = 2;
    let n_ops = (batches as usize) * batch_size;

    let keys = Workload::Ipgeo.generate(n_keys, seed);
    let ops = generate_ops(&keys, &OpStreamConfig { count: n_ops, mix: Mix::C, theta: 0.99, seed });
    let clean = DcartConfig::default().scaled_for_keys(n_keys);
    let mut faulted = clean;
    faulted.faults = soak_faults(seed ^ 0x50AC);

    // Fault-free, non-durable reference with a digest at every batch
    // boundary (the chaos invariant makes it comparable to faulted runs).
    let mut trace = DigestTrace::default();
    let (ref_tree, ref_stats) =
        try_execute_ctt_threaded(&keys, &ops, &clean, batch_size, threads, &mut trace)
            .expect("reference execution");
    let ref_tree_digest = dcart::tree_digest(&ref_tree);
    let ref_per_batch = trace.per_batch;

    let dir = std::env::temp_dir().join(format!("dcart-soak-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let dur = DurabilityConfig { dir: dir.clone(), checkpoint_every: 3, sync_commits: true };

    let mut cycles_trace: Vec<SoakCycle> = Vec::new();
    let mut persist = PersistStats::default();
    let mut checks_passed = 0u64;
    let mut final_outcome = None;
    // Each cycle either crashes (bounded by sites × offsets) or finishes;
    // the cap only guards against a livelock bug in the layer under test.
    let max_cycles = batches * 16 + 64;
    for cycle in 0..max_cycles {
        let site = CrashSite::ALL[(cycle % CrashSite::ALL.len() as u64) as usize];
        // Push the crash deeper into the run as cycles accumulate so the
        // soak makes forward progress while still dying mid-stream.
        let at = 1 + cycle % 3;
        let mut crash = CrashInjector::for_plan(CrashPlan { site, at, seed: seed ^ cycle });
        let out = run_durable(&keys, &ops, &faulted, batch_size, threads, &dur, &mut crash)
            .expect("soak cycle");
        persist.accumulate(&out.persist);

        if out.crashed.is_none() {
            final_outcome = Some(out);
            cycles_trace.push(SoakCycle {
                cycle,
                site: None,
                crashed: false,
                durable_batches: batches,
                torn_bytes: 0,
                digest_check: true,
            });
            break;
        }

        // Simulated death: recover and check the mid-stream digest against
        // the reference trace at the last durable batch.
        let st = recover(&keys, &faulted, threads, &dur).expect("recovery after soak crash");
        let expected = match st.next_seq {
            0 => 0,
            n => *ref_per_batch
                .get(n as usize - 1)
                .unwrap_or_else(|| panic!("recovered past the stream: batch {n}")),
        };
        let check = st.answer_digest == expected;
        if check {
            checks_passed += 1;
        }
        cycles_trace.push(SoakCycle {
            cycle,
            site: Some(site.name().to_string()),
            crashed: true,
            durable_batches: st.next_seq,
            torn_bytes: st.torn_bytes,
            digest_check: check,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let final_outcome = final_outcome.expect("soak never completed the stream");
    let final_match = final_outcome.answer_digest == ref_stats.answer_digest
        && final_outcome.tree_digest == ref_tree_digest;
    let cycles = cycles_trace.iter().filter(|c| c.crashed).count() as u64;

    let mut t = Table::new(&["cycle", "site", "durable", "torn B", "digest"]);
    for c in &cycles_trace {
        t.row(&[
            c.cycle.to_string(),
            c.site.clone().unwrap_or_else(|| "(completed)".into()),
            format!("{}/{batches}", c.durable_batches),
            c.torn_bytes.to_string(),
            if c.digest_check { "ok".into() } else { "FAIL".into() },
        ]);
    }
    t.print();
    println!();

    let report = SoakReport {
        batches,
        batch_size,
        cycles,
        checks_passed,
        final_match,
        trace: cycles_trace,
        persist,
    };
    write_report(out_dir, "BENCH_soak", &report);

    assert_eq!(
        report.checks_passed, report.cycles,
        "a mid-stream digest check failed after recovery"
    );
    assert!(report.final_match, "soak final digests diverged from the fault-free reference");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_survives_crash_cycles_at_small_n() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-soak-test");
        // `run` already asserts every digest check and the final identity.
        let r = run(&scale, &tmp, 8, 1234);
        assert!(r.final_match);
        assert!(r.cycles >= 1, "the soak must actually crash at least once");
        assert_eq!(r.checks_passed, r.cycles);
        assert!(r.persist.replayed_batches > 0 || r.persist.checkpoints > 0);
    }
}
