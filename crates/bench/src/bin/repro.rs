//! `repro` — regenerate every table and figure of the DCART paper.
//!
//! ```text
//! repro <exhibit> [--scale smoke|default|full] [--out DIR] [--jobs N]
//!                 [--sou-threads N] [--traverse level-wise|per-op]
//!                 [--steal] [--split-threshold F]
//!                 [--batches N] [--seed S]
//!
//! exhibits:
//!   table1   Table I   — DCART configuration
//!   fig2     Fig. 2    — motivation: baseline inefficiencies (a–e)
//!   fig3     Fig. 3    — operation distribution & node skew
//!   overall  Figs. 7/8/9/11 — contentions, matches, time, energy
//!   fig10    Fig. 10   — throughput vs P99 latency curves
//!   fig12    Fig. 12   — sensitivity to concurrency & write ratio
//!   ablate             — design-choice ablations (not in the paper)
//!   chaos              — differential fault-injection suite (robustness)
//!   crash              — crash-point recovery matrix (durability)
//!   soak               — crash/recover soak under chaos faults (durability)
//!   all                — everything above, in order
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use dcart_bench::{experiments, Scale};

const EXHIBITS: &str = "table1|fig2|fig3|overall|fig7|fig8|fig9|fig11|fig10|fig12|ablate|\
                        chaos|crash|soak|scans|indexes|fig6|skew|all";

fn print_usage() {
    eprintln!(
        "usage: repro <{EXHIBITS}> \
         [--scale smoke|default|full] [--out DIR] [--jobs N] [--sou-threads N] \
         [--traverse level-wise|per-op] [--steal] [--split-threshold F] \
         [--batches N] [--seed S]"
    );
}

/// One-line actionable failure: say what was wrong AND what would be right.
fn fail(msg: &str) -> ExitCode {
    eprintln!("repro: {msg}");
    print_usage();
    ExitCode::FAILURE
}

fn is_known_exhibit(name: &str) -> bool {
    matches!(
        name,
        "table1"
            | "fig2"
            | "fig2a"
            | "fig2b"
            | "fig2c"
            | "fig2d"
            | "fig2e"
            | "fig3"
            | "overall"
            | "fig7"
            | "fig8"
            | "fig9"
            | "fig11"
            | "fig10"
            | "fig12"
            | "fig12a"
            | "fig12b"
            | "ablate"
            | "ablations"
            | "chaos"
            | "crash"
            | "soak"
            | "scans"
            | "indexes"
            | "timeline"
            | "fig6"
            | "skew"
            | "all"
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(exhibit) = args.first().cloned() else {
        return fail("missing exhibit (pick one of the subcommands below)");
    };
    if matches!(exhibit.as_str(), "help" | "--help" | "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    if !is_known_exhibit(&exhibit) {
        return fail(&format!("unknown exhibit '{exhibit}'"));
    }
    let mut scale = Scale::default_scale();
    let mut out_dir = PathBuf::from("reports");
    let mut batches: u64 = 32;
    let mut seed_override: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(name) = args.get(i + 1) else {
                    return fail("--scale needs a value: smoke, default, or full");
                };
                let Some(s) = Scale::from_name(name) else {
                    return fail(&format!("unknown scale '{name}' (want smoke, default, or full)"));
                };
                scale = s;
                i += 2;
            }
            "--out" => {
                let Some(dir) = args.get(i + 1) else {
                    return fail("--out needs a directory path");
                };
                out_dir = PathBuf::from(dir);
                i += 2;
            }
            "--jobs" => {
                let Some(n) = args.get(i + 1) else {
                    return fail("--jobs needs a positive integer");
                };
                let Ok(n) = n.parse::<usize>() else {
                    return fail(&format!("--jobs expects a positive integer, got '{n}'"));
                };
                dcart_bench::parallel::set_jobs(n);
                i += 2;
            }
            "--sou-threads" => {
                let Some(n) = args.get(i + 1) else {
                    return fail("--sou-threads needs a positive integer");
                };
                let Ok(n) = n.parse::<usize>() else {
                    return fail(&format!("--sou-threads expects a positive integer, got '{n}'"));
                };
                dcart::set_sou_threads(n);
                i += 2;
            }
            "--traverse" => {
                // Escape hatch for A/B runs: both modes produce identical
                // reports, so this only ever changes wall-clock.
                let Some(name) = args.get(i + 1) else {
                    return fail("--traverse needs a mode: level-wise or per-op");
                };
                let mode = match name.as_str() {
                    "level-wise" => dcart::TraverseMode::LevelWise,
                    "per-op" => dcart::TraverseMode::PerOp,
                    other => {
                        return fail(&format!(
                            "unknown traverse mode '{other}' (want level-wise or per-op)"
                        ));
                    }
                };
                dcart::set_traverse_mode(mode);
                i += 2;
            }
            "--steal" => {
                // Work stealing moves shards between workers, never
                // results: reports are byte-identical with it on or off.
                dcart::set_work_stealing(true);
                i += 1;
            }
            "--split-threshold" => {
                // Adaptive hot-bucket sub-sharding: a fixed threshold
                // changes the (deterministic) split schedule, so reports
                // are identical across thread counts for any one value.
                let Some(f) = args.get(i + 1) else {
                    return fail("--split-threshold needs a fraction in [0, 1]");
                };
                let Ok(f) = f.parse::<f64>() else {
                    return fail(&format!("--split-threshold expects a number, got '{f}'"));
                };
                if !(0.0..=1.0).contains(&f) {
                    return fail(&format!("--split-threshold must be in [0, 1], got {f}"));
                }
                dcart::set_split_threshold(f);
                i += 2;
            }
            "--batches" => {
                let Some(n) = args.get(i + 1) else {
                    return fail("--batches needs a positive integer (soak length)");
                };
                let Ok(n) = n.parse::<u64>() else {
                    return fail(&format!("--batches expects a positive integer, got '{n}'"));
                };
                if n == 0 {
                    return fail("--batches must be at least 1");
                }
                batches = n;
                i += 2;
            }
            "--seed" => {
                let Some(n) = args.get(i + 1) else {
                    return fail("--seed needs an integer");
                };
                let Ok(n) = n.parse::<u64>() else {
                    return fail(&format!("--seed expects an unsigned integer, got '{n}'"));
                };
                seed_override = Some(n);
                i += 2;
            }
            other => {
                return fail(&format!("unknown option '{other}'"));
            }
        }
    }
    if let Some(s) = seed_override {
        scale.seed = s;
    }

    println!(
        "DCART reproduction | scale: {} keys, {} ops, {} in flight | {} worker(s) \
         | {} SOU thread(s) | reports: {}\n",
        scale.keys,
        scale.ops,
        scale.concurrency,
        dcart_bench::parallel::jobs(),
        dcart::sou_threads(),
        out_dir.display()
    );

    let t0 = std::time::Instant::now();
    match exhibit.as_str() {
        "table1" => {
            experiments::table1::run(&out_dir);
        }
        "fig2" | "fig2a" | "fig2b" | "fig2c" | "fig2d" | "fig2e" => {
            experiments::fig2::run(&scale, &out_dir);
        }
        "fig3" => {
            experiments::fig3::run(&scale, &out_dir);
        }
        "overall" | "fig7" | "fig8" | "fig9" | "fig11" => {
            experiments::overall::run(&scale, &out_dir);
        }
        "fig10" => {
            experiments::fig10::run(&scale, &out_dir);
        }
        "fig12" | "fig12a" | "fig12b" => {
            experiments::fig12::run(&scale, &out_dir);
        }
        "ablate" | "ablations" => {
            experiments::ablate::run(&scale, &out_dir);
        }
        "chaos" => {
            experiments::chaos::run(&scale, &out_dir);
        }
        "crash" => {
            experiments::crash::run(&scale, &out_dir);
        }
        "soak" => {
            experiments::soak::run(&scale, &out_dir, batches, scale.seed);
        }
        "scans" => {
            experiments::scans::run(&scale, &out_dir);
        }
        "indexes" => {
            experiments::indexes::run(&scale, &out_dir);
        }
        "timeline" | "fig6" => {
            experiments::timeline::run(&scale, &out_dir);
        }
        "skew" => {
            experiments::skew::run(&scale, &out_dir);
        }
        "all" => {
            experiments::table1::run(&out_dir);
            experiments::fig2::run(&scale, &out_dir);
            experiments::fig3::run(&scale, &out_dir);
            experiments::overall::run(&scale, &out_dir);
            experiments::fig10::run(&scale, &out_dir);
            experiments::fig12::run(&scale, &out_dir);
            experiments::ablate::run(&scale, &out_dir);
            experiments::chaos::run(&scale, &out_dir);
            experiments::crash::run(&scale, &out_dir);
            experiments::soak::run(&scale, &out_dir, batches, scale.seed);
            experiments::scans::run(&scale, &out_dir);
            experiments::indexes::run(&scale, &out_dir);
            experiments::timeline::run(&scale, &out_dir);
            experiments::skew::run(&scale, &out_dir);
        }
        other => {
            return fail(&format!("unknown exhibit '{other}'"));
        }
    }
    println!(
        "done: {exhibit} in {:.2} s wall with {} worker(s)",
        t0.elapsed().as_secs_f64(),
        dcart_bench::parallel::jobs()
    );
    ExitCode::SUCCESS
}
