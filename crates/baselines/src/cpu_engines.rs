//! The CPU baseline engines: ART (ROWEX), SMART, and Heart.
//!
//! All three execute the identical functional trace (see
//! [`execute_with_traces`](crate::execute_with_traces)) and differ in how
//! their concurrency-control protocol and caching structure cost it:
//!
//! | engine | concurrency control | extra structure |
//! |--------|--------------------|-----------------|
//! | ART    | ROWEX node locks (2 atomics per lock, full contention cost) | — |
//! | Heart  | CAS (1 atomic per lock point, cheaper handoff)              | — |
//! | SMART  | CAS                                                         | path cache skipping upper levels |
//!
//! This matches the paper's characterization: SMART is the strongest CPU
//! baseline under all circumstances (Fig. 2(a)), Heart sits between it and
//! plain ART, and all three remain dominated by traversal + sync time.

use dcart_mem::{Access, EnergyModel, SetAssocCache};
use dcart_workloads::{KeySet, Op};

use crate::cpu::{time_cpu_run, CpuActivity, CpuConfig};
use crate::engine::{IndexEngine, RunConfig};
use crate::exec::execute_with_traces;
use crate::path_cache::PathCache;
use crate::report::{Counters, RunReport};
use crate::windows::{ContentionWindow, RedundancyWindow};

/// Which CPU baseline protocol to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Protocol {
    /// ROWEX node-level write locks (ART [Leis et al. '16]).
    RowexLocks,
    /// CAS-based write points (Heart, SMART).
    Cas,
}

/// A CPU baseline engine (ART, SMART, or Heart).
///
/// # Examples
///
/// ```
/// use dcart_baselines::{CpuBaseline, CpuConfig, IndexEngine, RunConfig};
/// use dcart_workloads::{generate_ops, OpStreamConfig, Workload};
///
/// let keys = Workload::Ipgeo.generate(2_000, 1);
/// let ops = generate_ops(&keys, &OpStreamConfig { count: 5_000, ..Default::default() });
/// let mut smart = CpuBaseline::smart(CpuConfig::xeon_8468().scaled_for_keys(2_000));
/// let report = smart.run(&keys, &ops, &RunConfig::default());
/// assert_eq!(report.counters.ops, 5_000);
/// assert!(report.breakdown.sync_s > 0.0, "writes contend");
/// ```
#[derive(Debug)]
pub struct CpuBaseline {
    name: &'static str,
    protocol: Protocol,
    /// SMART's path cache parameters, if any.
    path_cache: Option<(usize, usize, usize)>,
    config: CpuConfig,
}

impl CpuBaseline {
    /// The ART baseline \[9\]: operation-centric traversal, ROWEX locks.
    /// Lock queues convoy harder than CAS retries, so the serialized
    /// contention cost is raised accordingly.
    pub fn art(mut config: CpuConfig) -> Self {
        config.contention_serial_ns *= 3.8;
        CpuBaseline { name: "ART", protocol: Protocol::RowexLocks, path_cache: None, config }
    }

    /// The Heart baseline \[17\]: CAS-based concurrency control.
    pub fn heart(config: CpuConfig) -> Self {
        CpuBaseline { name: "Heart", protocol: Protocol::Cas, path_cache: None, config }
    }

    /// The SMART baseline \[11\], ported to shared memory: CAS-based plus a
    /// path cache over 2-byte prefixes that skips the top two tree levels.
    pub fn smart(config: CpuConfig) -> Self {
        CpuBaseline {
            name: "SMART",
            protocol: Protocol::Cas,
            path_cache: Some((2, 2, 1 << 16)),
            config,
        }
    }

    /// The CPU configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }
}

impl IndexEngine for CpuBaseline {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&mut self, keys: &KeySet, ops: &[Op], run: &RunConfig) -> RunReport {
        let mut cache = SetAssocCache::new(self.config.cache_bytes, self.config.cache_ways);
        let mut redundancy = RedundancyWindow::new(run.concurrency);
        let mut contention = ContentionWindow::new(run.concurrency);
        let mut path_cache =
            self.path_cache.map(|(plen, skip, cap)| PathCache::new(plen, skip, cap));

        let mut counters = Counters::default();
        let mut activity = CpuActivity::default();
        let atomics_per_lock: u64 = match self.protocol {
            Protocol::RowexLocks => 2, // acquire + release
            Protocol::Cas => 1,
        };

        execute_with_traces(keys, ops, |op| {
            counters.ops += 1;
            if op.kind.is_write() {
                counters.writes += 1;
            } else {
                counters.reads += 1;
            }

            let visits = &op.trace.visits;
            let skip = match &mut path_cache {
                Some(pc) => pc.lookup(op.key, visits.len()),
                None => 0,
            };
            let kept = &visits[skip..];
            for v in kept {
                counters.nodes_traversed += 1;
                counters.useful_bytes += u64::from(v.useful_bytes);
                counters.fetched_bytes += u64::from(v.lines) * 64;
                // Replay the node's lines through the shared cache; the
                // first line of a node is a dependent chase.
                let base = u64::from(v.node.index()) * 256;
                for i in 0..u64::from(v.lines) {
                    match cache.access(base + i * 64) {
                        Access::Hit => activity.line_hits += 1,
                        Access::Miss => activity.line_misses += 1,
                    }
                }
            }
            redundancy.record_op(kept.iter().map(|v| v.node));

            // Matches scale with the visits actually performed.
            let matches = if visits.is_empty() {
                0
            } else {
                op.trace.partial_key_matches * kept.len() as u64 / visits.len() as u64
            };
            counters.partial_key_matches += matches;
            activity.matches += matches;

            // Operation-centric locking: every write op acquires its own
            // locks, colliding with concurrent ops in the window.
            if !op.trace.locks.is_empty() {
                counters.lock_acquisitions += op.trace.locks.len() as u64 * atomics_per_lock;
                contention.record_unit(op.trace.locks.iter().copied());
            }
        });

        counters.redundant_node_visits = redundancy.redundant_visits;
        let (totals, history) = contention.finish();
        counters.lock_contentions = totals.contentions;
        counters.offchip_accesses = activity.line_misses;
        counters.offchip_bytes = activity.line_misses * 64;
        counters.cache_hits = activity.line_hits;
        counters.cache_misses = activity.line_misses;

        activity.ops = counters.ops;
        activity.lock_acquisitions = counters.lock_acquisitions;
        activity.lock_contentions = totals.contentions;
        activity.critical_chain = totals.critical_chain;
        activity.max_queue_history = history;

        let timing = time_cpu_run(&self.config, &activity, &EnergyModel::cpu_xeon());
        RunReport {
            engine: self.name.to_string(),
            workload: keys.name.clone(),
            counters,
            time_s: timing.time_s,
            breakdown: timing.breakdown,
            energy_j: timing.energy_j,
            latency_mean_us: timing.latency_mean_us,
            latency_p99_us: timing.latency_p99_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

    fn small_config(keys: usize) -> CpuConfig {
        CpuConfig::xeon_8468().scaled_for_keys(keys)
    }

    fn run_engine(mut e: CpuBaseline, n_keys: usize, n_ops: usize, mix: Mix) -> RunReport {
        let keys = Workload::Ipgeo.generate(n_keys, 1);
        let ops = generate_ops(&keys, &OpStreamConfig { count: n_ops, mix, ..Default::default() });
        e.run(&keys, &ops, &RunConfig { concurrency: 4096 })
    }

    #[test]
    fn smart_beats_heart_beats_art() {
        let cfg = small_config(20_000);
        let art = run_engine(CpuBaseline::art(cfg), 20_000, 40_000, Mix::C);
        let heart = run_engine(CpuBaseline::heart(cfg), 20_000, 40_000, Mix::C);
        let smart = run_engine(CpuBaseline::smart(cfg), 20_000, 40_000, Mix::C);
        assert!(smart.time_s < heart.time_s, "{} vs {}", smart.time_s, heart.time_s);
        assert!(heart.time_s < art.time_s, "{} vs {}", heart.time_s, art.time_s);
    }

    #[test]
    fn smart_performs_fewer_matches_and_visits() {
        let cfg = small_config(20_000);
        let art = run_engine(CpuBaseline::art(cfg), 20_000, 40_000, Mix::C);
        let smart = run_engine(CpuBaseline::smart(cfg), 20_000, 40_000, Mix::C);
        assert!(smart.counters.partial_key_matches < art.counters.partial_key_matches * 8 / 10);
        assert!(smart.counters.nodes_traversed < art.counters.nodes_traversed);
    }

    #[test]
    fn traversal_and_sync_dominate() {
        // Paper Fig. 2(a): >95.8 % of SMART's time is traversal + sync.
        let cfg = small_config(20_000);
        let smart = run_engine(CpuBaseline::smart(cfg), 20_000, 40_000, Mix::C);
        let b = &smart.breakdown;
        let dominant = (b.traversal_s + b.sync_s) / b.total_s();
        assert!(dominant > 0.9, "traversal+sync share {dominant}");
    }

    #[test]
    fn redundancy_is_high_under_skew() {
        // Paper Fig. 2(b): 77.8–86.1 % of traversed nodes are redundant.
        let cfg = small_config(20_000);
        let art = run_engine(CpuBaseline::art(cfg), 20_000, 40_000, Mix::C);
        let r = art.counters.redundancy_ratio();
        assert!(r > 0.6, "redundancy {r}");
    }

    #[test]
    fn line_utilization_is_poor() {
        // Paper Fig. 2(c): ~20 % average cache-line utilization.
        let cfg = small_config(20_000);
        let art = run_engine(CpuBaseline::art(cfg), 20_000, 40_000, Mix::C);
        let u = art.counters.line_utilization();
        assert!(u < 0.4, "utilization {u}");
        assert!(u > 0.02, "utilization {u}");
    }

    #[test]
    fn write_ratio_degrades_throughput() {
        // Paper Fig. 2(e): performance deteriorates as writes increase.
        let cfg = small_config(10_000);
        let read_only = run_engine(CpuBaseline::art(cfg), 10_000, 30_000, Mix::A);
        let write_only = run_engine(CpuBaseline::art(cfg), 10_000, 30_000, Mix::E);
        assert!(write_only.time_s > read_only.time_s);
        assert!(write_only.breakdown.sync_fraction() > read_only.breakdown.sync_fraction());
    }

    #[test]
    fn more_concurrency_raises_sync_share() {
        // Paper Fig. 2(d): sync share grows with concurrent operations.
        let cfg = small_config(10_000);
        let keys = Workload::Ipgeo.generate(10_000, 1);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 30_000, mix: Mix::C, ..Default::default() },
        );
        let mut art = CpuBaseline::art(cfg);
        let low = art.run(&keys, &ops, &RunConfig { concurrency: 64 });
        let high = art.run(&keys, &ops, &RunConfig { concurrency: 16_384 });
        assert!(
            high.breakdown.sync_fraction() > low.breakdown.sync_fraction(),
            "{} vs {}",
            high.breakdown.sync_fraction(),
            low.breakdown.sync_fraction()
        );
    }
}
