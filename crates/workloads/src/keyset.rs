//! Key sets: the loaded keys of a workload plus sampling metadata.

use dcart_art::Key;

/// A workload's key material.
///
/// `keys` are loaded into the index before the measured operation stream
/// runs; `insert_pool` holds fresh keys (disjoint from `keys`) that insert
/// operations consume; `popularity` maps a popularity rank (0 = hottest) to
/// an index into `keys`, letting a single Zipfian sampler reproduce each
/// workload's characteristic skew — including IPGEO's per-prefix spikes
/// (paper Fig. 3), which are encoded by ordering hot-prefix keys first.
#[derive(Clone, Debug)]
pub struct KeySet {
    /// Workload name (paper nomenclature: IPGEO, DICT, EA, DE, RS, RD).
    pub name: String,
    /// Keys loaded into the index up front.
    pub keys: Vec<Key>,
    /// Fresh keys for insert operations, disjoint from `keys`.
    pub insert_pool: Vec<Key>,
    /// Popularity rank → index into `keys`.
    pub popularity: Vec<u32>,
}

impl KeySet {
    /// Creates a key set with a uniformly shuffled popularity order.
    pub(crate) fn with_shuffled_popularity(
        name: impl Into<String>,
        keys: Vec<Key>,
        insert_pool: Vec<Key>,
        rng: &mut impl rand::Rng,
    ) -> Self {
        use rand::seq::SliceRandom;
        let mut popularity: Vec<u32> = (0..keys.len() as u32).collect();
        popularity.shuffle(rng);
        KeySet { name: name.into(), keys, insert_pool, popularity }
    }

    /// The key at popularity rank `rank`.
    pub fn key_at_rank(&self, rank: u64) -> &Key {
        &self.keys[self.popularity[rank as usize] as usize]
    }

    /// Number of loaded keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if no keys were generated.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn popularity_is_a_permutation() {
        let keys: Vec<Key> = (0..100u64).map(Key::from_u64).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let ks = KeySet::with_shuffled_popularity("t", keys, Vec::new(), &mut rng);
        let mut seen = [false; 100];
        for &p in &ks.popularity {
            assert!(!seen[p as usize], "duplicate rank target");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
