//! The six paper workloads, addressable by name, with scaling.

use serde::{Deserialize, Serialize};

use crate::{dict, email, ipgeo, synth, KeySet};

/// The workloads of the paper's evaluation (§IV-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Workload {
    /// IP-address records (GeoLite2-Country stand-in).
    Ipgeo,
    /// English dictionary words.
    Dict,
    /// E-mail addresses.
    Email,
    /// Dense 8-byte integers.
    DenseInt,
    /// Random sparse 8-byte integers.
    RandomSparse,
    /// Random dense 8-byte integers.
    RandomDense,
}

impl Workload {
    /// All six, in the paper's presentation order.
    pub const ALL: [Workload; 6] = [
        Workload::Ipgeo,
        Workload::Dict,
        Workload::Email,
        Workload::DenseInt,
        Workload::RandomSparse,
        Workload::RandomDense,
    ];

    /// The three "real-world" workloads (Figs. 3 and 10 use only these).
    pub const REAL_WORLD: [Workload; 3] = [Workload::Ipgeo, Workload::Dict, Workload::Email];

    /// The paper's short name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Ipgeo => "IPGEO",
            Workload::Dict => "DICT",
            Workload::Email => "EA",
            Workload::DenseInt => "DE",
            Workload::RandomSparse => "RS",
            Workload::RandomDense => "RD",
        }
    }

    /// Parses a paper short name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Workload> {
        let upper = name.to_ascii_uppercase();
        Workload::ALL.into_iter().find(|w| w.name() == upper)
    }

    /// Generates the key set at `n` keys with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> KeySet {
        match self {
            Workload::Ipgeo => ipgeo::generate(n, seed),
            Workload::Dict => dict::generate(n, seed),
            Workload::Email => email::generate(n, seed),
            Workload::DenseInt => synth::dense(n, seed),
            Workload::RandomSparse => synth::random_sparse(n, seed),
            Workload::RandomDense => synth::random_dense(n, seed),
        }
    }

    /// Key count at paper scale (50 M for the synthetic workloads; the
    /// real-world sets are of the same order).
    pub fn paper_scale_keys(self) -> usize {
        50_000_000
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("ipgeo"), Some(Workload::Ipgeo));
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn all_generate_nonempty() {
        for w in Workload::ALL {
            let ks = w.generate(200, 1);
            assert_eq!(ks.keys.len(), 200, "{w}");
            assert!(!ks.insert_pool.is_empty(), "{w}");
        }
    }
}
