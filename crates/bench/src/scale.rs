//! Experiment scale presets.

use serde::{Deserialize, Serialize};

/// The size of a reproduction run.
///
/// The paper loads 50 M keys and issues up to 50 M operations per run; the
/// `default` preset shrinks both by 50× (with caches/buffers shrunk in
/// proportion by the platform models) so the complete exhibit suite runs in
/// minutes. Reported *ratios* are stable across scales; see EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scale {
    /// Keys loaded before the measured stream.
    pub keys: usize,
    /// Operations in the measured stream.
    pub ops: usize,
    /// In-flight (concurrent) operations — the combining batch size.
    pub concurrency: usize,
    /// Seed for all generators.
    pub seed: u64,
}

impl Scale {
    /// Tiny runs for CI and smoke testing (~seconds).
    pub fn smoke() -> Self {
        Scale { keys: 10_000, ops: 60_000, concurrency: 8_192, seed: 42 }
    }

    /// The default reproduction scale (~minutes for the full suite).
    pub fn default_scale() -> Self {
        Scale { keys: 200_000, ops: 2_000_000, concurrency: 65_536, seed: 42 }
    }

    /// Paper scale: 50 M keys, 50 M operations. Hours of runtime and
    /// ~10 GB of memory; use on a large machine only.
    pub fn paper() -> Self {
        Scale { keys: 50_000_000, ops: 50_000_000, concurrency: 1 << 20, seed: 42 }
    }

    /// Parses `smoke` / `default` / `full`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "default" => Some(Self::default_scale()),
            "full" | "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(Scale::from_name("smoke").unwrap().keys, 10_000);
        assert_eq!(Scale::from_name("default").unwrap().keys, 200_000);
        assert_eq!(Scale::from_name("full").unwrap().keys, 50_000_000);
        assert!(Scale::from_name("bogus").is_none());
    }
}
