//! Known-good twin of `a1_bad.rs`: the Relaxed site carries its
//! justification marker, and Acquire/Release pairs need none — the
//! pairing is the documentation.

pub fn bump(counter: &AtomicU64) -> u64 {
    // dcart_lint::atomic(monotonic advisory counter, read racily by design)
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}

pub fn observe(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
