// Fixture: P1 must stay quiet on invariant-message escapes, fallible
// returns, and anything inside a `#[cfg(test)]` region.
pub fn policy_compliant(x: Option<u32>, r: Result<u32, String>) -> Result<u32, String> {
    let a = x.expect("caller guarantees a resolved slot");
    let b = r?;
    match a.checked_add(b) {
        Some(v) => Ok(v),
        None => unreachable!("inputs are bounded by the 16-bit op encoding"),
    }
}

pub fn wrapped_message(x: Option<u32>) -> u32 {
    x.expect(
        "a long invariant message that the formatter wrapped onto its own line",
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if v.is_none() {
            panic!("tests are exempt");
        }
    }
}
