//! SARIF 2.1.0 output for lint/analyze findings.
//!
//! Hand-rolled JSON (the build is offline; xtask stays dependency-free).
//! The shape is the minimal subset GitHub code scanning consumes: one run,
//! a tool driver with per-rule metadata, and one result per diagnostic
//! with a physical location. Results are emitted in the diagnostics'
//! (already sorted) order so the artifact is byte-stable.

use crate::rules::{Diagnostic, RULE_SUMMARIES};

/// Renders diagnostics as a SARIF 2.1.0 log for the named tool.
pub fn render(tool: &str, diags: &[Diagnostic]) -> String {
    let mut s = String::with_capacity(4096 + diags.len() * 256);
    s.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    s.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    s.push_str(&format!("\"name\":{},", quote(tool)));
    s.push_str("\"informationUri\":\"https://github.com/\",\"rules\":[");
    for (i, (id, summary)) in RULE_SUMMARIES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            quote(id),
            quote(summary)
        ));
    }
    s.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{},\
             \"uriBaseId\":\"%SRCROOT%\"}},\"region\":{{\"startLine\":{},\
             \"startColumn\":{}}}}}}}]}}",
            quote(d.rule),
            quote(&format!("{} (help: {})", d.msg, d.help)),
            quote(&d.path),
            d.line,
            d.col
        ));
    }
    s.push_str("]}]}");
    s
}

/// JSON string quoting with the escapes SARIF content can contain.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shape_with_escapes() {
        let d = Diagnostic {
            path: "crates/core/src/x.rs".to_string(),
            line: 3,
            col: 7,
            rule: "D1",
            msg: "a \"quoted\" thing".to_string(),
            help: "line\nbreak".to_string(),
        };
        let out = render("dcart-lint", &[d]);
        assert!(out.contains("\"version\":\"2.1.0\""));
        assert!(out.contains("\"ruleId\":\"D1\""));
        assert!(out.contains("\\\"quoted\\\""));
        assert!(out.contains("\\n"));
        assert!(out.contains("\"startLine\":3"));
        // Balanced braces/brackets — cheap structural sanity.
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_results_are_still_a_run() {
        let out = render("dcart-analyze", &[]);
        assert!(out.contains("\"results\":[]"));
        assert!(out.contains("dcart-analyze"));
    }
}
