//! Functional trace execution: run an operation stream over a real ART
//! once, streaming each operation's exact [`OpTrace`] to a consumer.
//!
//! Every engine model (baseline or DCART) consumes the same functional
//! execution — they differ only in how they *cost* the events (which
//! visits are skipped by caches/shortcuts, what locks cost, how much
//! parallel hardware divides the work). This guarantees the comparisons
//! are apples-to-apples: identical tree, identical operations.

use dcart_art::{Art, Key, OpTrace, RecordingTracer};
use dcart_workloads::{KeySet, Op, OpKind};

/// One executed operation, handed to the consumer with its trace.
#[derive(Debug)]
pub struct ExecutedOp<'a> {
    /// Position in the operation stream.
    pub index: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// The key operated on.
    pub key: &'a Key,
    /// The exact node-visit / lock / match trace.
    pub trace: &'a OpTrace,
}

/// Loads `keys` into a fresh ART and executes `ops` over it, calling
/// `consumer` with every operation's trace.
///
/// Returns the tree in its final state (for structural inspection).
///
/// # Examples
///
/// ```
/// use dcart_baselines::execute_with_traces;
/// use dcart_workloads::{generate_ops, synth, OpStreamConfig};
///
/// let keys = synth::dense(100, 1);
/// let ops = generate_ops(&keys, &OpStreamConfig { count: 500, ..Default::default() });
/// let mut visits = 0u64;
/// execute_with_traces(&keys, &ops, |op| visits += op.trace.visits.len() as u64);
/// assert!(visits >= 500, "every op fetches at least one node");
/// ```
///
/// # Panics
///
/// Panics if the key set is not prefix-free (workload generators guarantee
/// it is).
pub fn execute_with_traces<F>(keys: &KeySet, ops: &[Op], mut consumer: F) -> Art<u64>
where
    F: FnMut(ExecutedOp<'_>),
{
    let mut art: Art<u64> = Art::new();
    art.load_indexed(&keys.keys).expect("workload keys are prefix-free");
    let mut tracer = RecordingTracer::new();
    for (index, op) in ops.iter().enumerate() {
        tracer.clear();
        match op.kind {
            OpKind::Read => {
                let _ = art.get_traced(&op.key, &mut tracer);
            }
            OpKind::Update | OpKind::Insert => {
                art.insert_traced(op.key.clone(), op.value, &mut tracer)
                    .expect("workload keys are prefix-free");
            }
            OpKind::Remove => {
                let _ = art.remove_traced(&op.key, &mut tracer);
            }
            OpKind::Scan => {
                let _ = art.scan_traced(op.key.as_bytes(), op.value as usize, &mut tracer);
            }
        }
        consumer(ExecutedOp { index, kind: op.kind, key: &op.key, trace: &tracer.trace });
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcart_workloads::{generate_ops, synth, Mix, OpStreamConfig};

    #[test]
    fn every_op_produces_a_trace() {
        let keys = synth::dense(1_000, 1);
        let ops = generate_ops(&keys, &OpStreamConfig { count: 2_000, ..Default::default() });
        let mut seen = 0usize;
        let mut visits = 0u64;
        execute_with_traces(&keys, &ops, |op| {
            seen += 1;
            visits += op.trace.visits.len() as u64;
            assert!(!op.trace.visits.is_empty(), "every op touches at least the root");
        });
        assert_eq!(seen, 2_000);
        assert!(visits >= 2_000);
    }

    #[test]
    fn reads_do_not_lock_inserts_do() {
        let keys = synth::dense(500, 2);
        let reads =
            generate_ops(&keys, &OpStreamConfig { count: 500, mix: Mix::A, ..Default::default() });
        let mut lock_events = 0u64;
        execute_with_traces(&keys, &reads, |op| {
            lock_events += op.trace.locks.len() as u64;
        });
        assert_eq!(lock_events, 0, "pure reads acquire no write locks");

        let writes =
            generate_ops(&keys, &OpStreamConfig { count: 500, mix: Mix::E, ..Default::default() });
        let mut lock_events = 0u64;
        execute_with_traces(&keys, &writes, |op| {
            lock_events += op.trace.locks.len() as u64;
        });
        assert!(lock_events >= 500, "every write locks at least one node");
    }

    #[test]
    fn empty_op_stream_loads_keys_and_calls_no_consumer() {
        let keys = synth::dense(50, 4);
        let mut calls = 0usize;
        let art = execute_with_traces(&keys, &[], |_| calls += 1);
        assert_eq!(calls, 0, "no operations, no consumer events");
        assert_eq!(art.len(), 50, "bulk load runs even with no operations");
    }

    #[test]
    fn single_op_stream_produces_exactly_one_event() {
        let keys = synth::dense(50, 5);
        let op = Op { kind: OpKind::Read, key: keys.keys[0].clone(), value: 0 };
        let mut events = 0usize;
        execute_with_traces(&keys, std::slice::from_ref(&op), |e| {
            events += 1;
            assert_eq!(e.index, 0);
            assert!(!e.trace.visits.is_empty());
        });
        assert_eq!(events, 1);
    }

    #[test]
    fn final_tree_reflects_inserts() {
        let keys = synth::dense(100, 3);
        let ops = generate_ops(
            &keys,
            &OpStreamConfig { count: 1_000, mix: Mix::E, ..Default::default() },
        );
        let inserts: std::collections::BTreeSet<&[u8]> =
            ops.iter().filter(|o| o.kind == OpKind::Insert).map(|o| o.key.as_bytes()).collect();
        let art = execute_with_traces(&keys, &ops, |_| {});
        assert_eq!(art.len(), 100 + inserts.len());
    }
}
