//! Deep structural validation of an [`Art`].
//!
//! The checker walks the whole tree and verifies every invariant the
//! algorithms rely on. It is used by the property-based tests after random
//! operation sequences, and is available to users as
//! [`Art::check_invariants`].

use crate::node::{Node, NodeId};
use crate::tree::Art;

/// A violated structural invariant, as reported by
/// [`Art::check_invariants`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Violation {
    /// An inner node has fewer than 2 children (it should have been merged
    /// into its single child, or removed).
    UnderfullInner {
        /// The offending node.
        node: NodeId,
        /// Its child count.
        children: usize,
    },
    /// A leaf's key does not start with the path bytes leading to it.
    LeafOffPath {
        /// The offending leaf.
        node: NodeId,
        /// Depth at which the mismatch occurred.
        depth: usize,
    },
    /// A leaf's key is shorter than its path (would have to end inside an
    /// inner node).
    LeafTooShort {
        /// The offending leaf.
        node: NodeId,
    },
    /// The number of reachable leaves disagrees with [`Art::len`].
    LenMismatch {
        /// Leaves reachable from the root.
        reachable_leaves: usize,
        /// What `len()` claims.
        len: usize,
    },
    /// Allocated node count disagrees with reachable node count (leak or
    /// dangling reference).
    NodeCountMismatch {
        /// Nodes reachable from the root.
        reachable: usize,
        /// Nodes allocated in the arena.
        allocated: usize,
    },
    /// A node is referenced by more than one parent slot.
    SharedNode {
        /// The multiply-referenced node.
        node: NodeId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnderfullInner { node, children } => {
                write!(f, "inner node {node:?} has only {children} children")
            }
            Violation::LeafOffPath { node, depth } => {
                write!(f, "leaf {node:?} key diverges from its path at depth {depth}")
            }
            Violation::LeafTooShort { node } => {
                write!(f, "leaf {node:?} key is shorter than its path")
            }
            Violation::LenMismatch { reachable_leaves, len } => {
                write!(f, "{reachable_leaves} reachable leaves but len() = {len}")
            }
            Violation::NodeCountMismatch { reachable, allocated } => {
                write!(f, "{reachable} reachable nodes but {allocated} allocated")
            }
            Violation::SharedNode { node } => write!(f, "node {node:?} has two parents"),
        }
    }
}

impl<V> Art<V> {
    /// Walks the entire tree and returns every violated structural
    /// invariant (empty = healthy):
    ///
    /// * every inner node has ≥ 2 children (path compression invariant);
    /// * every leaf's key extends the byte path leading to it;
    /// * each node has exactly one parent;
    /// * reachable leaves equal [`Art::len`]; reachable nodes equal the
    ///   arena's live-node count.
    pub fn check_invariants(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut reachable = 0usize;
        let mut leaves = 0usize;
        let mut seen = std::collections::BTreeSet::new();

        let mut stack: Vec<(NodeId, Vec<u8>)> = Vec::new();
        if let Some(root) = self.root() {
            stack.push((root, Vec::new()));
        }
        while let Some((id, path)) = stack.pop() {
            if !seen.insert(id) {
                violations.push(Violation::SharedNode { node: id });
                continue;
            }
            reachable += 1;
            match self.node(id).expect("reachable ids are live") {
                Node::Leaf { key, .. } => {
                    leaves += 1;
                    let kb = key.as_bytes();
                    if kb.len() < path.len() {
                        violations.push(Violation::LeafTooShort { node: id });
                    } else if kb[..path.len()] != path[..] {
                        let depth = kb.iter().zip(&path).take_while(|(a, b)| a == b).count();
                        violations.push(Violation::LeafOffPath { node: id, depth });
                    }
                }
                Node::Inner(inner) => {
                    let n = inner.children.len();
                    if n < 2 {
                        violations.push(Violation::UnderfullInner { node: id, children: n });
                    }
                    let mut base = path.clone();
                    base.extend_from_slice(&inner.prefix);
                    for (edge, child) in inner.children.iter() {
                        let mut child_path = base.clone();
                        child_path.push(edge);
                        stack.push((child, child_path));
                    }
                }
            }
        }

        if leaves != self.len() {
            violations.push(Violation::LenMismatch { reachable_leaves: leaves, len: self.len() });
        }
        if reachable != self.node_count() {
            violations
                .push(Violation::NodeCountMismatch { reachable, allocated: self.node_count() });
        }
        violations
    }

    /// Asserts the tree is structurally sound.
    ///
    /// # Panics
    ///
    /// Panics with the list of violations if any invariant is broken.
    pub fn assert_invariants(&self) {
        let v = self.check_invariants();
        assert!(v.is_empty(), "ART invariant violations: {v:?}");
    }

    /// Histogram of leaf depths (nodes on the path from the root,
    /// inclusive): index `d` counts leaves at depth `d`. The paper's
    /// traversal costs are directly proportional to these depths.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        let mut stack: Vec<(NodeId, usize)> = self.root().map(|r| (r, 1)).into_iter().collect();
        while let Some((id, depth)) = stack.pop() {
            match self.node(id).expect("reachable ids are live") {
                Node::Leaf { .. } => {
                    if hist.len() <= depth {
                        hist.resize(depth + 1, 0);
                    }
                    hist[depth] += 1;
                }
                Node::Inner(inner) => {
                    stack.extend(inner.children.iter().map(|(_, c)| (c, depth + 1)));
                }
            }
        }
        hist
    }

    /// Mean leaf depth; `0.0` for an empty tree.
    pub fn mean_depth(&self) -> f64 {
        let hist = self.depth_histogram();
        let (mut total, mut weighted) = (0usize, 0usize);
        for (d, &count) in hist.iter().enumerate() {
            total += count;
            weighted += d * count;
        }
        if total == 0 {
            0.0
        } else {
            weighted as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key;

    #[test]
    fn healthy_tree_has_no_violations() {
        let mut art = Art::new();
        for v in 0..5_000u64 {
            art.insert(Key::from_u64(v.wrapping_mul(0x9E37_79B9_7F4A_7C15)), v).unwrap();
        }
        art.assert_invariants();
    }

    #[test]
    fn invariants_hold_through_churn() {
        let mut art = Art::new();
        for round in 0..5u64 {
            for v in 0..2_000u64 {
                art.insert(Key::from_u64(v * 3 + round), v).unwrap();
            }
            for v in (0..2_000u64).step_by(2) {
                art.remove(&Key::from_u64(v * 3 + round));
            }
            art.assert_invariants();
        }
    }

    #[test]
    fn empty_tree_is_healthy() {
        let art: Art<u8> = Art::new();
        assert!(art.check_invariants().is_empty());
        assert_eq!(art.depth_histogram(), Vec::<usize>::new());
        assert_eq!(art.mean_depth(), 0.0);
    }

    #[test]
    fn depth_histogram_counts_all_leaves() {
        let mut art = Art::new();
        for v in 0..10_000u64 {
            art.insert(Key::from_u64(v), v).unwrap();
        }
        let hist = art.depth_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 10_000);
        // Dense 8-byte keys with path compression: shallow tree.
        assert!(art.mean_depth() < 6.0, "mean depth {}", art.mean_depth());
        assert!(art.mean_depth() >= 2.0);
    }

    #[test]
    fn violation_messages_render() {
        let v = Violation::UnderfullInner { node: crate::NodeId::from_index(3), children: 1 };
        assert!(v.to_string().contains("only 1 children"));
        let v = Violation::LenMismatch { reachable_leaves: 2, len: 3 };
        assert!(v.to_string().contains("len() = 3"));
    }
}
