//! Property tests for the DCARTNET wire codec: encode→frame→decode is
//! the identity for every request and response, and *no* corruption —
//! truncation, bit flips, random garbage — ever produces anything but a
//! typed [`WireError`]. The peer is untrusted; a panic here is a
//! remote-triggered crash.

use std::io::Cursor;

use dcart_engine::RejectReason;
use dcart_server::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, Request,
    RequestKind, Response, Status, WireError,
};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = RequestKind> {
    prop_oneof![
        Just(RequestKind::Get),
        Just(RequestKind::Insert),
        Just(RequestKind::Remove),
        Just(RequestKind::Scan),
        Just(RequestKind::Stats),
        Just(RequestKind::Shutdown),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (any::<u64>(), kind_strategy(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(req_id, kind, budget_ns, key, value)| Request { req_id, kind, budget_ns, key, value },
    )
}

fn response_strategy() -> impl Strategy<Value = Response> {
    let reject = prop_oneof![
        Just(RejectReason::Overloaded),
        Just(RejectReason::DeadlineExceeded),
        Just(RejectReason::ShedScan),
        Just(RejectReason::ShedRead),
        Just(RejectReason::Draining),
    ];
    prop_oneof![
        (any::<u64>(), any::<bool>(), any::<u64>())
            .prop_map(|(id, some, v)| Response::ok(id, some.then_some(v))),
        (any::<u64>(), reject, any::<u64>())
            .prop_map(|(id, r, retry)| Response::rejected(id, r, retry)),
        any::<u64>().prop_map(Response::error),
        // An ok response carrying a payload (the stats frame shape).
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256)).prop_map(|(id, p)| {
            let mut r = Response::ok(id, None);
            r.payload = p;
            r
        }),
    ]
}

/// De-frames `bytes` exactly as the connection reader does, returning the
/// decoded body or the typed error.
fn deframe(bytes: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
    read_frame(&mut Cursor::new(bytes))
}

proptest! {
    #[test]
    fn request_roundtrip_is_identity(req in request_strategy()) {
        let frame = encode_request(&req);
        let body = deframe(&frame).expect("well-formed frame").expect("not EOF");
        let back = decode_request(&body).expect("decodes");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrip_is_identity(resp in response_strategy()) {
        let frame = encode_response(&resp);
        let body = deframe(&frame).expect("well-formed frame").expect("not EOF");
        let back = decode_response(&body).expect("decodes");
        prop_assert_eq!(back.req_id, resp.req_id);
        prop_assert_eq!(back.status, resp.status);
        prop_assert_eq!(back.reject, resp.reject);
        prop_assert_eq!(back.retry_after_ns, resp.retry_after_ns);
        prop_assert_eq!(back.value, resp.value);
        prop_assert_eq!(back.payload, resp.payload);
    }

    /// Any truncation of a valid frame is a typed error (or a clean EOF
    /// for the zero-length prefix) — never a panic, never a bogus decode.
    #[test]
    fn truncation_never_panics(req in request_strategy(), cut in 0usize..64) {
        let frame = encode_request(&req);
        let cut = cut.min(frame.len().saturating_sub(1));
        match deframe(&frame[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
            Err(_) => {} // typed error: correct
        }
    }

    /// A single flipped bit anywhere in the frame is caught: by the magic
    /// check, the length/cap check, or the checksum. It never yields a
    /// *successfully decoded different request*.
    #[test]
    fn bit_flips_never_yield_wrong_decodes(
        req in request_strategy(),
        byte_idx in 0usize..64,
        bit in 0u8..8,
    ) {
        let mut frame = encode_request(&req);
        let idx = byte_idx % frame.len();
        frame[idx] ^= 1 << bit;
        match deframe(&frame) {
            Err(_) => {}  // typed rejection: correct
            Ok(None) => prop_assert!(false, "corrupt frame read as clean EOF"),
            Ok(Some(body)) => {
                // The only way corruption survives de-framing is a flip
                // inside the length prefix that still frames a checksummed
                // region — impossible with crc64 over the body. If the
                // body did come back, it must decode to the original.
                let back = decode_request(&body).expect("decodes");
                prop_assert_eq!(back, req);
            }
        }
    }

    /// Random garbage through the de-framer: typed errors only.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = deframe(&bytes);
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Back-to-back frames on one stream de-frame in order (the pipelined
    /// client depends on this).
    #[test]
    fn pipelined_frames_deframe_in_order(reqs in proptest::collection::vec(request_strategy(), 1..8)) {
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&encode_request(r));
        }
        let mut cursor = Cursor::new(stream.as_slice());
        for expected in &reqs {
            let body = read_frame(&mut cursor).expect("frame").expect("not EOF");
            prop_assert_eq!(&decode_request(&body).expect("decodes"), expected);
        }
        prop_assert!(read_frame(&mut cursor).expect("clean tail").is_none());
    }
}

#[test]
fn status_codes_are_stable() {
    // Wire stability: these byte values are the protocol.
    assert_eq!(RequestKind::Get.code(), 0);
    assert_eq!(RequestKind::Insert.code(), 1);
    assert_eq!(RequestKind::Remove.code(), 2);
    assert_eq!(RequestKind::Scan.code(), 3);
    assert_eq!(RequestKind::Stats.code(), 4);
    assert_eq!(RequestKind::Shutdown.code(), 5);
    assert_eq!(Status::Ok as u8, 0);
    assert_eq!(Status::Rejected as u8, 1);
    assert_eq!(Status::Error as u8, 2);
}
