//! Figs. 7, 8, 9, 11 — the overall comparison (paper §IV-B): lock
//! contentions, partial-key matches, execution time, and energy for all
//! six engines over all six workloads.

use std::path::Path;

use dcart_workloads::Workload;
use serde::{Deserialize, Serialize};

use crate::matrix::find;
use crate::{engine_names, run_matrix, write_report, MatrixEntry, Scale, Table};

/// The paper-reported ranges for the headline ratios (min, max).
pub mod paper_bands {
    /// DCART speedup over ART (Fig. 9).
    pub const SPEEDUP_VS_ART: (f64, f64) = (123.8, 151.7);
    /// DCART speedup over SMART (Fig. 9).
    pub const SPEEDUP_VS_SMART: (f64, f64) = (35.9, 44.2);
    /// DCART speedup over CuART (Fig. 9).
    pub const SPEEDUP_VS_CUART: (f64, f64) = (21.1, 31.2);
    /// DCART energy saving over ART (Fig. 11).
    pub const ENERGY_VS_ART: (f64, f64) = (315.1, 493.5);
    /// DCART energy saving over SMART (Fig. 11).
    pub const ENERGY_VS_SMART: (f64, f64) = (92.7, 148.9);
    /// DCART energy saving over CuART (Fig. 11).
    pub const ENERGY_VS_CUART: (f64, f64) = (71.1, 126.2);
    /// DCART energy saving over DCART-C (Fig. 11).
    pub const ENERGY_VS_DCART_C: (f64, f64) = (48.1, 97.6);
    /// DCART(-C) lock contentions as a fraction of the others' (Fig. 7).
    pub const CONTENTION_FRACTION: (f64, f64) = (0.032, 0.197);
    /// DCART(-C) partial-key matches vs ART (Fig. 8).
    pub const MATCHES_VS_ART: (f64, f64) = (0.032, 0.057);
    /// DCART(-C) partial-key matches vs SMART (Fig. 8).
    pub const MATCHES_VS_SMART: (f64, f64) = (0.065, 0.143);
    /// DCART(-C) partial-key matches vs CuART (Fig. 8).
    pub const MATCHES_VS_CUART: (f64, f64) = (0.088, 0.159);
}

/// Full overall-comparison report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverallReport {
    /// The raw matrix (all engines × all workloads).
    pub matrix: Vec<MatrixEntry>,
    /// Per-workload DCART speedups over (ART, SMART, CuART, DCART-C).
    pub speedups: Vec<(String, f64, f64, f64, f64)>,
    /// Per-workload DCART energy savings over (ART, SMART, CuART, DCART-C).
    pub energy_savings: Vec<(String, f64, f64, f64, f64)>,
}

/// Runs the matrix and prints Figs. 7, 8, 9, 11; writes `overall.json`.
pub fn run(scale: &Scale, out_dir: &Path) -> OverallReport {
    println!("== Figs. 7/8/9/11: overall comparison (all engines × all workloads) ==");
    let matrix = run_matrix(&engine_names(), &Workload::ALL, scale);

    // Fig. 7 — lock contentions.
    println!("\n-- Fig. 7: lock contentions --");
    let mut t = Table::new(&[
        "workload",
        "ART",
        "Heart",
        "SMART",
        "CuART",
        "DCART-C",
        "DCART",
        "DCART/ART %",
    ]);
    for w in Workload::ALL {
        let c = |e: &str| find(&matrix, e, w.name()).counters.lock_contentions;
        let ratio = c("DCART") as f64 / c("ART").max(1) as f64;
        t.row(&[
            w.name().to_string(),
            c("ART").to_string(),
            c("Heart").to_string(),
            c("SMART").to_string(),
            c("CuART").to_string(),
            c("DCART-C").to_string(),
            c("DCART").to_string(),
            format!("{:.1}", ratio * 100.0),
        ]);
    }
    t.print();
    println!("paper: DCART(-C) contentions are 3.2–19.7 % of the other solutions'\n");

    // Fig. 8 — partial-key matches.
    println!("-- Fig. 8: partial-key matches --");
    let mut t = Table::new(&[
        "workload",
        "ART",
        "Heart",
        "SMART",
        "CuART",
        "DCART",
        "vs ART %",
        "vs SMART %",
        "vs CuART %",
    ]);
    for w in Workload::ALL {
        let m = |e: &str| find(&matrix, e, w.name()).counters.partial_key_matches;
        let d = m("DCART") as f64;
        t.row(&[
            w.name().to_string(),
            m("ART").to_string(),
            m("Heart").to_string(),
            m("SMART").to_string(),
            m("CuART").to_string(),
            m("DCART").to_string(),
            format!("{:.1}", d / m("ART").max(1) as f64 * 100.0),
            format!("{:.1}", d / m("SMART").max(1) as f64 * 100.0),
            format!("{:.1}", d / m("CuART").max(1) as f64 * 100.0),
        ]);
    }
    t.print();
    println!(
        "paper: DCART(-C) matches are 3.2–5.7 % of ART, 6.5–14.3 % of SMART, 8.8–15.9 % of CuART\n"
    );

    // Fig. 9 — execution time.
    println!("-- Fig. 9: execution time --");
    let mut t = Table::new(&[
        "workload",
        "ART s",
        "Heart s",
        "SMART s",
        "CuART s",
        "DCART-C s",
        "DCART s",
        "x ART",
        "x SMART",
        "x CuART",
    ]);
    let mut speedups = Vec::new();
    for w in Workload::ALL {
        let r = |e: &str| find(&matrix, e, w.name());
        let d = r("DCART");
        let s = (
            w.name().to_string(),
            d.speedup_vs(r("ART")),
            d.speedup_vs(r("SMART")),
            d.speedup_vs(r("CuART")),
            d.speedup_vs(r("DCART-C")),
        );
        t.row(&[
            w.name().to_string(),
            format!("{:.4}", r("ART").time_s),
            format!("{:.4}", r("Heart").time_s),
            format!("{:.4}", r("SMART").time_s),
            format!("{:.4}", r("CuART").time_s),
            format!("{:.4}", r("DCART-C").time_s),
            format!("{:.5}", d.time_s),
            format!("{:.1}", s.1),
            format!("{:.1}", s.2),
            format!("{:.1}", s.3),
        ]);
        speedups.push(s);
    }
    t.print();
    println!(
        "paper: DCART is 123.8–151.7x ART, 35.9–44.2x SMART, 21.1–31.2x CuART; DCART-C only slight\n"
    );

    // Fig. 11 — energy.
    println!("-- Fig. 11: energy consumption --");
    let mut t = Table::new(&[
        "workload",
        "ART J",
        "SMART J",
        "CuART J",
        "DCART-C J",
        "DCART J",
        "x ART",
        "x SMART",
        "x CuART",
        "x DCART-C",
    ]);
    let mut energy_savings = Vec::new();
    for w in Workload::ALL {
        let r = |e: &str| find(&matrix, e, w.name());
        let d = r("DCART");
        let s = (
            w.name().to_string(),
            d.energy_saving_vs(r("ART")),
            d.energy_saving_vs(r("SMART")),
            d.energy_saving_vs(r("CuART")),
            d.energy_saving_vs(r("DCART-C")),
        );
        t.row(&[
            w.name().to_string(),
            format!("{:.2}", r("ART").energy_j),
            format!("{:.2}", r("SMART").energy_j),
            format!("{:.2}", r("CuART").energy_j),
            format!("{:.2}", r("DCART-C").energy_j),
            format!("{:.4}", d.energy_j),
            format!("{:.0}", s.1),
            format!("{:.0}", s.2),
            format!("{:.0}", s.3),
            format!("{:.0}", s.4),
        ]);
        energy_savings.push(s);
    }
    t.print();
    println!("paper: 315.1–493.5x ART, 92.7–148.9x SMART, 71.1–126.2x CuART, 48.1–97.6x DCART-C\n");

    let report = OverallReport { matrix, speedups, energy_savings };
    write_report(out_dir, "overall", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline shape: who wins, by roughly what factor. Bands are
    /// widened vs the paper's because smoke scale sits at the small end of
    /// Fig. 12(a)'s growth curve (ratios grow with op count).
    #[test]
    fn overall_ordering_and_rough_factors() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-overall-test");
        let r = run(&scale, &tmp);
        for (w, vs_art, vs_smart, vs_cuart, vs_dcart_c) in &r.speedups {
            assert!(*vs_art > 10.0, "{w}: vs ART {vs_art}");
            assert!(*vs_smart > 4.0, "{w}: vs SMART {vs_smart}");
            assert!(*vs_cuart > 2.0, "{w}: vs CuART {vs_cuart}");
            assert!(*vs_dcart_c > 2.0, "{w}: vs DCART-C {vs_dcart_c}");
            // Ordering: ART slowest of the CPU baselines.
            assert!(vs_art > vs_smart, "{w}");
            // DCART-C is competitive with the baselines (paper: slightly
            // better), so DCART's edge over it is the smallest.
            assert!(vs_dcart_c < vs_smart, "{w}: {vs_dcart_c} vs {vs_smart}");
        }
        for (w, e_art, e_smart, e_cuart, e_dcart_c) in &r.energy_savings {
            assert!(*e_art > 30.0, "{w}: energy vs ART {e_art}");
            assert!(*e_smart > 10.0, "{w}: energy vs SMART {e_smart}");
            assert!(*e_cuart > 5.0, "{w}: energy vs CuART {e_cuart}");
            assert!(*e_dcart_c > 5.0, "{w}: energy vs DCART-C {e_dcart_c}");
            // Energy savings exceed speedups (the FPGA draws less power).
            let speed = r.speedups.iter().find(|(sw, ..)| sw == w).unwrap();
            assert!(e_art > &speed.1, "{w}");
        }
    }
}
