//! Ablations of DCART's design choices.
//!
//! The paper motivates four mechanisms without ablating them individually;
//! these experiments isolate each one:
//!
//! * **shortcuts** (§III-C, Observation 2): on vs off;
//! * **Tree-buffer policy** (§III-E): value-aware vs LRU vs FIFO;
//! * **batch overlap** (§III-D, Fig. 6): on vs off;
//! * **SOU count** (Table I's choice of 16): 1 → 32;
//! * **combining prefix width** (§III-B's default 8 bits): 4 / 8 / 16.

use std::path::Path;

use dcart::{DcartAccel, DcartConfig};
use dcart_baselines::{IndexEngine, RunConfig, RunReport};
use dcart_mem::BufferPolicy;
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};
use serde::{Deserialize, Serialize};

use crate::{write_report, Scale, Table};

/// One ablation measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Which knob, e.g. "shortcuts=off".
    pub variant: String,
    /// Runtime in seconds.
    pub time_s: f64,
    /// Throughput in Mops/s.
    pub throughput_mops: f64,
    /// Nodes fetched.
    pub nodes_traversed: u64,
    /// Tree-buffer hit ratio.
    pub tree_buffer_hit_ratio: f64,
}

/// Full ablation report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationReport {
    /// All measurements, grouped by `variant` prefix.
    pub points: Vec<AblationPoint>,
}

/// Builds the full variant list: (label, configuration) per ablation.
fn variants(base: DcartConfig) -> Vec<(String, DcartConfig)> {
    let mut out = vec![("baseline (Table I)".to_string(), base)];

    let mut c = base;
    c.shortcuts_enabled = false;
    out.push(("shortcuts=off".to_string(), c));

    let mut c = base;
    c.tree_buffer_policy = BufferPolicy::Lru;
    out.push(("tree-policy=lru".to_string(), c));
    let mut c = base;
    c.tree_buffer_policy = BufferPolicy::Fifo;
    out.push(("tree-policy=fifo".to_string(), c));

    let mut c = base;
    c.overlap_enabled = false;
    out.push(("overlap=off".to_string(), c));

    for sous in [1usize, 4, 8, 16, 32] {
        let mut c = base;
        c.sous = sous;
        out.push((format!("sous={sous}"), c));
    }

    for bits in [4u32, 8, 16] {
        let mut c = base;
        c.prefix_bits = bits;
        out.push((format!("prefix-bits={bits}"), c));
    }

    // Extension: the single PCU is DCART's throughput ceiling (1 op/cycle
    // at 230 MHz = 230 Mops/s); striping the scan over multiple PCUs
    // shows how far the rest of the design could scale.
    for pcus in [2usize, 4] {
        let mut c = base;
        c.pcus = pcus;
        out.push((format!("pcus={pcus}"), c));
    }
    out
}

/// Runs all ablations on IPGEO and writes `ablations.json`.
pub fn run(scale: &Scale, out_dir: &Path) -> AblationReport {
    println!("== Ablations: DCART design choices (IPGEO, mix C) ==");
    let base = DcartConfig::default().scaled_for_keys(scale.keys);
    let mut t = Table::new(&["variant", "time s", "Mops/s", "nodes fetched", "tree-buf hit"]);

    // The key set and op stream are shared by every variant; variants then
    // fan out over the worker pool and are collected in declaration order.
    let keys = Workload::Ipgeo.generate(scale.keys, scale.seed);
    let ops = generate_ops(
        &keys,
        &OpStreamConfig { count: scale.ops, mix: Mix::C, theta: 0.99, seed: scale.seed },
    );
    let points = crate::parallel::par_map(variants(base), |(variant, cfg)| {
        let mut engine = DcartAccel::new(cfg.with_auto_prefix_skip(&keys));
        let r: RunReport = engine.run(&keys, &ops, &RunConfig { concurrency: scale.concurrency });
        AblationPoint {
            variant,
            time_s: r.time_s,
            throughput_mops: r.throughput_mops(),
            nodes_traversed: r.counters.nodes_traversed,
            tree_buffer_hit_ratio: engine.last_details().tree_buffer_hit_ratio,
        }
    });

    for p in &points {
        t.row(&[
            p.variant.clone(),
            format!("{:.5}", p.time_s),
            format!("{:.1}", p.throughput_mops),
            p.nodes_traversed.to_string(),
            format!("{:.3}", p.tree_buffer_hit_ratio),
        ]);
    }
    t.print();
    println!();
    let report = AblationReport { points };
    write_report(out_dir, "ablations", &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(r: &'a AblationReport, v: &str) -> &'a AblationPoint {
        r.points.iter().find(|p| p.variant == v).unwrap()
    }

    #[test]
    fn ablations_isolate_each_mechanism() {
        let scale = Scale::smoke();
        let tmp = std::env::temp_dir().join("dcart-ablate-test");
        let r = run(&scale, &tmp);
        let base = point(&r, "baseline (Table I)");

        // Shortcuts eliminate traversal work beyond what per-batch
        // combining already coalesces (the bulk of the savings — a
        // reproduction finding recorded in EXPERIMENTS.md).
        let no_shortcut = point(&r, "shortcuts=off");
        assert!(
            no_shortcut.nodes_traversed > base.nodes_traversed,
            "off {} vs on {}",
            no_shortcut.nodes_traversed,
            base.nodes_traversed
        );

        // Disabling overlap costs time (combining becomes visible).
        let no_overlap = point(&r, "overlap=off");
        assert!(no_overlap.time_s > base.time_s);

        // A single SOU serializes the operating phase.
        let one_sou = point(&r, "sous=1");
        assert!(one_sou.time_s > base.time_s);

        // All variants are functionally identical (same op count implies
        // the same final result; traversal counts differ only via the
        // shortcut knob).
        let lru = point(&r, "tree-policy=lru");
        assert_eq!(lru.nodes_traversed, base.nodes_traversed);

        // Extra PCUs lift the combining ceiling.
        let pcus4 = point(&r, "pcus=4");
        assert!(
            pcus4.throughput_mops > base.throughput_mops,
            "{} vs {}",
            pcus4.throughput_mops,
            base.throughput_mops
        );
    }
}
