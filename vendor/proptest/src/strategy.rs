//! The `Strategy` trait and core combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange};

use crate::test_runner::TestRng;

/// Generates random values of one type. Unlike real proptest there is no
/// value tree: strategies produce plain values and failures are not shrunk.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.whence);
    }
}

/// Uniform choice among several strategies of one value type (the
/// `prop_oneof!` expansion).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

/// Numeric ranges are strategies drawing uniformly from the range.
impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<Output = T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<Output = T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String char-class patterns like `"[a-d]{1,6}"` are strategies producing
/// matching strings (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($idx:tt $name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(0 T0);
tuple_strategy!(0 T0 1 T1);
tuple_strategy!(0 T0 1 T1 2 T2);
tuple_strategy!(0 T0 1 T1 2 T2 3 T3);
tuple_strategy!(0 T0 1 T1 2 T2 3 T3 4 T4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_std {
    ($($ty:ty)*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
arbitrary_std!(bool u8 u16 u32 u64 usize i8 i16 i32 i64 isize f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
