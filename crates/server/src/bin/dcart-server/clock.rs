//! The one real clock in the whole workspace.
//!
//! Library code is written against `dcart_engine::time::Clock`; this
//! binary (inside the xtask D2 whitelist) is the only place the trait is
//! backed by actual time. Monotonic by construction: `Instant` never
//! goes backwards, and the origin is process start.

use std::time::Instant;

use dcart_engine::time::Clock;

/// Wall-clock time source for the server binary.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}
