//! Offline stand-in for [proptest](https://docs.rs/proptest), covering the
//! macro and strategy surface this workspace's property tests use:
//! `proptest! { #![proptest_config(...)] fn t(x in strategy) {...} }`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, range/tuple strategies,
//! `any::<T>()`, `collection::{vec, btree_set}`, `array::uniform{2,3}`, and
//! string char-class patterns like `"[a-d]{1,6}"`.
//!
//! Semantics differ from real proptest in one important way: failing cases
//! are **not shrunk** — the failing input is reported as generated. Cases
//! are seeded deterministically from the test's module path and case index,
//! so failures reproduce across runs.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs each embedded `fn name(arg in strategy, ...) { body }` as a `#[test]`
/// over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+),
                            __l,
                            __r
                        )),
                    );
                }
            }
        }
    };
}

/// Picks one of several strategies (uniformly) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
