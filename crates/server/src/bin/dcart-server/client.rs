//! A pipelined DCARTNET client: one writer (the caller's thread, pacing
//! sends) and one reader thread matching responses to in-flight requests
//! by `req_id`, accumulating latencies and outcome counters.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dcart_engine::time::Clock;
use dcart_server::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestKind, Response,
    Status,
};

/// What the reader knows about an in-flight request.
struct Sent {
    sent_ns: u64,
    kind: RequestKind,
    key: u64,
}

/// Outcome accumulator, shared between writer and reader.
#[derive(Default)]
pub struct Accum {
    pub acked: u64,
    pub acked_writes: u64,
    /// Indexed by `RejectReason::code()`: overloaded, deadline, shed-scan,
    /// shed-read, draining.
    pub rejected: [u64; 5],
    pub errors: u64,
    /// Round-trip latencies of accepted (acked) requests only.
    pub latencies_ns: Vec<u64>,
    /// Keys whose inserts were acknowledged — the durability ledger the
    /// chaos cell audits after kill + restart.
    pub acked_insert_keys: Vec<u64>,
    /// Keys whose gets were acknowledged with *no* value — what the
    /// post-crash audit counts as lost if they were previously acked.
    pub get_misses: Vec<u64>,
}

pub struct Client {
    stream: TcpStream,
    pending: Arc<Mutex<BTreeMap<u64, Sent>>>,
    pub accum: Arc<Mutex<Accum>>,
    reader: Option<JoinHandle<()>>,
    next_id: u64,
    clock: Arc<dyn Clock>,
}

impl Client {
    pub fn connect(addr: &str, clock: Arc<dyn Clock>) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let pending: Arc<Mutex<BTreeMap<u64, Sent>>> = Arc::default();
        let accum: Arc<Mutex<Accum>> = Arc::default();
        let mut read_half = stream.try_clone()?;
        let reader_pending = Arc::clone(&pending);
        let reader_accum = Arc::clone(&accum);
        let reader_clock = Arc::clone(&clock);
        let reader = std::thread::spawn(move || {
            while let Ok(Some(body)) = read_frame(&mut read_half) {
                let Ok(resp) = decode_response(&body) else { return };
                let sent = reader_pending.lock().unwrap().remove(&resp.req_id);
                let mut acc = reader_accum.lock().unwrap();
                match (resp.status, sent) {
                    (Status::Ok, Some(s)) => {
                        acc.acked += 1;
                        acc.latencies_ns.push(reader_clock.now_ns().saturating_sub(s.sent_ns));
                        if s.kind.is_write() {
                            acc.acked_writes += 1;
                        }
                        if s.kind == RequestKind::Insert {
                            acc.acked_insert_keys.push(s.key);
                        }
                        if s.kind == RequestKind::Get && resp.value.is_none() {
                            acc.get_misses.push(s.key);
                        }
                    }
                    (Status::Rejected, _) => {
                        let code = resp.reject.map_or(0, |r| r.code()) as usize;
                        acc.rejected[code.min(4)] += 1;
                    }
                    (Status::Error, _) => acc.errors += 1,
                    (Status::Ok, None) => {} // stats/shutdown ack, untracked
                }
            }
        });
        Ok(Client { stream, pending, accum, reader: Some(reader), next_id: 0, clock })
    }

    /// Sends one request, registering it for latency tracking.
    pub fn send(&mut self, kind: RequestKind, key: u64, value: u64, budget_ns: u64) -> bool {
        self.next_id += 1;
        let req = Request { req_id: self.next_id, kind, budget_ns, key, value };
        self.pending
            .lock()
            .unwrap()
            .insert(req.req_id, Sent { sent_ns: self.clock.now_ns(), kind, key });
        if write_frame(&mut self.stream, &encode_request(&req)).is_err() {
            self.pending.lock().unwrap().remove(&req.req_id);
            return false;
        }
        true
    }

    pub fn in_flight(&self) -> usize {
        self.pending.lock().unwrap().len()
    }

    /// Waits (bounded) for in-flight requests to drain, then closes the
    /// connection and returns how many never got an answer.
    pub fn finish(mut self, grace: Duration) -> (Accum, usize) {
        let deadline = self.clock.now_ns() + grace.as_nanos() as u64;
        while self.in_flight() > 0 && self.clock.now_ns() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let unanswered = self.in_flight();
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
        let accum = std::mem::take(&mut *self.accum.lock().unwrap());
        (accum, unanswered)
    }
}

/// One synchronous request over a fresh connection (for `stats`,
/// `shutdown`, and `verify-acked` — one outstanding request at a time).
pub fn request_sync(stream: &mut TcpStream, req: &Request) -> Option<Response> {
    write_frame(stream, &encode_request(req)).ok()?;
    loop {
        let body = read_frame(stream).ok()??;
        let resp = decode_response(&body).ok()?;
        if resp.req_id == req.req_id {
            return Some(resp);
        }
    }
}

/// Percentile over raw latencies (nearest-rank on a sorted copy).
pub fn percentile_us(latencies_ns: &[u64], p: f64) -> f64 {
    if latencies_ns.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies_ns.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1_000.0
}

/// Writes one acked key per line (decimal) — the ledger `verify-acked`
/// audits after a crash.
pub fn write_acked_log(path: &std::path::Path, keys: &[u64]) -> std::io::Result<()> {
    let mut out = String::with_capacity(keys.len() * 8);
    for k in keys {
        out.push_str(&k.to_string());
        out.push('\n');
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())?;
    f.sync_all()
}
