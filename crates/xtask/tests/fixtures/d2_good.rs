// Fixture: D2 must stay quiet on simulated time and seeded randomness —
// and on the words Instant::now / SystemTime appearing in comments.
pub fn well_behaved(clock_cycles: u64, seed: u64) -> u64 {
    // Simulated time only: no Instant::now, no SystemTime::now.
    let note = "the bench harness may call Instant::now; libraries may not";
    let mut state = seed ^ clock_cycles;
    state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    debug_assert!(!note.is_empty());
    state
}
