//! The coalescing core: one thread that turns queued requests into CTT
//! batches, makes them durable, and answers every submitter.
//!
//! The paper's Combine stage *is* request coalescing — this loop is where
//! the serving layer meets it. Connection threads enqueue admitted
//! requests into a shared inbox; the core drains the inbox into a batch
//! when either the batch-size watermark or the max-linger deadline is
//! reached, then runs the batch through the resumable executor seam
//! ([`CttSession`]) with the same WAL-before-acknowledge protocol the
//! PR-4 durability layer pins:
//!
//! 1. append the batch record to the WAL;
//! 2. execute the batch (collecting each op's concrete answer);
//! 3. append + fsync the commit mark (the durability point);
//! 4. only then send acknowledgements.
//!
//! A crash between 1 and 3 loses only *unacknowledged* requests — the
//! chaos cell's invariant. Checkpoints (tree snapshot + WAL reset) run
//! every [`ServerConfig::checkpoint_every`] batches and at drain.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use dcart::durable::{decode_ops, encode_ops, CHECKPOINT_TMP, WAL_FILE};
use dcart::{
    read_checkpoint, write_checkpoint, CttConsumer, CttOpEvent, CttSession, DcartConfig,
    DcartError, ExecOpts, TraverseMode,
};
use dcart_art::Key;
use dcart_engine::time::Clock;
use dcart_engine::{wal, CrashInjector, CrashPlan, WalWriter};
use dcart_mem::PersistStats;
use dcart_workloads::{Op, OpKind};

use crate::admission::{Admission, AdmissionConfig};
use crate::stats::{CoreSnapshot, ServerStats};
use crate::wire::{Request, RequestKind, Response};

/// Everything the server needs to know to run.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Executor configuration (bucket count, shortcuts, split threshold,
    /// and — for server-side chaos — the fault plan in `dcart.faults`).
    pub dcart: DcartConfig,
    /// SOU worker threads for the shard pool.
    pub threads: usize,
    /// Work stealing in the shard pool.
    pub steal: bool,
    /// Flush watermark: a batch executes as soon as this many requests
    /// are queued. Also the nominal batch size seeding the split policy.
    pub batch_size: usize,
    /// Max linger: a non-empty inbox flushes after this long even below
    /// the watermark, bounding the queueing delay a request can accrue.
    pub linger_ns: u64,
    /// Durability directory; `None` serves from memory only (acks then
    /// mean "executed", not "durable").
    pub data_dir: Option<PathBuf>,
    /// Batches between checkpoints.
    pub checkpoint_every: u64,
    /// Fsync every commit mark.
    pub sync_commits: bool,
    /// Admission tunables.
    pub admission: AdmissionConfig,
    /// Planned durability-layer crash (chaos cell); `None` in production.
    pub crash: Option<CrashPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            dcart: DcartConfig::default(),
            threads: 1,
            steal: false,
            batch_size: 64,
            linger_ns: 2_000_000, // 2 ms
            data_dir: None,
            checkpoint_every: 64,
            sync_commits: true,
            admission: AdmissionConfig::default(),
            crash: None,
        }
    }
}

/// An admitted request waiting in the inbox.
pub struct PendingReq {
    /// The decoded request.
    pub req: Request,
    /// When the request was admitted — the linger clock starts here.
    pub arrival_ns: u64,
    /// Absolute deadline (clock origin), already clamped by admission.
    pub deadline_ns: u64,
    /// Where the answer goes (the submitting connection's writer).
    pub resp: Sender<Response>,
}

/// State shared between connection threads and the core loop.
pub struct ServerShared {
    inbox: Mutex<VecDeque<PendingReq>>,
    cond: Condvar,
    admission: Mutex<Admission>,
    snapshot: Mutex<CoreSnapshot>,
    shutdown: AtomicBool,
    dead: AtomicBool,
    clock: Arc<dyn Clock>,
}

impl ServerShared {
    /// Fresh shared state around `clock`.
    pub fn new(admission: AdmissionConfig, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(ServerShared {
            inbox: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            admission: Mutex::new(Admission::new(admission)),
            snapshot: Mutex::new(CoreSnapshot::default()),
            shutdown: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            clock,
        })
    }

    /// The injected clock's current instant.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Submits one decoded request. `None` means the request was admitted
    /// and its answer will arrive on `resp`; `Some` is an immediate
    /// response (rejection, stats, shutdown ack, or server-dead error).
    pub fn submit(&self, req: Request, resp: &Sender<Response>) -> Option<Response> {
        match req.kind {
            RequestKind::Stats => {
                let mut r = Response::ok(req.req_id, None);
                r.payload = self.stats().to_json();
                return Some(r);
            }
            RequestKind::Shutdown => {
                self.request_shutdown();
                return Some(Response::ok(req.req_id, None));
            }
            _ => {}
        }
        if self.dead.load(Ordering::Acquire) {
            return Some(Response::error(req.req_id));
        }
        let now = self.now_ns();
        let deadline_ns = {
            let mut adm = self.admission.lock().unwrap_or_else(|e| e.into_inner());
            let deadline = now.saturating_add(adm.effective_budget_ns(req.budget_ns));
            if let Err((reason, retry)) = adm.admit(req.kind, now, deadline) {
                return Some(Response::rejected(req.req_id, reason, retry));
            }
            deadline
        };
        {
            let mut inbox = self.inbox.lock().unwrap_or_else(|e| e.into_inner());
            inbox.push_back(PendingReq { req, arrival_ns: now, deadline_ns, resp: resp.clone() });
        }
        self.cond.notify_one();
        None
    }

    /// Initiates graceful drain: admission bounces new work, the acceptor
    /// stops, the core flushes what is queued and checkpoints.
    pub fn request_shutdown(&self) {
        self.admission.lock().unwrap_or_else(|e| e.into_inner()).start_drain();
        self.shutdown.store(true, Ordering::Release);
        self.cond.notify_all();
    }

    /// Whether drain has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Whether the core died (durability failure / injected crash): the
    /// server can no longer make progress and answers errors.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Assembles the full stats snapshot (admission + core).
    pub fn stats(&self) -> ServerStats {
        let adm = self.admission.lock().unwrap_or_else(|e| e.into_inner());
        let core = *self.snapshot.lock().unwrap_or_else(|e| e.into_inner());
        ServerStats {
            admission: adm.counters(),
            queue_depth: adm.queue_depth(),
            queue_capacity: adm.queue_capacity(),
            scan_latch_tripped: adm.scan_latch_tripped(),
            read_latch_tripped: adm.read_latch_tripped(),
            draining: adm.is_draining(),
            core,
        }
    }

    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        self.cond.notify_all();
    }
}

/// Collects each operation's concrete answer during a batch, indexed by
/// the op's position in the batch slice (events arrive in round-robin
/// bucket order, not submission order).
struct ValueCollector {
    values: Vec<Option<u64>>,
}

impl CttConsumer for ValueCollector {
    fn op(&mut self, ev: &CttOpEvent<'_>) {
        if let Some(slot) = self.values.get_mut(ev.op_index as usize) {
            *slot = ev.value;
        }
    }
}

/// Replay sink for recovery: events are discarded, only the session's
/// digest matters (verified against each commit record).
struct NoopConsumer;
impl CttConsumer for NoopConsumer {}

fn op_of(req: &Request) -> Op {
    let kind = match req.kind {
        RequestKind::Get => OpKind::Read,
        RequestKind::Insert => OpKind::Insert,
        RequestKind::Remove => OpKind::Remove,
        RequestKind::Scan => OpKind::Scan,
        // Stats/shutdown never reach the inbox (answered at submit).
        RequestKind::Stats | RequestKind::Shutdown => OpKind::Read,
    };
    Op { kind, key: Key::from_u64(req.key), value: req.value }
}

/// The core loop's owned state: session, WAL, crash injector, counters.
pub struct ServerCore {
    shared: Arc<ServerShared>,
    config: ServerConfig,
    session: CttSession,
    wal: Option<WalWriter>,
    crash: CrashInjector,
    persist: PersistStats,
    next_seq: u64,
    batches_since_ckpt: u64,
    snapshot: CoreSnapshot,
    /// First durability failure, kept for the report.
    error: Option<DcartError>,
}

impl ServerCore {
    /// Opens the serving state: recovers from `data_dir` when it holds a
    /// WAL/checkpoint, otherwise seeds a fresh session from
    /// `initial_pairs`. The recovered replay is digest-verified batch by
    /// batch, exactly like the offline recovery path.
    ///
    /// # Errors
    ///
    /// I/O failures, corrupt durable state, or a replay digest mismatch.
    pub fn open(
        config: ServerConfig,
        shared: Arc<ServerShared>,
        initial_pairs: &[(Key, u64)],
    ) -> Result<Self, DcartError> {
        let opts = ExecOpts {
            threads: config.threads,
            mode: TraverseMode::LevelWise,
            steal: config.steal,
        };
        let mut persist = PersistStats::default();
        let mut snapshot = CoreSnapshot::default();
        let (session, next_seq, wal) = match &config.data_dir {
            None => {
                let session = CttSession::from_pairs(
                    initial_pairs,
                    &config.dcart,
                    &opts,
                    config.batch_size,
                    0,
                )?;
                (session, 0, None)
            }
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                // Crash residue: a temp checkpoint never renamed is dead.
                match std::fs::remove_file(dir.join(CHECKPOINT_TMP)) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                let (start_seq, start_digest, pairs) = match read_checkpoint(dir)? {
                    Some((seq, digest, tree)) => {
                        (seq, digest, tree.iter().map(|(k, &v)| (k.clone(), v)).collect())
                    }
                    None => (0, 0, initial_pairs.to_vec()),
                };
                let mut session = CttSession::from_pairs(
                    &pairs,
                    &config.dcart,
                    &opts,
                    config.batch_size,
                    start_digest,
                )?;
                let wal_path = dir.join(WAL_FILE);
                let writer = if wal_path.exists() {
                    let scan = wal::recover(&wal_path)?;
                    persist.torn_bytes_truncated += scan.torn_bytes;
                    // Batches the checkpoint already absorbed are skipped;
                    // the rest must extend it contiguously, and each must
                    // replay to exactly the digest its commit promised.
                    // Unlike the offline path, server batches vary in
                    // size, so each WAL record replays as ONE executor
                    // batch — identical boundaries to the live run.
                    let mut replayed = 0u64;
                    for b in scan.batches.iter().filter(|b| b.seq >= start_seq) {
                        if b.seq != start_seq + replayed {
                            return Err(DcartError::Recovery(format!(
                                "WAL batch sequence gap: expected {}, found {}",
                                start_seq + replayed,
                                b.seq
                            )));
                        }
                        let ops = decode_ops(&b.payload)?;
                        session.execute_batch(&ops, &mut NoopConsumer)?;
                        if session.answer_digest() != b.digest {
                            return Err(DcartError::Recovery(format!(
                                "replayed batch {} produced digest {:#x}, commit promised {:#x}",
                                b.seq,
                                session.answer_digest(),
                                b.digest
                            )));
                        }
                        replayed += 1;
                    }
                    persist.replayed_batches += replayed;
                    snapshot.replayed_batches = replayed;
                    snapshot.batches = replayed;
                    let writer = WalWriter::open_append(&wal_path, scan.valid_len)?;
                    (start_seq + replayed, writer)
                } else {
                    (start_seq, WalWriter::create(&wal_path, config.batch_size as u32)?)
                };
                let (seq, writer) = writer;
                (session, seq, Some(writer))
            }
        };
        snapshot.answer_digest = session.answer_digest();
        *shared.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = snapshot;
        Ok(ServerCore {
            crash: match config.crash {
                Some(plan) => CrashInjector::for_plan(plan),
                None => CrashInjector::counting(),
            },
            shared,
            config,
            session,
            wal,
            persist,
            next_seq,
            batches_since_ckpt: 0,
            snapshot,
            error: None,
        })
    }

    /// The blocking core loop: coalesce, flush, repeat — until drain
    /// completes or the durability layer dies. Returns the first
    /// durability error, if any (injected crashes land here too).
    pub fn run(&mut self) -> Option<DcartError> {
        loop {
            let batch = {
                let mut inbox = self.shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if self.shared.is_dead() {
                        // Dead servers still drain the inbox below so
                        // every queued submitter gets an error, then stop.
                        break;
                    }
                    let shutdown = self.shared.is_shutdown();
                    if inbox.len() >= self.config.batch_size || (shutdown && !inbox.is_empty()) {
                        break;
                    }
                    if !inbox.is_empty() {
                        // Linger bound: flush once the oldest request has
                        // waited `linger_ns` since admission, regardless
                        // of its (possibly much longer) deadline budget.
                        let oldest = inbox.front().map_or(u64::MAX, |p| p.arrival_ns);
                        let now = self.shared.now_ns();
                        if now >= oldest.saturating_add(self.config.linger_ns) {
                            break;
                        }
                    }
                    if shutdown && inbox.is_empty() {
                        break;
                    }
                    // Fixed 1 ms poll tick: re-checks clock + flags. (A
                    // TestClock never advances during the wait, so tests
                    // drive flushes via watermark or `flush_now`.)
                    let (guard, _) = self
                        .shared
                        .cond
                        .wait_timeout(inbox, Duration::from_millis(1))
                        .unwrap_or_else(|e| e.into_inner());
                    inbox = guard;
                }
                let take = inbox.len().min(self.config.batch_size);
                inbox.drain(..take).collect::<Vec<_>>()
            };
            if batch.is_empty() {
                if self.shared.is_shutdown() || self.shared.is_dead() {
                    break;
                }
                continue;
            }
            self.execute(batch);
        }
        // Drain complete: park a final checkpoint so restart needs no
        // replay.
        if !self.shared.is_dead() {
            if let Err(e) = self.checkpoint() {
                self.error.get_or_insert(e);
            }
        }
        self.error.take()
    }

    /// Flushes up to one batch immediately, bypassing the wait loop —
    /// the deterministic test hook.
    pub fn flush_now(&mut self) {
        let batch = {
            let mut inbox = self.shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
            let take = inbox.len().min(self.config.batch_size);
            inbox.drain(..take).collect::<Vec<_>>()
        };
        if !batch.is_empty() {
            self.execute(batch);
        }
    }

    /// The cumulative answer digest (for tests and reports).
    pub fn answer_digest(&self) -> u64 {
        self.session.answer_digest()
    }

    /// Consumes the core and returns the final merged tree digest.
    ///
    /// # Errors
    ///
    /// [`DcartError::Art`] if the final shard merge fails.
    pub fn into_tree_digest(self) -> Result<u64, DcartError> {
        let (tree, _, _) = self.session.finish()?;
        Ok(dcart::tree_digest(&tree))
    }

    fn execute(&mut self, batch: Vec<PendingReq>) {
        let now = self.shared.now_ns();
        // Expired-in-queue requests are answered without executing: their
        // submitter stopped waiting, and running them anyway would spend
        // capacity the deadline already wrote off.
        let (live, expired): (Vec<_>, Vec<_>) =
            batch.into_iter().partition(|p| p.deadline_ns > now);
        let released = (live.len() + expired.len()) as u64;
        for p in &expired {
            let _ = p.resp.send(Response::rejected(
                p.req.req_id,
                dcart_engine::RejectReason::DeadlineExceeded,
                0,
            ));
            self.snapshot.expired_in_queue += 1;
        }
        {
            let mut adm = self.shared.admission.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..expired.len() {
                adm.note_expired_in_queue();
            }
            adm.release(released);
        }
        if !expired.is_empty() {
            *self.shared.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = self.snapshot;
        }
        if self.shared.is_dead() {
            for p in &live {
                let _ = p.resp.send(Response::error(p.req.req_id));
            }
            return;
        }
        if live.is_empty() {
            return;
        }

        let ops: Vec<Op> = live.iter().map(|p| op_of(&p.req)).collect();

        // 1. WAL the batch before any effect becomes visible.
        if let Some(writer) = &mut self.wal {
            let payload = encode_ops(&ops);
            self.persist.payload_bytes += payload.len() as u64;
            let before = writer.len();
            if let Err(e) = writer.append_batch(self.next_seq, &payload, &mut self.crash) {
                return self.die(&live, e.into());
            }
            self.persist.wal_bytes += writer.len() - before;
            self.persist.wal_batches += 1;
        }

        // 2. Execute, collecting each op's concrete answer.
        let mut collector = ValueCollector { values: vec![None; ops.len()] };
        if let Err(e) = self.session.execute_batch(&ops, &mut collector) {
            // With fixed-width wire keys this cannot be a prefix
            // violation; anything here means the session is torn.
            return self.die(&live, e);
        }

        // 3. Commit mark + fsync: the durability point. An injected crash
        // here is the chaos cell's kill — the batch was executed but
        // never acknowledged, and recovery must not surface it.
        if let Some(writer) = &mut self.wal {
            let before = writer.len();
            if let Err(e) = writer.commit(
                self.next_seq,
                self.session.answer_digest(),
                ops.len() as u32,
                self.config.sync_commits,
                &mut self.crash,
            ) {
                return self.die(&live, e.into());
            }
            self.persist.wal_bytes += writer.len() - before;
            self.persist.wal_commits += 1;
        }

        // 4. Acknowledge.
        for (p, value) in live.iter().zip(&collector.values) {
            let _ = p.resp.send(Response::ok(p.req.req_id, *value));
            if p.req.kind.is_write() {
                self.snapshot.acked_writes += 1;
            }
        }
        self.next_seq += 1;
        self.batches_since_ckpt += 1;
        self.snapshot.batches += 1;
        self.snapshot.ops += ops.len() as u64;
        self.snapshot.answer_digest = self.session.answer_digest();
        self.snapshot.persist = self.persist;
        *self.shared.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = self.snapshot;

        if self.wal.is_some() && self.batches_since_ckpt >= self.config.checkpoint_every {
            if let Err(e) = self.checkpoint() {
                self.error.get_or_insert(e);
                self.shared.mark_dead();
            }
        }
    }

    /// Snapshot the merged tree, install it atomically, reset the WAL.
    fn checkpoint(&mut self) -> Result<(), DcartError> {
        let Some(dir) = self.config.data_dir.clone() else { return Ok(()) };
        let tree = self.session.tree()?;
        write_checkpoint(
            &dir,
            self.next_seq,
            self.session.answer_digest(),
            &tree,
            &mut self.crash,
            &mut self.persist,
        )?;
        if let Some(writer) = &mut self.wal {
            writer.reset()?;
        }
        self.batches_since_ckpt = 0;
        self.snapshot.persist = self.persist;
        *self.shared.snapshot.lock().unwrap_or_else(|e| e.into_inner()) = self.snapshot;
        Ok(())
    }

    /// Durability failed mid-batch: answer errors (the batch was never
    /// acknowledged, so clients know its outcome is void), latch the
    /// error, and mark the server dead.
    fn die(&mut self, batch: &[PendingReq], e: DcartError) {
        for p in batch {
            let _ = p.resp.send(Response::error(p.req.req_id));
        }
        self.error.get_or_insert(e);
        self.shared.mark_dead();
    }
}
