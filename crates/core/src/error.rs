//! Typed errors for the DCART model crates.
//!
//! Library code on fallible paths (workload/trace ingestion, tree
//! construction, executor entry points) returns [`DcartError`] instead of
//! panicking, so malformed input or an injected fault surfaces as a value
//! the caller can handle — a process abort is reserved for genuine
//! programming errors (violated internal invariants).

use std::fmt;

use dcart_art::ArtError;
use dcart_workloads::TraceError;

/// Top-level error of the DCART model.
#[derive(Debug)]
#[non_exhaustive]
pub enum DcartError {
    /// The adaptive radix tree rejected an input (prefix key, unsorted
    /// bulk load).
    Art(ArtError),
    /// An operation trace could not be read (I/O, malformed or truncated
    /// line, empty file).
    Trace(TraceError),
    /// An executor was configured with a zero batch size.
    InvalidBatchSize,
}

impl fmt::Display for DcartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcartError::Art(e) => write!(f, "tree error: {e}"),
            DcartError::Trace(e) => write!(f, "trace error: {e}"),
            DcartError::InvalidBatchSize => write!(f, "batch size must be positive"),
        }
    }
}

impl std::error::Error for DcartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcartError::Art(e) => Some(e),
            DcartError::Trace(e) => Some(e),
            DcartError::InvalidBatchSize => None,
        }
    }
}

impl From<ArtError> for DcartError {
    fn from(e: ArtError) -> Self {
        DcartError::Art(e)
    }
}

impl From<TraceError> for DcartError {
    fn from(e: TraceError) -> Self {
        DcartError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = DcartError::from(ArtError::NotSortedUnique);
        assert!(e.to_string().starts_with("tree error:"), "{e}");
        let e = DcartError::from(TraceError::Truncated { line: 7 });
        assert!(e.to_string().contains("line 7"), "{e}");
        assert!(DcartError::InvalidBatchSize.to_string().contains("batch size"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = DcartError::from(ArtError::NotSortedUnique);
        assert!(e.source().is_some());
        assert!(DcartError::InvalidBatchSize.source().is_none());
    }
}
