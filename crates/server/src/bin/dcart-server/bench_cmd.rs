//! `dcart-server bench` — the overload-robustness proof, in one JSON.
//!
//! Four cells, all in-process over loopback TCP:
//!
//! * **sweep** — a QPS ladder; p50/p95/p99 of accepted requests per rung;
//! * **overload** — offered load far beyond capacity against a small
//!   queue: p99 of *accepted* requests stays bounded while rejections
//!   and the shedding latches absorb the excess;
//! * **chaos** — a durable server killed (injected `BeforeCommit` crash)
//!   mid-load, restarted, and audited: every acknowledged insert must be
//!   readable after recovery — zero acked-write loss;
//! * **determinism** — the same seeded op stream through the server path
//!   and the offline repro path must produce byte-identical answer and
//!   tree digests.
//!
//! The process exits nonzero if the chaos or determinism cell fails, so
//! CI needs no JSON parsing to enforce the invariants.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use dcart::{CttSession, DcartConfig, ExecOpts, TraverseMode};
use dcart_engine::time::Clock;
use dcart_engine::{CrashPlan, CrashSite};
use dcart_server::wire::RequestKind;
use dcart_server::{serve, AdmissionConfig, ServerConfig, ServerStats};
use dcart_workloads::ArrivalPattern;
use serde::Serialize;

use crate::client::Client;
use crate::clock::WallClock;
use crate::loadgen::{ops_for, run_load, LoadConfig, LoadSummary};

#[derive(Serialize)]
struct SweepCell {
    qps: u64,
    load: LoadSummary,
    stats: ServerStats,
}

#[derive(Serialize)]
struct OverloadCell {
    qps: u64,
    queue_capacity: u64,
    load: LoadSummary,
    stats: ServerStats,
    /// The headline claim: accepted-request p99 stayed under the bound
    /// while the server was offered ~20x its capacity.
    p99_bound_us: f64,
    p99_bounded: bool,
    rejections_rose: bool,
}

#[derive(Serialize)]
struct ChaosCell {
    crash_site: String,
    crash_at_batch: u64,
    acked_inserts: u64,
    errors_at_crash: u64,
    unanswered_at_crash: u64,
    replayed_batches_on_restart: u64,
    missing_after_recovery: u64,
    verdict: String,
}

#[derive(Serialize)]
struct DeterminismCell {
    ops: u64,
    batch_size: usize,
    server_answer_digest: String,
    repro_answer_digest: String,
    server_tree_digest: String,
    repro_tree_digest: String,
    digests_match: bool,
}

#[derive(Serialize)]
struct ServeBench {
    schema: &'static str,
    seed: u64,
    sou_threads: usize,
    steal: bool,
    sweep: Vec<SweepCell>,
    overload: OverloadCell,
    chaos: ChaosCell,
    determinism: DeterminismCell,
}

pub struct BenchOpts {
    pub seed: u64,
    pub sou_threads: usize,
    pub steal: bool,
    pub out: std::path::PathBuf,
    pub data_dir: std::path::PathBuf,
}

fn base_config(opts: &BenchOpts) -> ServerConfig {
    ServerConfig {
        dcart: DcartConfig::default(),
        threads: opts.sou_threads,
        steal: opts.steal,
        batch_size: 64,
        linger_ns: 500_000, // 0.5 ms
        data_dir: None,
        checkpoint_every: 64,
        sync_commits: true,
        admission: AdmissionConfig::default(),
        crash: None,
    }
}

fn sweep_cell(opts: &BenchOpts, qps: u64) -> Result<SweepCell, String> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let handle = serve(base_config(opts), "127.0.0.1:0", Arc::clone(&clock))
        .map_err(|e| format!("sweep serve: {e}"))?;
    let addr = handle.local_addr().to_string();
    let cfg = LoadConfig { seed: opts.seed, qps, ops: 3_000, ..LoadConfig::default() };
    let (load, _) = run_load(&addr, &cfg, Arc::clone(&clock), Duration::from_secs(3))
        .map_err(|e| format!("sweep load: {e}"))?;
    let stats = handle.shared().stats();
    handle.shutdown_and_join().map_err(|e| format!("sweep join: {e}"))?;
    Ok(SweepCell { qps, load, stats })
}

fn overload_cell(opts: &BenchOpts) -> Result<OverloadCell, String> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let mut config = base_config(opts);
    // A deliberately small queue so the offered load (~20x the sweep's
    // top rung) slams into admission, not into unbounded memory.
    config.admission.queue_capacity = 128;
    let queue_capacity = config.admission.queue_capacity;
    let qps = 400_000;
    let handle = serve(config, "127.0.0.1:0", Arc::clone(&clock))
        .map_err(|e| format!("overload serve: {e}"))?;
    let addr = handle.local_addr().to_string();
    let cfg = LoadConfig {
        seed: opts.seed ^ 0xdead,
        qps,
        ops: 20_000,
        scan_pct: 10,
        pattern: ArrivalPattern::Bursty,
        ..LoadConfig::default()
    };
    let (load, _) = run_load(&addr, &cfg, Arc::clone(&clock), Duration::from_secs(3))
        .map_err(|e| format!("overload load: {e}"))?;
    let stats = handle.shared().stats();
    handle.shutdown_and_join().map_err(|e| format!("overload join: {e}"))?;
    // The bound: an accepted request's client-measured round trip is (a)
    // pre-admission queueing in the TCP buffer and the connection
    // reader's decode loop — the server hasn't timestamped it yet, so
    // admission cannot bound this leg; (b) queue sojourn, at most the
    // 50 ms default budget because deadlines are enforced at batch
    // dispatch; (c) one batch's execution-and-reply envelope. 3x budget
    // absorbs (a) and (c) at this burst rate while still proving the
    // point: without admission the 20x-capacity backlog would push p99
    // to the multi-second scale, not the budget scale.
    let p99_bound_us = 150_000.0;
    Ok(OverloadCell {
        qps,
        queue_capacity,
        p99_bounded: load.p99_us > 0.0 && load.p99_us <= p99_bound_us,
        rejections_rose: load.rejected_total() > 0,
        p99_bound_us,
        load,
        stats,
    })
}

fn chaos_cell(opts: &BenchOpts) -> Result<ChaosCell, String> {
    let dir = &opts.data_dir;
    if dir.exists() {
        std::fs::remove_dir_all(dir).map_err(|e| format!("chaos dir reset: {e}"))?;
    }
    let crash_at_batch = 6;
    // Phase 1: durable server with a planned kill after batch 6's ops
    // record is on disk but before its commit mark — the worst honest
    // moment to die (work durable-looking, nothing promised).
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let mut config = base_config(opts);
    config.data_dir = Some(dir.clone());
    config.batch_size = 32;
    config.checkpoint_every = 4; // force checkpoints into the story too
    config.crash =
        Some(CrashPlan { site: CrashSite::BeforeCommit, at: crash_at_batch, seed: opts.seed });
    let handle = serve(config, "127.0.0.1:0", Arc::clone(&clock))
        .map_err(|e| format!("chaos serve: {e}"))?;
    let addr = handle.local_addr().to_string();
    let cfg = LoadConfig {
        seed: opts.seed ^ 0xc4a05,
        qps: 200_000,
        ops: 2_000,
        insert_pct: 80,
        remove_pct: 0,
        scan_pct: 0,
        ..LoadConfig::default()
    };
    let (load, acked_keys) = run_load(&addr, &cfg, Arc::clone(&clock), Duration::from_secs(3))
        .map_err(|e| format!("chaos load: {e}"))?;
    // The join surfaces the injected crash as an error — expected.
    let crashed = handle.shutdown_and_join().is_err();
    if !crashed {
        return Err("chaos cell: injected crash never fired (load too small?)".to_string());
    }

    // Phase 2: restart on the same directory; recovery replays only
    // committed batches. Audit every acknowledged insert over the wire.
    let clock2: Arc<dyn Clock> = Arc::new(WallClock::new());
    let mut config2 = base_config(opts);
    config2.data_dir = Some(dir.clone());
    config2.batch_size = 32;
    let handle2 = serve(config2, "127.0.0.1:0", Arc::clone(&clock2))
        .map_err(|e| format!("chaos recovery serve: {e}"))?;
    let addr2 = handle2.local_addr().to_string();
    let replayed = handle2.shared().stats().core.replayed_batches;
    let mut audit = Client::connect(&addr2, Arc::clone(&clock2))
        .map_err(|e| format!("chaos audit connect: {e}"))?;
    for &key in &acked_keys {
        audit.send(RequestKind::Get, key, 0, 10_000_000_000);
    }
    let (accum, unanswered) = audit.finish(Duration::from_secs(10));
    let missing = accum.get_misses.len() as u64 + unanswered as u64;
    handle2.shutdown_and_join().map_err(|e| format!("chaos recovery join: {e}"))?;
    Ok(ChaosCell {
        crash_site: "before-commit".to_string(),
        crash_at_batch,
        acked_inserts: acked_keys.len() as u64,
        errors_at_crash: load.errors,
        unanswered_at_crash: load.unanswered,
        replayed_batches_on_restart: replayed,
        missing_after_recovery: missing,
        verdict: if missing == 0 {
            "zero-acked-write-loss".to_string()
        } else {
            format!("LOST {missing} ACKED WRITES")
        },
    })
}

fn determinism_cell(opts: &BenchOpts) -> Result<DeterminismCell, String> {
    let ops_count = 1_024u64;
    let batch_size = 128usize;
    let cfg = LoadConfig {
        seed: opts.seed ^ 0xd17e57,
        qps: 10_000_000, // send as fast as the socket allows
        ops: ops_count,
        budget_ns: 10_000_000_000, // no deadline interference
        ..LoadConfig::default()
    };

    // Server path: watermark-only flushes (huge linger, capacity above
    // the op count) make batch boundaries exact multiples of batch_size.
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let mut config = base_config(opts);
    config.batch_size = batch_size;
    config.linger_ns = 10_000_000_000;
    config.admission.queue_capacity = 4_096;
    let handle = serve(config, "127.0.0.1:0", Arc::clone(&clock))
        .map_err(|e| format!("determinism serve: {e}"))?;
    let addr = handle.local_addr().to_string();
    let (load, _) = run_load(&addr, &cfg, Arc::clone(&clock), Duration::from_secs(10))
        .map_err(|e| format!("determinism load: {e}"))?;
    if load.acked != ops_count {
        return Err(format!(
            "determinism cell expects every op acked: {} of {ops_count}",
            load.acked
        ));
    }
    let report = handle.shutdown_and_join().map_err(|e| format!("determinism join: {e}"))?;

    // Repro path: same ops, same chunking, straight through the session.
    let exec =
        ExecOpts { threads: opts.sou_threads, mode: TraverseMode::LevelWise, steal: opts.steal };
    let ops = ops_for(&cfg);
    let mut session = CttSession::from_pairs(&[], &DcartConfig::default(), &exec, batch_size, 0)
        .map_err(|e| format!("determinism session: {e}"))?;
    struct Silent;
    impl dcart::CttConsumer for Silent {}
    for chunk in ops.chunks(batch_size) {
        session.execute_batch(chunk, &mut Silent).map_err(|e| format!("determinism exec: {e}"))?;
    }
    let repro_answer = session.answer_digest();
    let (tree, _, _) = session.finish().map_err(|e| format!("determinism finish: {e}"))?;
    let repro_tree = dcart::tree_digest(&tree);

    Ok(DeterminismCell {
        ops: ops_count,
        batch_size,
        digests_match: report.answer_digest == repro_answer && report.tree_digest == repro_tree,
        server_answer_digest: format!("{:#018x}", report.answer_digest),
        repro_answer_digest: format!("{repro_answer:#018x}"),
        server_tree_digest: format!("{:#018x}", report.tree_digest),
        repro_tree_digest: format!("{repro_tree:#018x}"),
    })
}

/// Runs all four cells and writes `BENCH_serve.json`. Returns `Err` if
/// any invariant cell failed (CI treats that as a red build).
pub fn run_bench(opts: &BenchOpts) -> Result<(), String> {
    println!("bench: sweep...");
    let mut sweep = Vec::new();
    for qps in [5_000u64, 20_000, 80_000] {
        let cell = sweep_cell(opts, qps)?;
        println!(
            "  qps {qps}: acked {} p50 {:.0}us p99 {:.0}us",
            cell.load.acked, cell.load.p50_us, cell.load.p99_us
        );
        sweep.push(cell);
    }
    println!("bench: overload...");
    let overload = overload_cell(opts)?;
    println!(
        "  offered {} acked {} rejected {} p99 {:.0}us (bound {:.0}us)",
        overload.load.offered,
        overload.load.acked,
        overload.load.rejected_total(),
        overload.load.p99_us,
        overload.p99_bound_us
    );
    println!("bench: chaos...");
    let chaos = chaos_cell(opts)?;
    println!(
        "  acked inserts {} missing after recovery {} ({})",
        chaos.acked_inserts, chaos.missing_after_recovery, chaos.verdict
    );
    println!("bench: determinism...");
    let determinism = determinism_cell(opts)?;
    println!(
        "  server {} repro {} match {}",
        determinism.server_answer_digest,
        determinism.repro_answer_digest,
        determinism.digests_match
    );

    let ok = chaos.missing_after_recovery == 0
        && determinism.digests_match
        && overload.rejections_rose
        && overload.p99_bounded
        && chaos.acked_inserts > 0;
    let bench = ServeBench {
        schema: "dcart-serve-bench-v1",
        seed: opts.seed,
        sou_threads: opts.sou_threads,
        steal: opts.steal,
        sweep,
        overload,
        chaos,
        determinism,
    };
    write_json(&opts.out, &bench)?;
    println!("bench: wrote {}", opts.out.display());
    if ok {
        Ok(())
    } else {
        Err("bench invariants failed (see BENCH_serve.json)".to_string())
    }
}

fn write_json<T: Serialize>(path: &Path, value: &T) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    let json = serde_json::to_string_pretty(value).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(path, json.as_bytes()).map_err(|e| format!("write {path:?}: {e}"))
}
