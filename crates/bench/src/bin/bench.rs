//! `bench` — the wall-clock perf harness.
//!
//! Times the functional executors (CTT, the baseline trace executor, the
//! B+-tree, and the hash index) on the tier-1 workloads and writes
//! `BENCH_ctt.json`, the perf baseline future PRs are compared against.
//!
//! ```text
//! bench [--scale smoke|default|full] [--out DIR] [--jobs N]
//! ```
//!
//! Defaults to the smoke scale (the harness measures the *host*, not the
//! simulated platforms, so a few seconds of signal suffices) and writes
//! into the current directory.

use std::path::PathBuf;
use std::process::ExitCode;

use dcart_bench::{perf, Scale};

fn usage() -> ExitCode {
    eprintln!("usage: bench [--scale smoke|default|full] [--out DIR] [--jobs N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::smoke();
    let mut out_dir = PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(name) = args.get(i + 1) else { return usage() };
                let Some(s) = Scale::from_name(name) else {
                    eprintln!("unknown scale: {name}");
                    return usage();
                };
                scale = s;
                i += 2;
            }
            "--out" => {
                let Some(dir) = args.get(i + 1) else { return usage() };
                out_dir = PathBuf::from(dir);
                i += 2;
            }
            "--jobs" => {
                let Some(n) = args.get(i + 1) else { return usage() };
                let Ok(n) = n.parse::<usize>() else {
                    eprintln!("--jobs expects a positive integer, got {n}");
                    return usage();
                };
                dcart_bench::parallel::set_jobs(n);
                i += 2;
            }
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
    }

    println!(
        "perf harness | {} keys, {} ops per cell | {} worker(s)\n",
        scale.keys,
        scale.ops,
        dcart_bench::parallel::jobs()
    );
    let t0 = std::time::Instant::now();
    perf::run(&scale, &out_dir);
    println!("done in {:.2} s wall", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
