//! Key sets: the loaded keys of a workload plus sampling metadata.

use dcart_art::Key;

/// A workload's key material.
///
/// `keys` are loaded into the index before the measured operation stream
/// runs; `insert_pool` holds fresh keys (disjoint from `keys`) that insert
/// operations consume; `popularity` maps a popularity rank (0 = hottest) to
/// an index into `keys`, letting a single Zipfian sampler reproduce each
/// workload's characteristic skew — including IPGEO's per-prefix spikes
/// (paper Fig. 3), which are encoded by ordering hot-prefix keys first.
#[derive(Clone, Debug)]
pub struct KeySet {
    /// Workload name (paper nomenclature: IPGEO, DICT, EA, DE, RS, RD).
    pub name: String,
    /// Keys loaded into the index up front.
    pub keys: Vec<Key>,
    /// Fresh keys for insert operations, disjoint from `keys`.
    pub insert_pool: Vec<Key>,
    /// Popularity rank → index into `keys`.
    pub popularity: Vec<u32>,
}

impl KeySet {
    /// Creates a key set with a uniformly shuffled popularity order.
    pub(crate) fn with_shuffled_popularity(
        name: impl Into<String>,
        keys: Vec<Key>,
        insert_pool: Vec<Key>,
        rng: &mut impl rand::Rng,
    ) -> Self {
        use rand::seq::SliceRandom;
        let mut popularity: Vec<u32> = (0..keys.len() as u32).collect();
        popularity.shuffle(rng);
        KeySet { name: name.into(), keys, insert_pool, popularity }
    }

    /// Creates a key set whose popularity ranks are correlated with the
    /// first key byte: rank slots are filled by drawing a first-byte bucket
    /// proportionally to `prefix_weights` and taking that bucket's next
    /// key. Because the Zipfian operation mass is spread over each bucket's
    /// slots at every rank scale, a bucket's share of operations tracks its
    /// weight — this is what produces the per-prefix operation spikes of
    /// the paper's Fig. 3 (temporal similarity) for workloads whose hot
    /// prefixes are not hard-coded like IPGEO's.
    pub(crate) fn with_prefix_weighted_popularity(
        name: impl Into<String>,
        keys: Vec<Key>,
        insert_pool: Vec<Key>,
        prefix_weights: &[f64; 256],
        rng: &mut impl rand::Rng,
    ) -> Self {
        let mut queues: Vec<Vec<u32>> = vec![Vec::new(); 256];
        for (i, key) in keys.iter().enumerate() {
            queues[key.as_bytes()[0] as usize].push(i as u32);
        }
        let mut live = *prefix_weights;
        for (b, q) in queues.iter().enumerate() {
            if q.is_empty() {
                live[b] = 0.0;
            }
        }
        let mut total_live: f64 = live.iter().sum();
        let mut popularity: Vec<u32> = Vec::with_capacity(keys.len());
        while popularity.len() < keys.len() {
            let mut pick = rng.gen::<f64>() * total_live;
            let mut chosen = usize::MAX;
            for (b, &w) in live.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                pick -= w;
                if pick <= 0.0 {
                    chosen = b;
                    break;
                }
            }
            if chosen == usize::MAX {
                chosen = live.iter().rposition(|&w| w > 0.0).expect("keys remain");
            }
            let q = &mut queues[chosen];
            popularity.push(q.pop().expect("live buckets have keys"));
            if q.is_empty() {
                total_live -= live[chosen];
                live[chosen] = 0.0;
            }
        }
        KeySet { name: name.into(), keys, insert_pool, popularity }
    }

    /// The key at popularity rank `rank`.
    pub fn key_at_rank(&self, rank: u64) -> &Key {
        &self.keys[self.popularity[rank as usize] as usize]
    }

    /// Number of loaded keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if no keys were generated.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn popularity_is_a_permutation() {
        let keys: Vec<Key> = (0..100u64).map(Key::from_u64).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let ks = KeySet::with_shuffled_popularity("t", keys, Vec::new(), &mut rng);
        let mut seen = [false; 100];
        for &p in &ks.popularity {
            assert!(!seen[p as usize], "duplicate rank target");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn prefix_weighted_popularity_is_a_permutation_and_skewed() {
        // 200 keys spread over first bytes 0..=3, byte 2 heavily boosted.
        let keys: Vec<Key> = (0..200u64)
            .map(|i| Key::from_raw([(i % 4) as u8, i as u8, (i >> 8) as u8].as_slice()))
            .collect();
        let mut weights = [0.0f64; 256];
        weights[0] = 1.0;
        weights[1] = 1.0;
        weights[2] = 20.0;
        weights[3] = 1.0;
        let mut rng = StdRng::seed_from_u64(9);
        let ks = KeySet::with_prefix_weighted_popularity("t", keys, Vec::new(), &weights, &mut rng);
        let mut seen = [false; 200];
        for &p in &ks.popularity {
            assert!(!seen[p as usize], "duplicate rank target");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // The boosted bucket must dominate the head ranks.
        let head = &ks.popularity[..40];
        let boosted = head.iter().filter(|&&i| ks.keys[i as usize].as_bytes()[0] == 2).count();
        assert!(boosted > 25, "boosted bucket holds {boosted}/40 of the head");
    }
}
