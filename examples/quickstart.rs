//! Quickstart: build an ART, run the DCART accelerator model over a
//! workload, and compare it with a CPU baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcart::{DcartAccel, DcartConfig};
use dcart_art::{Art, Key};
use dcart_baselines::{CpuBaseline, CpuConfig, IndexEngine, RunConfig};
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The ART substrate is an ordinary ordered map. ---------------
    let mut art = Art::new();
    art.insert(Key::from_str_bytes("radix"), 1)?;
    art.insert(Key::from_str_bytes("adaptive"), 2)?;
    art.insert(Key::from_str_bytes("tree"), 3)?;
    println!("ART holds {} keys; min = {:?}", art.len(), art.min().map(|(_, v)| v));
    for (key, value) in art.iter() {
        println!("  {key:?} -> {value}");
    }

    // --- 2. Generate one of the paper's workloads. -----------------------
    let n_keys = 20_000;
    let keys = Workload::Ipgeo.generate(n_keys, 42);
    let ops =
        generate_ops(&keys, &OpStreamConfig { count: 100_000, mix: Mix::C, theta: 0.99, seed: 42 });
    println!(
        "\nworkload {}: {} keys loaded, {} ops (50% read / 50% write)",
        keys.name,
        keys.len(),
        ops.len()
    );

    // --- 3. Run the DCART accelerator model and the SMART baseline. -----
    let run = RunConfig { concurrency: 8_192 };
    let config = DcartConfig::default().scaled_for_keys(n_keys).with_auto_prefix_skip(&keys);
    let mut dcart = DcartAccel::new(config);
    let d = dcart.run(&keys, &ops, &run);

    let mut smart = CpuBaseline::smart(CpuConfig::xeon_8468().scaled_for_keys(n_keys));
    let s = smart.run(&keys, &ops, &run);

    println!("\nengine    time        throughput   energy     shortcut hits");
    for r in [&s, &d] {
        println!(
            "{:8}  {:>9.4} s  {:>7.1} Mops  {:>7.3} J  {:>8}",
            r.engine,
            r.time_s,
            r.throughput_mops(),
            r.energy_j,
            r.counters.shortcut_hits
        );
    }
    println!(
        "\nDCART speedup over SMART: {:.1}x (energy saving {:.0}x)",
        d.speedup_vs(&s),
        d.energy_saving_vs(&s)
    );
    println!(
        "tree-buffer hit ratio: {:.1} %, SOU load imbalance: {:.2}x",
        dcart.last_details().tree_buffer_hit_ratio * 100.0,
        dcart.last_details().bucket_imbalance
    );
    Ok(())
}
