//! Test-run configuration, rng, and case errors.

use std::fmt;

use rand::{RngCore, SeedableRng, StdRng};

/// Number of generated cases per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Miri interprets every instruction (~100x slowdown); 8 cases keeps
        // the nightly Miri CI job tractable while still exercising each
        // property. Inputs stay deterministic either way (seeded per case).
        ProptestConfig { cases: if cfg!(miri) { 8 } else { 256 } }
    }
}

/// Alias matching real proptest's `test_runner::Config`.
pub type Config = ProptestConfig;

/// Deterministic per-case rng.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from the test's identity and case index, so every run of the
    /// suite generates the same inputs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case)) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError { msg }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}
