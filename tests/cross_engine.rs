//! Cross-crate integration: every engine consumes the identical workload,
//! produces internally consistent reports, and the CTT execution is
//! functionally equivalent to plain operation-centric execution.

use dcart::{execute_ctt, DcartConfig};
use dcart_baselines::{
    execute_with_traces, CpuBaseline, CpuConfig, CuArt, GpuConfig, IndexEngine, RunConfig,
};
use dcart_workloads::{generate_ops, Mix, OpStreamConfig, Workload};

const KEYS: usize = 8_000;
const OPS: usize = 40_000;

#[test]
fn every_engine_reports_consistent_counters() {
    for workload in Workload::ALL {
        let keys = workload.generate(KEYS, 7);
        let ops =
            generate_ops(&keys, &OpStreamConfig { count: OPS, mix: Mix::C, theta: 0.99, seed: 7 });
        let run = RunConfig { concurrency: 4_096 };
        let cpu = CpuConfig::xeon_8468().scaled_for_keys(KEYS);
        let mut engines: Vec<Box<dyn IndexEngine>> = vec![
            Box::new(CpuBaseline::art(cpu)),
            Box::new(CpuBaseline::heart(cpu)),
            Box::new(CpuBaseline::smart(cpu)),
            Box::new(CuArt::new(GpuConfig::a100().scaled_for_keys(KEYS))),
        ];
        for engine in &mut engines {
            let r = engine.run(&keys, &ops, &run);
            assert_eq!(r.counters.ops, OPS as u64, "{}/{workload}", r.engine);
            assert_eq!(
                r.counters.reads + r.counters.writes,
                r.counters.ops,
                "{}/{workload}",
                r.engine
            );
            assert!(r.time_s > 0.0, "{}/{workload}", r.engine);
            assert!(r.energy_j > 0.0, "{}/{workload}", r.engine);
            assert!(r.latency_p99_us >= r.latency_mean_us, "{}/{workload}", r.engine);
            assert!(
                r.counters.redundant_node_visits <= r.counters.nodes_traversed,
                "{}/{workload}",
                r.engine
            );
            assert!(r.breakdown.total_s() > 0.0, "{}/{workload}", r.engine);
            // The breakdown must account for the full modelled time.
            let dt = (r.breakdown.total_s() - r.time_s).abs() / r.time_s;
            assert!(dt < 0.05, "{}/{workload}: breakdown drift {dt}", r.engine);
        }
    }
}

#[test]
fn ctt_execution_is_functionally_equivalent_to_plain() {
    for workload in [Workload::Ipgeo, Workload::Dict, Workload::RandomSparse] {
        let keys = workload.generate(KEYS, 3);
        let ops =
            generate_ops(&keys, &OpStreamConfig { count: OPS, mix: Mix::D, theta: 0.99, seed: 3 });
        struct Sink;
        impl dcart::CttConsumer for Sink {}
        let cfg = DcartConfig::default().with_auto_prefix_skip(&keys);
        let (ctt_tree, stats) = execute_ctt(&keys, &ops, &cfg, 2_048, &mut Sink);
        let plain_tree = execute_with_traces(&keys, &ops, |_| {});
        assert_eq!(stats.ops, OPS as u64);
        assert_eq!(ctt_tree.len(), plain_tree.len(), "{workload}");
        // Identical key sets, in identical order.
        let a: Vec<_> = ctt_tree.iter().map(|(k, _)| k.clone()).collect();
        let b: Vec<_> = plain_tree.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(a, b, "{workload}");
        // Structural invariants hold after CTT execution.
        assert_eq!(ctt_tree.reachable_nodes(), ctt_tree.node_count(), "{workload}");
    }
}

#[test]
fn reports_serialize_and_deserialize() {
    let keys = Workload::DenseInt.generate(2_000, 1);
    let ops =
        generate_ops(&keys, &OpStreamConfig { count: 5_000, mix: Mix::C, ..Default::default() });
    let mut e = CpuBaseline::smart(CpuConfig::xeon_8468().scaled_for_keys(2_000));
    let r = e.run(&keys, &ops, &RunConfig { concurrency: 1_024 });
    let json = serde_json::to_string(&r).expect("serialize");
    let back: dcart_baselines::RunReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.counters, r.counters);
    assert_eq!(back.engine, r.engine);
    assert!((back.time_s - r.time_s).abs() < 1e-15);
}

#[test]
fn deterministic_across_runs() {
    let keys = Workload::Email.generate(3_000, 9);
    let ops =
        generate_ops(&keys, &OpStreamConfig { count: 10_000, mix: Mix::C, theta: 0.99, seed: 9 });
    let run = RunConfig { concurrency: 2_048 };
    let r1 = CpuBaseline::art(CpuConfig::xeon_8468().scaled_for_keys(3_000)).run(&keys, &ops, &run);
    let r2 = CpuBaseline::art(CpuConfig::xeon_8468().scaled_for_keys(3_000)).run(&keys, &ops, &run);
    assert_eq!(r1.counters, r2.counters);
    assert_eq!(r1.time_s, r2.time_s);

    let cfg = DcartConfig::default().scaled_for_keys(3_000).with_auto_prefix_skip(&keys);
    let d1 = dcart::DcartAccel::new(cfg).run(&keys, &ops, &run);
    let d2 = dcart::DcartAccel::new(cfg).run(&keys, &ops, &run);
    assert_eq!(d1.counters, d2.counters);
    assert_eq!(d1.time_s, d2.time_s);
}
