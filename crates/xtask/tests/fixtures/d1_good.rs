// Fixture: D1 must stay quiet on ordered maps, on `HashMap` mentioned in
// comments or string literals, and on the Fx-prefixed wrappers.
use std::collections::BTreeMap;

use crate::fxhash::FxHashMap;

pub fn histogram(xs: &[u8]) -> BTreeMap<u8, u64> {
    // A HashMap would be nondeterministic here; HashSet too.
    let reason = "HashMap and HashSet are banned on digest paths";
    let mut fast: FxHashMap<u8, u64> = FxHashMap::default();
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
        *fast.entry(x).or_insert(0) += 1;
    }
    debug_assert!(!reason.is_empty());
    m
}

#[cfg(test)]
mod tests {
    // Unit tests may use whatever is convenient.
    use std::collections::HashMap;

    #[test]
    fn test_maps_are_exempt() {
        let _m: HashMap<u8, u8> = HashMap::new();
    }
}
