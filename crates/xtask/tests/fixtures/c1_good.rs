//! Known-good twin of `c1_bad.rs`: both paths honor the single global
//! order `alpha` before `beta`, so the acquisition graph stays acyclic
//! and no path re-acquires a lock it already holds.

pub fn forward(&self) -> u64 {
    let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
    let total = a.len() as u64 + b.len() as u64;
    drop(b);
    drop(a);
    total
}

pub fn backward(&self) -> u64 {
    let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
    let total = b.len() as u64 + a.len() as u64;
    drop(b);
    drop(a);
    total
}
