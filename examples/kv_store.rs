//! A multi-threaded key–value store on the concurrent ART (`SyncArt`).
//!
//! Simulates the setting of the paper's introduction: many clients
//! concurrently reading and writing a shared tree index, with hot keys —
//! then reports the lock-contention statistics that motivate DCART.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use std::thread;
use std::time::Instant;

use dcart_art::{Key, SyncArt};
use dcart_workloads::Zipfian;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLIENTS: u64 = 8;
const OPS_PER_CLIENT: u64 = 50_000;
const KEYS: u64 = 10_000;

fn main() {
    let store: SyncArt<String> = SyncArt::new();

    // Load phase.
    for k in 0..KEYS {
        store.insert(Key::from_u64(k), format!("value-{k}")).expect("integer keys are prefix-free");
    }
    println!("loaded {} keys", store.len());

    // Concurrent mixed workload: every client hammers a Zipfian-hot key
    // set, 50 % reads / 50 % writes.
    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let store = store.clone();
            thread::spawn(move || {
                let zipf = Zipfian::new(KEYS, 0.99);
                let mut rng = StdRng::seed_from_u64(id);
                let mut hits = 0u64;
                for i in 0..OPS_PER_CLIENT {
                    let k = Key::from_u64(zipf.sample(&mut rng));
                    if i % 2 == 0 {
                        if store.get(&k).is_some() {
                            hits += 1;
                        }
                    } else {
                        store.insert(k, format!("client-{id}-op-{i}")).unwrap();
                    }
                }
                hits
            })
        })
        .collect();

    let total_hits: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = start.elapsed();
    let total_ops = CLIENTS * OPS_PER_CLIENT;

    println!(
        "{} clients x {} ops in {:.2?} ({:.2} Mops/s), read hit rate {:.1} %",
        CLIENTS,
        OPS_PER_CLIENT,
        elapsed,
        total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        total_hits as f64 / (total_ops / 2) as f64 * 100.0
    );

    // The statistics that motivate the paper: how often did node-level
    // synchronization actually collide?
    let stats = store.lock_stats();
    println!("\nlock statistics (the cost DCART eliminates by coalescing):");
    println!("  write locks acquired: {:>10}", stats.write_acquired());
    println!("  write locks contended:{:>10}", stats.write_contended());
    println!("  read locks acquired:  {:>10}", stats.read_acquired());
    println!("  read locks contended: {:>10}", stats.read_contended());
    println!("  node type changes:    {:>10}", stats.type_changes());
    println!(
        "  contention rate: {:.2} %",
        stats.contended() as f64 / (stats.read_acquired() + stats.write_acquired()) as f64 * 100.0
    );
}
