//! Concurrency stress tests for the thread-safe ART (`SyncArt`): the
//! substrate behind the paper's lock-based baselines must stay correct
//! under real parallel load, not just in the analytic models.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use dcart_art::{Key, SyncArt};
use dcart_workloads::Workload;

#[test]
fn parallel_inserts_partition_by_thread() {
    let art: SyncArt<u64> = SyncArt::new();
    let threads = 8u64;
    let per_thread = 4_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let art = art.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    // Interleaved key spaces: adjacent keys belong to
                    // different threads, maximizing shared nodes.
                    let k = i * threads + t;
                    assert_eq!(art.insert(Key::from_u64(k), k).unwrap(), None);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(art.len(), (threads * per_thread) as usize);
    for k in (0..threads * per_thread).step_by(997) {
        assert_eq!(art.get(&Key::from_u64(k)), Some(k));
    }
}

#[test]
fn parallel_mixed_workload_with_real_keys() {
    // Real-world-shaped keys (shared prefixes) under concurrent
    // read/insert/remove churn.
    let keys = Workload::Email.generate(6_000, 5);
    let art: SyncArt<u32> = SyncArt::new();
    for (i, k) in keys.keys.iter().enumerate() {
        art.insert(k.clone(), i as u32).unwrap();
    }
    let keys = Arc::new(keys);
    let found = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Readers over the loaded set.
    for t in 0..4usize {
        let art = art.clone();
        let keys = Arc::clone(&keys);
        let found = Arc::clone(&found);
        handles.push(thread::spawn(move || {
            for i in (t..keys.keys.len()).step_by(4) {
                if art.get(&keys.keys[i]).is_some() {
                    found.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    // Writers inserting the pool and removing the tail half of the set.
    {
        let art = art.clone();
        let keys = Arc::clone(&keys);
        handles.push(thread::spawn(move || {
            for (i, k) in keys.insert_pool.iter().enumerate() {
                art.insert(k.clone(), (100_000 + i) as u32).unwrap();
            }
        }));
    }
    {
        let art = art.clone();
        let keys = Arc::clone(&keys);
        handles.push(thread::spawn(move || {
            for k in keys.keys.iter().skip(3_000) {
                art.remove(k);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Post-conditions: the first half is untouched, the pool is fully
    // inserted, the removed half is gone.
    for k in keys.keys.iter().take(3_000) {
        assert!(art.get(k).is_some());
    }
    for k in keys.keys.iter().skip(3_000) {
        assert!(art.get(k).is_none());
    }
    for k in &keys.insert_pool {
        assert!(art.get(k).is_some());
    }
    assert_eq!(art.len(), 3_000 + keys.insert_pool.len());
}

#[test]
fn hot_key_hammering_is_linearizable_at_quiescence() {
    let art: SyncArt<u64> = SyncArt::new();
    let threads = 8u64;
    let rounds = 2_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let art = art.clone();
            thread::spawn(move || {
                for r in 0..rounds {
                    // All threads fight over 8 keys.
                    let k = Key::from_u64(r % 8);
                    art.insert(k.clone(), t * 1_000_000 + r).unwrap();
                    let _ = art.get(&k);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(art.len(), 8);
    // Every surviving value was written by someone.
    for k in 0..8u64 {
        let v = art.get(&Key::from_u64(k)).expect("hot key present");
        let (t, r) = (v / 1_000_000, v % 1_000_000);
        assert!(t < threads && r < rounds, "value {v} is a real write");
    }
    let stats = art.lock_stats();
    assert!(stats.write_acquired() > 0);
    // True lock contention needs true parallelism: on a single-core host
    // threads only collide when preempted mid-critical-section, which this
    // short test cannot guarantee.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(stats.write_contended() > 0, "hot keys must actually contend");
    }
}

#[test]
fn sequential_matches_model_after_concurrent_phase() {
    // After a concurrent phase, the tree must agree with a BTreeMap model
    // replaying the same effective operations.
    let art: SyncArt<u64> = SyncArt::new();
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let art = art.clone();
            thread::spawn(move || {
                for i in 0..2_000u64 {
                    art.insert(Key::from_u64(t * 10_000 + i), i).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut model = BTreeMap::new();
    for t in 0..4u64 {
        for i in 0..2_000u64 {
            model.insert(t * 10_000 + i, i);
        }
    }
    assert_eq!(art.len(), model.len());
    for (&k, &v) in model.iter().step_by(31) {
        assert_eq!(art.get(&Key::from_u64(k)), Some(v));
    }
}
