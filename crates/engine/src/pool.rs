//! A scoped worker pool for data-parallel execution over disjoint shards.
//!
//! The CTT executor owns one state shard per combining bucket; within a
//! batch the shards are fully independent (prefix-disjoint buckets touch
//! disjoint subtrees, shortcut shards, and scratch arenas). This helper
//! fans a `&mut` slice of such shards over a bounded set of scoped threads
//! with a work-stealing cursor — the same pattern as the bench harness's
//! per-experiment pool, but over borrowed mutable state instead of owned
//! inputs.
//!
//! Determinism contract: the closure receives each shard exactly once, and
//! because shards share nothing, the *outcome* per shard is independent of
//! which worker ran it or in what order. With `workers <= 1` the loop runs
//! inline on the caller's thread through the identical code path, which is
//! what makes single-threaded and multi-threaded runs byte-identical by
//! construction.

// Under `--features loom` the pool runs on the vendored loom model
// checker's primitives (see vendor/loom and tests/loom.rs); outside a
// loom::model call they are passthroughs to std, so ordinary tests are
// unaffected.
#[cfg(feature = "loom")]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "loom")]
use loom::sync::Mutex;
#[cfg(feature = "loom")]
use loom::thread;
#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(feature = "loom"))]
use std::sync::Mutex;
#[cfg(not(feature = "loom"))]
use std::thread;

/// Runs `work(i, &mut slots[i])` for every slot, fanned over at most
/// `workers` scoped threads.
///
/// Slots are claimed through an atomic cursor, so a slow shard never blocks
/// the others. `workers <= 1` (or a single slot) executes inline with no
/// thread machinery at all.
pub fn par_for_each_mut<T, F>(slots: &mut [T], workers: usize, work: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = slots.len();
    if workers <= 1 || n <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            work(i, slot);
        }
        return;
    }
    let cells: Vec<Mutex<(usize, &mut T)>> = slots.iter_mut().enumerate().map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Each cell is locked exactly once (the cursor hands every
                // index to a single worker); a poisoned lock can only mean
                // a sibling worker panicked, in which case the scope is
                // already unwinding.
                let Ok(mut cell) = cells[i].lock() else { break };
                let (idx, slot) = &mut *cell;
                work(*idx, slot);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_slot_visited_exactly_once() {
        for workers in [0, 1, 2, 4, 16] {
            let mut slots = vec![0u64; 37];
            par_for_each_mut(&mut slots, workers, |i, s| *s += i as u64 + 1);
            let expect: Vec<u64> = (0..37).map(|i| i + 1).collect();
            assert_eq!(slots, expect, "workers={workers}");
        }
    }

    #[test]
    fn outcome_is_independent_of_worker_count() {
        let run = |workers: usize| {
            let mut slots: Vec<Vec<u64>> = (0..16).map(|_| Vec::new()).collect();
            par_for_each_mut(&mut slots, workers, |i, s| {
                for k in 0..100u64 {
                    s.push(i as u64 * 1_000 + k);
                }
            });
            slots
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn empty_and_singleton_slices_run_inline() {
        let mut none: Vec<u64> = Vec::new();
        par_for_each_mut(&mut none, 8, |_, _| unreachable!());
        let mut one = vec![41u64];
        par_for_each_mut(&mut one, 8, |_, s| *s += 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn more_workers_than_slots_is_fine() {
        let mut slots = vec![0u8; 3];
        par_for_each_mut(&mut slots, 64, |_, s| *s = 1);
        assert_eq!(slots, vec![1, 1, 1]);
    }
}
