//! Workspace symbol table and conservative call graph.
//!
//! Resolution is name-based and deliberately over-approximate: a call site
//! resolves to *every* workspace function it could plausibly name. That is
//! the right polarity for the flow rules — C1's transitive lock closure
//! must not miss an acquisition because resolution was too clever. The
//! filters that do apply are sound ones:
//!
//! * `Type::name(...)` only resolves to functions in an `impl Type`/
//!   `trait Type` block (when the final path segment is capitalized);
//! * `recv.name(...)` method calls only resolve to functions that live in
//!   some `impl`/`trait` block (free functions cannot be methods);
//! * functions defined inside `#[cfg(test)]` regions are not in the graph
//!   at all (test helpers lock freely and never run in production paths).

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{CallExpr, FlowNode, ParsedFile};

/// One function in the workspace graph.
pub struct FnNode<'a> {
    /// Index of the owning file in the driver's file list.
    pub file: usize,
    /// Workspace-relative path of the owning file.
    pub path: &'a str,
    /// The parsed item.
    pub item: &'a crate::parse::FnItem,
}

/// The workspace symbol table + call graph.
pub struct Graph<'a> {
    /// All non-test functions.
    pub fns: Vec<FnNode<'a>>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a> Graph<'a> {
    /// Builds the graph over `(path, parsed, in_test)` per file, where
    /// `in_test[line0]` marks `#[cfg(test)]` lines.
    pub fn build(files: &'a [(String, ParsedFile, Vec<bool>)]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, (path, parsed, in_test)) in files.iter().enumerate() {
            for item in &parsed.fns {
                if in_test.get(item.line - 1).copied().unwrap_or(false) {
                    continue;
                }
                by_name.entry(item.name.as_str()).or_default().push(fns.len());
                fns.push(FnNode { file: fi, path, item });
            }
        }
        Graph { fns, by_name }
    }

    /// All functions a call expression could name.
    pub fn resolve(&self, call: &CallExpr) -> Vec<usize> {
        let Some(cands) = self.by_name.get(call.callee.as_str()) else {
            return Vec::new();
        };
        let type_qual = call
            .path
            .last()
            .filter(|s| s.chars().next().is_some_and(char::is_uppercase))
            .map(String::as_str);
        cands
            .iter()
            .copied()
            .filter(|&i| {
                let f = &self.fns[i];
                if let Some(q) = type_qual {
                    f.item.qual.as_deref() == Some(q)
                } else if !call.recv.is_empty() || call.chained {
                    f.item.qual.is_some()
                } else {
                    true
                }
            })
            .collect()
    }

    /// Every call expression in a flow tree, in source order.
    pub fn calls_in(nodes: &'a [FlowNode], out: &mut Vec<&'a CallExpr>) {
        for n in nodes {
            match n {
                FlowNode::Stmt(s) => out.extend(s.calls.iter()),
                FlowNode::Alt(bs) => bs.iter().for_each(|b| Self::calls_in(b, out)),
                FlowNode::Block(b) | FlowNode::Loop(b) => Self::calls_in(b, out),
            }
        }
    }

    /// The set of lock ids each function acquires, directly or through any
    /// resolvable callee (fixpoint over the call graph). `direct` gives
    /// each function's own acquisitions.
    pub fn transitive_closure(&self, direct: &[BTreeSet<String>]) -> Vec<BTreeSet<String>> {
        let mut closure: Vec<BTreeSet<String>> = direct.to_vec();
        // Edges: fn -> resolvable callees.
        let mut callees: Vec<BTreeSet<usize>> = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let mut calls = Vec::new();
            Self::calls_in(&f.item.body, &mut calls);
            let mut out = BTreeSet::new();
            for c in calls {
                out.extend(self.resolve(c));
            }
            callees.push(out);
        }
        // Fixpoint: propagate until stable (the graph is small; cycles are
        // handled by monotone set growth).
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add: Vec<String> = Vec::new();
                for &j in &callees[i] {
                    for l in &closure[j] {
                        if !closure[i].contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    closure[i].extend(add);
                    changed = true;
                }
            }
            if !changed {
                return closure;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parse::{parse, tokenize};

    fn file(path: &str, src: &str) -> (String, ParsedFile, Vec<bool>) {
        let lines = scan(src);
        let parsed = parse(&tokenize(&lines));
        let in_test = vec![false; lines.len()];
        (path.to_string(), parsed, in_test)
    }

    #[test]
    fn resolution_respects_type_qualifiers_and_method_position() {
        let files = vec![file(
            "crates/core/src/x.rs",
            "impl Writer { fn commit(&self) {} }\n\
             impl Reader { fn commit(&self) {} }\n\
             fn commit() {}\n\
             fn caller(w: &Writer) { Writer::commit(w); w.commit(); commit(); }\n",
        )];
        let g = Graph::build(&files);
        let mut calls = Vec::new();
        let caller = g.fns.iter().find(|f| f.item.name == "caller").expect("caller in graph");
        Graph::calls_in(&caller.item.body, &mut calls);
        // Path-qualified: exactly the Writer impl.
        let r0 = g.resolve(calls[0]);
        assert_eq!(r0.len(), 1);
        assert_eq!(g.fns[r0[0]].item.qual.as_deref(), Some("Writer"));
        // Method call: both impls, not the free fn.
        let r1 = g.resolve(calls[1]);
        assert_eq!(r1.len(), 2);
        assert!(r1.iter().all(|&i| g.fns[i].item.qual.is_some()));
        // Plain call: all three.
        assert_eq!(g.resolve(calls[2]).len(), 3);
    }

    #[test]
    fn transitive_lock_closure_reaches_through_calls() {
        let files = vec![file(
            "crates/engine/src/x.rs",
            "fn leaf() { inner.lock(); }\nfn mid() { leaf(); }\nfn top() { mid(); }\n",
        )];
        let g = Graph::build(&files);
        let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); g.fns.len()];
        for (i, f) in g.fns.iter().enumerate() {
            let mut calls = Vec::new();
            Graph::calls_in(&f.item.body, &mut calls);
            for c in calls {
                if c.callee == "lock" {
                    direct[i].insert("engine/inner".to_string());
                }
            }
        }
        let closure = g.transitive_closure(&direct);
        for (locks, f) in closure.iter().zip(&g.fns) {
            assert!(locks.contains("engine/inner"), "{} should reach the lock", f.item.name);
        }
    }

    #[test]
    fn test_region_fns_are_excluded() {
        let src = "fn real() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n";
        let lines = scan(src);
        let parsed = parse(&tokenize(&lines));
        let in_test = crate::rules::test_regions(&lines);
        let files = vec![("crates/core/src/x.rs".to_string(), parsed, in_test)];
        let g = Graph::build(&files);
        assert!(g.fns.iter().any(|f| f.item.name == "real"));
        assert!(!g.fns.iter().any(|f| f.item.name == "helper"));
    }
}
